"""Compilation-time measurement (Figure 11's protocol).

The paper measures wall compilation time for each kernel under each
configuration, reporting the mean of 10 runs after a warm-up.  Here
"compilation" is the full pipeline run: module clone, vectorizer, DCE and
verification — the analogue of invoking clang on a kernel.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

from ..kernels.suite import Kernel
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..sim.stats import RunStats, measure, summarize
from ..vectorizer.pipeline import compile_module
from ..vectorizer.slp import LSLP_CONFIG, O3_CONFIG, SLPConfig, SNSLP_CONFIG

TIMED_CONFIGS = (O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG)


def compile_once_seconds(
    kernel: Kernel, config: SLPConfig, target: TargetMachine
) -> float:
    """Wall seconds for one full compilation of ``kernel``."""
    module = kernel.build()
    start = time.perf_counter()
    compile_module(module, config, target)
    return time.perf_counter() - start


def compile_time_stats(
    kernel: Kernel,
    target: TargetMachine = DEFAULT_TARGET,
    configs: Sequence[SLPConfig] = TIMED_CONFIGS,
    runs: int = 10,
    warmup: int = 1,
) -> Dict[str, RunStats]:
    """Mean/stddev compile time per configuration (paper protocol)."""
    return {
        config.name: measure(
            lambda config=config: compile_once_seconds(kernel, config, target),
            runs=runs,
            warmup=warmup,
        )
        for config in configs
    }


def compile_time_and_phase_stats(
    kernel: Kernel,
    target: TargetMachine = DEFAULT_TARGET,
    configs: Sequence[SLPConfig] = TIMED_CONFIGS,
    runs: int = 10,
    warmup: int = 1,
) -> Tuple[Dict[str, RunStats], Dict[str, Dict[str, float]]]:
    """Wall-time stats plus mean per-phase seconds, from one set of runs.

    Same protocol as :func:`compile_time_stats`, but each measured
    compilation also contributes its ``phase_seconds`` breakdown, so
    Figure 11 can attribute the SLP overhead to the vectorize phase
    without compiling everything twice.
    """
    module = kernel.build()
    wall: Dict[str, RunStats] = {}
    phases: Dict[str, Dict[str, float]] = {}
    for config in configs:
        samples = []
        totals: Dict[str, float] = {}
        for i in range(warmup + runs):
            result = compile_module(module, config, target)
            if i < warmup:
                continue
            samples.append(result.compile_seconds)
            for phase, seconds in result.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        wall[config.name] = summarize(samples)
        phases[config.name] = {
            phase: total / runs for phase, total in sorted(totals.items())
        }
    return wall, phases
