"""Compilation-time measurement (Figure 11's protocol).

The paper measures wall compilation time for each kernel under each
configuration, reporting the mean of 10 runs after a warm-up.  Here
"compilation" is the full pipeline run: module clone, vectorizer, DCE and
verification — the analogue of invoking clang on a kernel.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

from ..kernels.suite import Kernel
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..sim.stats import RunStats, measure
from ..vectorizer.pipeline import compile_module
from ..vectorizer.slp import LSLP_CONFIG, O3_CONFIG, SLPConfig, SNSLP_CONFIG

TIMED_CONFIGS = (O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG)


def compile_once_seconds(
    kernel: Kernel, config: SLPConfig, target: TargetMachine
) -> float:
    """Wall seconds for one full compilation of ``kernel``."""
    module = kernel.build()
    start = time.perf_counter()
    compile_module(module, config, target)
    return time.perf_counter() - start


def compile_time_stats(
    kernel: Kernel,
    target: TargetMachine = DEFAULT_TARGET,
    configs: Sequence[SLPConfig] = TIMED_CONFIGS,
    runs: int = 10,
    warmup: int = 1,
) -> Dict[str, RunStats]:
    """Mean/stddev compile time per configuration (paper protocol)."""
    return {
        config.name: measure(
            lambda config=config: compile_once_seconds(kernel, config, target),
            runs=runs,
            warmup=warmup,
        )
        for config in configs
    }
