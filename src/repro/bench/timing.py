"""Compilation- and execution-time measurement (Figure 11's protocol).

The paper measures wall compilation time for each kernel under each
configuration, reporting the mean of 10 runs after a warm-up.  Here
"compilation" is the full pipeline run: module clone, vectorizer, DCE and
verification — the analogue of invoking clang on a kernel.

:func:`interpreter_throughput` measures the *execution* tier instead:
engine-only interpreted-instructions/sec over the kernel suite, the
number behind the ``sim.instructions_per_sec`` gauge and the
scalar-vs-batched engine-speedup figure in the BENCH documents.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional, Sequence, Tuple

from ..interp import make_interpreter, resolve_engine
from ..interp.memory import Memory
from ..kernels.suite import Kernel
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..sim.stats import RunStats, measure, summarize
from ..vectorizer.pipeline import compile_module
from ..vectorizer.slp import LSLP_CONFIG, O3_CONFIG, SLPConfig, SNSLP_CONFIG

TIMED_CONFIGS = (O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG)


def compile_once_seconds(
    kernel: Kernel, config: SLPConfig, target: TargetMachine
) -> float:
    """Wall seconds for one full compilation of ``kernel``."""
    module = kernel.build()
    start = time.perf_counter()
    compile_module(module, config, target)
    return time.perf_counter() - start


def compile_time_stats(
    kernel: Kernel,
    target: TargetMachine = DEFAULT_TARGET,
    configs: Sequence[SLPConfig] = TIMED_CONFIGS,
    runs: int = 10,
    warmup: int = 1,
) -> Dict[str, RunStats]:
    """Mean/stddev compile time per configuration (paper protocol)."""
    return {
        config.name: measure(
            lambda config=config: compile_once_seconds(kernel, config, target),
            runs=runs,
            warmup=warmup,
        )
        for config in configs
    }


def compile_time_and_phase_stats(
    kernel: Kernel,
    target: TargetMachine = DEFAULT_TARGET,
    configs: Sequence[SLPConfig] = TIMED_CONFIGS,
    runs: int = 10,
    warmup: int = 1,
) -> Tuple[Dict[str, RunStats], Dict[str, Dict[str, float]]]:
    """Wall-time stats plus mean per-phase seconds, from one set of runs.

    Same protocol as :func:`compile_time_stats`, but each measured
    compilation also contributes its ``phase_seconds`` breakdown, so
    Figure 11 can attribute the SLP overhead to the vectorize phase
    without compiling everything twice.
    """
    module = kernel.build()
    wall: Dict[str, RunStats] = {}
    phases: Dict[str, Dict[str, float]] = {}
    for config in configs:
        samples = []
        totals: Dict[str, float] = {}
        for i in range(warmup + runs):
            result = compile_module(module, config, target)
            if i < warmup:
                continue
            samples.append(result.compile_seconds)
            for phase, seconds in result.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        wall[config.name] = summarize(samples)
        phases[config.name] = {
            phase: total / runs for phase, total in sorted(totals.items())
        }
    return wall, phases


def interpreter_throughput(
    engine: Optional[str] = None,
    kernels: Optional[Sequence[Kernel]] = None,
    config: SLPConfig = SNSLP_CONFIG,
    target: TargetMachine = DEFAULT_TARGET,
    repeats: int = 3,
    seed: int = 20190216,
) -> Dict[str, object]:
    """Engine-only interpreted-instructions/sec over the kernel suite.

    Each kernel is compiled once under ``config``; the timer then wraps
    *only* the ``interp.run`` calls — input seeding and buffer readback
    are harness work shared by both engines and excluded, matching the
    definition of the ``sim.instructions_per_sec`` gauge.  Instruction
    counts come from the engines' own ``executed_instructions`` ledger,
    which the identity matrix guarantees is engine-independent, so the
    scalar/batched ratio of the returned rate is the engine speedup.
    """
    engine_name = resolve_engine(engine)
    if kernels is None:
        from ..kernels import all_kernels

        kernels = all_kernels()
    instructions = 0
    seconds = 0.0
    for kernel in kernels:
        compiled = compile_module(kernel.build(), config, target)
        inputs = kernel.make_inputs(random.Random(seed))
        for _ in range(repeats):
            interp = make_interpreter(
                compiled.module,
                engine_name,
                memory=Memory(),
                cost_model=target.cost_model,
            )
            for name, values in inputs.items():
                interp.write_global(name, values)
            started = time.perf_counter()
            interp.run(kernel.function, [kernel.trip_count])
            seconds += time.perf_counter() - started
            instructions += interp.executed_instructions
    return {
        "engine": engine_name,
        "instructions": float(instructions),
        "seconds": seconds,
        "instructions_per_sec": instructions / seconds if seconds > 0 else 0.0,
    }
