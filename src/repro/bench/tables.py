"""Table I regeneration: the kernel inventory.

The paper's Table I lists the kernels extracted from SPEC CPU2006 that
trigger Super-Node SLP, plus the motivating examples.  Our equivalent
lists every registered kernel with its origin benchmark and the SN-SLP
feature it exercises, augmented with measured activation data (whether a
Super-Node actually formed and vectorized).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..kernels.suite import Kernel, all_kernels, table1_rows
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..vectorizer.pipeline import compile_module
from ..vectorizer.slp import SNSLP_CONFIG


def table1_with_activation(
    kernels: Optional[Sequence[Kernel]] = None,
    target: TargetMachine = DEFAULT_TARGET,
) -> List[Dict[str, object]]:
    """Table I rows, extended with measured SN-SLP activation columns."""
    rows: List[Dict[str, object]] = []
    for kernel in kernels if kernels is not None else all_kernels():
        compiled = compile_module(kernel.build(), SNSLP_CONFIG, target)
        report = compiled.report
        nodes = report.formed_nodes(vectorized_only=False)
        rows.append(
            {
                "kernel": kernel.name,
                "origin": kernel.origin,
                "pattern": kernel.pattern,
                "supernodes_formed": len(nodes),
                "supernodes_with_inverse": sum(
                    1 for n in nodes if n.contains_inverse
                ),
                "vectorized": len(report.vectorized_graphs()) > 0,
            }
        )
    return rows


def format_table1(rows: Sequence[Dict[str, object]]) -> str:
    from .figures import format_rows

    return format_rows(list(rows), title="Table I: kernel inventory")
