"""Benchmark runner: compile and simulate kernels under each configuration.

One :class:`KernelRun` captures everything the paper's evaluation plots
need for one (kernel, configuration) pair: simulated cycles, vectorization
statistics and compile time.  ``run_kernel_matrix`` adds the correctness
cross-check: every configuration must produce the same output buffers as
O3 (bit-exact for integer kernels, ULP-close for float kernels where
fast-math reassociation legally perturbs rounding).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..kernels.suite import Kernel
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe.session import CompilerSession, current_session
from ..sim.executor import simulate
from ..vectorizer.pipeline import compile_module
from ..vectorizer.slp import ALL_CONFIGS, O3_CONFIG, SLPConfig

DEFAULT_SEED = 20190216  # CGO 2019 conference date


@dataclass
class KernelRun:
    """Result of one kernel under one configuration."""

    kernel: str
    config: str
    cycles: float
    instructions: int
    vectorized_graphs: int
    attempted_graphs: int
    node_count: int
    aggregate_node_size: int
    average_node_size: float
    compile_seconds: float
    outputs: Dict[str, List]
    correct: Optional[bool] = None  # vs the O3 oracle; None until compared
    #: per-phase compile wall seconds (clone/simplify/[unroll]/vectorize/verify)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: statistic counters for this (kernel, config): compile + simulation
    counters: Dict[str, float] = field(default_factory=dict)
    #: decision-journal summary (see ``summarize_journal``) when the run
    #: was made with ``journal=True``; None otherwise — the default path
    #: never touches the journal, keeping bench results bit-identical
    journal: Optional[Dict[str, object]] = None


def outputs_match(kernel: Kernel, got: Dict[str, List], want: Dict[str, List]) -> bool:
    """Compare output buffers under the kernel's exactness contract."""
    for name in kernel.output_globals:
        a, b = got[name], want[name]
        if len(a) != len(b):
            return False
        if kernel.check_exact:
            if a != b:
                return False
        else:
            for x, y in zip(a, b):
                if math.isnan(x) and math.isnan(y):
                    continue
                if not math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9):
                    return False
    return True


def run_kernel_config(
    kernel: Kernel,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    session: Optional[CompilerSession] = None,
    journal: bool = False,
    engine: Optional[str] = None,
) -> KernelRun:
    """Compile ``kernel`` under ``config`` and simulate one invocation.

    One derived session spans the compile and the simulation, so
    ``KernelRun.counters`` holds this pair's compile counters plus the
    simulation cycle histogram — and nothing else.  ``journal=True``
    records the compile's decision journal into the run's ``journal``
    summary (a private journal: the caller's is never touched).
    ``engine`` selects the execution engine for the simulation (``None``
    = process default); cycle totals are engine-independent.
    """
    own = session if session is not None else current_session().derive(
        name=f"bench:{kernel.name}/{config.name}"
    )
    if journal:
        from ..observe.journal import DecisionJournal

        own.journal = DecisionJournal(enabled=True)
    inputs = kernel.make_inputs(random.Random(seed))
    compiled = compile_module(kernel.build(), config, target, session=own)
    result = simulate(
        compiled.module,
        kernel.function,
        target,
        [kernel.trip_count],
        inputs=inputs,
        session=own,
        engine=engine,
    )
    counters = own.stats.snapshot()
    metrics = own.metrics
    if metrics.enabled:
        metrics.observe(
            "bench.compile.seconds", compiled.compile_seconds,
            description="wall compile seconds per (kernel, config) pair",
        )
        metrics.observe(
            "bench.kernel.cycles", result.cycles,
            description="simulated cycles per (kernel, config) pair",
        )
        metrics.observe(
            "bench.kernel.instructions", float(result.instructions),
            description="interpreted instructions per (kernel, config) pair",
        )
    report = compiled.report
    return KernelRun(
        kernel=kernel.name,
        config=config.name,
        cycles=result.cycles,
        instructions=result.instructions,
        vectorized_graphs=len(report.vectorized_graphs()),
        attempted_graphs=len(report.all_graphs()),
        node_count=report.node_count(vectorized_only=True),
        aggregate_node_size=report.aggregate_node_size(),
        average_node_size=report.average_node_size(),
        compile_seconds=compiled.compile_seconds,
        outputs={name: result.globals_after[name] for name in kernel.output_globals},
        phase_seconds=compiled.phase_seconds,
        counters=counters,
        journal=_journal_summary(own) if journal else None,
    )


def _journal_summary(session: CompilerSession) -> Dict[str, object]:
    from ..observe.journal import summarize_journal

    return summarize_journal(session.journal.events)


def run_kernel_matrix(
    kernel: Kernel,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    journal: bool = False,
    engine: Optional[str] = None,
) -> Dict[str, KernelRun]:
    """Run ``kernel`` under every configuration; verify against O3.

    The returned dict is keyed by configuration name and always includes
    an O3 entry (added if absent) because it is the correctness oracle and
    the speedup baseline.
    """
    configs = list(configs)
    if not any(c.name == O3_CONFIG.name for c in configs):
        configs.insert(0, O3_CONFIG)
    runs = {
        config.name: run_kernel_config(
            kernel, config, target, seed, journal=journal, engine=engine
        )
        for config in configs
    }
    oracle = runs[O3_CONFIG.name]
    for run in runs.values():
        run.correct = outputs_match(kernel, run.outputs, oracle.outputs)
    return runs


def speedup_over(runs: Dict[str, KernelRun], config: str, baseline: str = "O3") -> float:
    """Speedup of ``config`` relative to ``baseline`` (>1 means faster)."""
    return runs[baseline].cycles / runs[config].cycles
