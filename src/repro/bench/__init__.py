"""Benchmark harness: regenerates every table and figure of the paper."""

from .runner import (
    DEFAULT_SEED,
    KernelRun,
    outputs_match,
    run_kernel_config,
    run_kernel_matrix,
    speedup_over,
)
from .parallel import (
    default_jobs,
    run_kernel_matrix_parallel,
    run_suite_parallel,
)
from .figures import (
    PAPER_CONFIGS,
    fig5_kernel_speedups,
    fig6_aggregate_node_size,
    fig7_average_node_size,
    fig8_full_benchmark_speedups,
    fig9_aggregate_node_size_full,
    fig10_average_node_size_full,
    fig11_compile_time,
    format_rows,
)
from .tables import format_table1, table1_with_activation
from .timing import (
    compile_once_seconds,
    compile_time_and_phase_stats,
    compile_time_stats,
)

__all__ = [
    "DEFAULT_SEED",
    "KernelRun",
    "outputs_match",
    "run_kernel_config",
    "run_kernel_matrix",
    "speedup_over",
    "default_jobs",
    "run_kernel_matrix_parallel",
    "run_suite_parallel",
    "PAPER_CONFIGS",
    "fig5_kernel_speedups",
    "fig6_aggregate_node_size",
    "fig7_average_node_size",
    "fig8_full_benchmark_speedups",
    "fig9_aggregate_node_size_full",
    "fig10_average_node_size_full",
    "fig11_compile_time",
    "format_rows",
    "table1_with_activation",
    "format_table1",
    "compile_once_seconds",
    "compile_time_and_phase_stats",
    "compile_time_stats",
]
