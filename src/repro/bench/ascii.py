"""ASCII bar charts for the benchmark harness.

The paper's evaluation figures are grouped bar charts; in a terminal-only
environment the harness renders the same data as horizontal bar groups::

    Figure 5: kernel speedup normalized to O3
    motiv-trunk-reorder   LSLP    |############                    | 1.000
                          SN-SLP  |#####################           | 1.736

Pure text, deterministic, and written next to the numeric tables in
``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

Row = Dict[str, object]


def render_bar_chart(
    rows: Sequence[Row],
    label_column: str,
    value_columns: Sequence[str],
    title: str = "",
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Render ``rows`` as grouped horizontal bars.

    ``label_column`` names the per-group label key; ``value_columns`` are
    the series (one bar per series per group).  Bars are scaled against
    ``max_value`` (default: the data maximum).
    """
    rows = [row for row in rows if label_column in row]
    if not rows:
        return title
    values: List[float] = []
    for row in rows:
        for column in value_columns:
            value = row.get(column)
            if isinstance(value, (int, float)):
                values.append(float(value))
    peak = max_value if max_value is not None else (max(values) if values else 1.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(row[label_column])) for row in rows)
    series_width = max(len(str(column)) for column in value_columns)

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in rows:
        label = str(row[label_column])
        for index, column in enumerate(value_columns):
            value = row.get(column)
            if not isinstance(value, (int, float)):
                continue
            filled = int(round(width * float(value) / peak))
            filled = max(0, min(width, filled))
            bar = "#" * filled + " " * (width - filled)
            shown_label = label if index == 0 else ""
            lines.append(
                f"{shown_label:<{label_width}}  {column:<{series_width}} "
                f"|{bar}| {float(value):.3f}"
            )
    return "\n".join(lines)


def render_figure(
    rows: Sequence[Row],
    title: str,
    label_column: str,
    value_columns: Sequence[str],
) -> str:
    """Numeric table followed by the bar-chart rendering of the same data."""
    from .figures import format_rows

    table = format_rows(list(rows), title)
    chart = render_bar_chart(rows, label_column, value_columns)
    return f"{table}\n\n{chart}"
