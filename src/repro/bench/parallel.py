"""Process-parallel benchmark execution.

The benchmark matrix is embarrassingly parallel: every (kernel,
configuration) pair compiles and simulates independently, and PR 4's
reentrant :class:`~repro.observe.session.CompilerSession` makes each
pair's counters self-contained.  This module shards pairs across worker
processes and reassembles results **deterministically**: the simulator
charges cycles from a fixed cost model (no wall-clock anywhere in the
data), so a parallel run is bit-identical to the serial one on cycles,
counters, vectorization statistics and correctness — only the wall-clock
``compile_seconds``/``phase_seconds`` fields differ, as they do between
any two serial runs.

Workers receive *names*, not objects: kernels, programs, configs and
targets are all resolvable from registries
(:func:`~repro.kernels.suite.kernel_named` & co.), which keeps the
pickled payloads tiny and sidesteps the fact that kernel builders are
closures.  Every worker builds a fresh root session, so nothing in the
parent's ambient session is consulted or mutated.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernels.suite import Kernel, all_kernels, kernel_named
from ..machine.targets import DEFAULT_TARGET, TargetMachine, target_named
from ..observe.session import CompilerSession, use_session
from ..vectorizer.slp import ALL_CONFIGS, O3_CONFIG, SLPConfig, config_named
from .runner import DEFAULT_SEED, KernelRun, outputs_match, run_kernel_config

#: (kernel_name, config_name, target_name, seed) — everything a worker needs
PairPayload = Tuple[str, str, str, int]


def default_jobs() -> int:
    return os.cpu_count() or 1


def _resolve_jobs(jobs: Optional[int]) -> int:
    return default_jobs() if jobs is None else max(1, jobs)


def _run_pair(payload: PairPayload) -> KernelRun:
    """Worker: run one (kernel, config) pair in its own root session."""
    kernel_name, config_name, target_name, seed = payload
    kernel = kernel_named(kernel_name)
    session = CompilerSession(name=f"bench-worker:{kernel_name}/{config_name}")
    with use_session(session):
        return run_kernel_config(
            kernel,
            config_named(config_name),
            target_named(target_name),
            seed,
            session=session.derive(),
        )


def _with_oracle(configs: Sequence[SLPConfig]) -> List[SLPConfig]:
    configs = list(configs)
    if not any(c.name == O3_CONFIG.name for c in configs):
        configs.insert(0, O3_CONFIG)
    return configs


def _pair_payloads(
    kernels: Sequence[Kernel],
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    seed: int,
) -> List[PairPayload]:
    return [
        (kernel.name, config.name, target.name, seed)
        for kernel in kernels
        for config in configs
    ]


def _assemble(
    kernels: Sequence[Kernel],
    configs: Sequence[SLPConfig],
    results: Sequence[KernelRun],
) -> Dict[str, Dict[str, KernelRun]]:
    """Group worker results back into per-kernel matrices (payload order)
    and apply the O3 correctness cross-check in the parent."""
    suite: Dict[str, Dict[str, KernelRun]] = {}
    cursor = 0
    for kernel in kernels:
        runs = {
            config.name: results[cursor + offset]
            for offset, config in enumerate(configs)
        }
        cursor += len(configs)
        oracle = runs[O3_CONFIG.name]
        for run in runs.values():
            run.correct = outputs_match(kernel, run.outputs, oracle.outputs)
        suite[kernel.name] = runs
    return suite


def run_kernel_matrix_parallel(
    kernel: Kernel,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> Dict[str, KernelRun]:
    """Parallel twin of :func:`~repro.bench.runner.run_kernel_matrix`.

    Shards one kernel's configurations across ``jobs`` worker processes
    (default: all cores).  ``jobs=1`` degenerates to the serial runner.
    """
    return run_suite_parallel([kernel], configs, target, seed, jobs)[kernel.name]


def run_suite_parallel(
    kernels: Optional[Sequence[Kernel]] = None,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, KernelRun]]:
    """Run every (kernel, config) pair of the suite, sharded over
    processes; returns ``{kernel_name: {config_name: KernelRun}}``.

    Results are reassembled in payload order, so the outcome is
    deterministic regardless of ``jobs`` or completion order.
    """
    from concurrent.futures import ProcessPoolExecutor

    kernels = list(kernels) if kernels is not None else all_kernels()
    configs = _with_oracle(configs)
    payloads = _pair_payloads(kernels, configs, target, seed)
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        results = [_run_pair(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
            results = list(pool.map(_run_pair, payloads))
    return _assemble(kernels, configs, results)


# -- figure-level workers -----------------------------------------------------------

#: (program_name, config_name, target_name, seed, bulk_trip)
ProgramPayload = Tuple[str, str, str, int, int]


def _run_program_config(payload: ProgramPayload) -> Dict[str, float]:
    """Worker: one composite program under one configuration (Figure 8)."""
    from ..kernels.programs import program_named
    from .figures import _program_cycles

    program_name, config_name, target_name, seed, bulk_trip = payload
    session = CompilerSession(name=f"fig8-worker:{program_name}/{config_name}")
    with use_session(session):
        return _program_cycles(
            program_named(program_name),
            config_named(config_name),
            target_named(target_name),
            seed,
            bulk_trip,
        )


def run_program_grid_parallel(
    program_names: Sequence[str],
    config_names: Sequence[str],
    target: TargetMachine,
    seed: int,
    bulk_trip: int,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fan (program, config) cycle measurements out over processes;
    returns ``{program_name: {config_name: cycle_data}}``."""
    from concurrent.futures import ProcessPoolExecutor

    payloads: List[ProgramPayload] = [
        (program, config, target.name, seed, bulk_trip)
        for program in program_names
        for config in config_names
    ]
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        results = [_run_program_config(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
            results = list(pool.map(_run_program_config, payloads))
    grid: Dict[str, Dict[str, Dict[str, float]]] = {}
    cursor = 0
    for program in program_names:
        grid[program] = {
            config: results[cursor + offset]
            for offset, config in enumerate(config_names)
        }
        cursor += len(config_names)
    return grid


#: (kernel_name, target_name, runs, warmup)
TimingPayload = Tuple[str, str, int, int]


def _time_kernel(payload: TimingPayload) -> Dict[str, object]:
    """Worker: one kernel's Figure 11 compile-time row."""
    from .timing import compile_time_and_phase_stats

    kernel_name, target_name, runs, warmup = payload
    session = CompilerSession(name=f"fig11-worker:{kernel_name}")
    with use_session(session):
        stats, phases = compile_time_and_phase_stats(
            kernel_named(kernel_name), target_named(target_name),
            runs=runs, warmup=warmup,
        )
    o3 = stats["O3"]
    return {
        "kernel": kernel_name,
        "O3": 1.0,
        "LSLP": stats["LSLP"].mean / o3.mean,
        "SN-SLP": stats["SN-SLP"].mean / o3.mean,
        "LSLP stddev": stats["LSLP"].stddev / o3.mean,
        "SN-SLP stddev": stats["SN-SLP"].stddev / o3.mean,
        "phase_seconds": phases,
    }


def time_kernels_parallel(
    kernels: Sequence[Kernel],
    target: TargetMachine,
    runs: int,
    warmup: int,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Figure 11 rows, one worker per kernel, in kernel order."""
    from concurrent.futures import ProcessPoolExecutor

    payloads: List[TimingPayload] = [
        (kernel.name, target.name, runs, warmup) for kernel in kernels
    ]
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        return [_time_kernel(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(_time_kernel, payloads))
