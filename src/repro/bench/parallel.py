"""Process-parallel benchmark execution over the compile service.

The benchmark matrix is embarrassingly parallel: every (kernel,
configuration) pair compiles and simulates independently, and PR 4's
reentrant :class:`~repro.observe.session.CompilerSession` makes each
pair's counters self-contained.  This module shards pairs across worker
processes and reassembles results **deterministically**: the simulator
charges cycles from a fixed cost model (no wall-clock anywhere in the
data), so a parallel run is bit-identical to the serial one on cycles,
counters, vectorization statistics and correctness — only the wall-clock
``compile_seconds``/``phase_seconds`` fields differ, as they do between
any two serial runs.

Since PR 7 the fan-out goes through
:class:`~repro.serve.service.CompileService` — a persistent pool of
warm-session workers (see :mod:`repro.serve`) — instead of a throwaway
``ProcessPoolExecutor`` per call.  Callers can pass their own running
``service=`` (the ``repro bench --service`` path: one pool for the whole
invocation, shared result cache across runs); otherwise an ephemeral
service is spun up for the call, which is the old semantics with the new
transport.  Tasks are sharded by *kernel name* so repeat compiles of one
kernel hit the worker that already holds its warm state.

Workers receive *names*, not objects: kernels, programs, configs and
targets are all resolvable from registries
(:func:`~repro.kernels.suite.kernel_named` & co.), which keeps the
pickled payloads tiny and sidesteps the fact that kernel builders are
closures.  Every worker builds a fresh root session; when the parent's
tracer or remark collector is armed, workers arm their own and the
collected spans/remarks are merged back into the parent session in
payload order, tagged with the worker's OS pid (one process track per
worker in the Chrome trace).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernels.suite import Kernel, all_kernels, kernel_named
from ..machine.targets import DEFAULT_TARGET, TargetMachine, target_named
from ..observe import STAT
from ..observe.session import CompilerSession, current_session, use_session
from ..vectorizer.slp import ALL_CONFIGS, O3_CONFIG, SLPConfig, config_named
from .runner import DEFAULT_SEED, KernelRun, outputs_match, run_kernel_config

#: (kernel_name, config_name, target_name, seed, capture_trace,
#: capture_remarks, journal, capture_metrics) — everything a worker
#: needs.  The four booleans mirror the parent session's observability
#: configuration so workers collect the same streams the caller armed.
PairPayload = Tuple[str, str, str, int, bool, bool, bool, bool]

#: what a worker sends back alongside its KernelRun: always
#: {"pid", "worker_seconds"} (the in-worker wall clock that overhead
#: attribution subtracts from the parent-observed task wall clock), plus
#: "events" / "remarks" / "metrics" when the parent armed those streams —
#: TraceEvent, Remark and MetricsRegistry all pickle as-is
WorkerCapture = Dict[str, object]

# Parallel-driver overhead counters.  These record into the *parent*
# session only (workers never see them), so serial/parallel KernelRun
# equivalence is untouched; they exist so BENCH reports can attribute
# the jobs=2 slowdown (ROADMAP Open item 1) without a profiler.
_OVERHEAD_SECONDS = STAT(
    "parallel.overhead_seconds",
    "pool wall beyond the ideal jobs-way split of in-worker time",
)
_SPAWN_SECONDS = STAT(
    "parallel.spawn_seconds",
    "pool start to first worker result, minus that task's in-worker time",
)
_TASKS = STAT("parallel.tasks", "pairs dispatched to the worker pool")


def default_jobs() -> int:
    return os.cpu_count() or 1


def _resolve_jobs(jobs: Optional[int]) -> int:
    return default_jobs() if jobs is None else max(1, jobs)


def _run_pair(payload: PairPayload) -> Tuple[KernelRun, WorkerCapture]:
    """Worker: run one (kernel, config) pair in its own root session.

    When the parent armed its tracer, remark collector or metrics
    registry, the worker arms its own and ships the collected streams
    back for merging (:func:`_merge_capture`).  The capture always
    carries ``worker_seconds`` — the wall clock spent *inside* the
    worker — so the parent can attribute spawn/marshal/queue overhead
    as (observed task wall) - (in-worker wall).
    """
    (
        kernel_name, config_name, target_name, seed,
        trace, remarks, journal, metrics,
    ) = payload
    kernel = kernel_named(kernel_name)
    session = CompilerSession(name=f"bench-worker:{kernel_name}/{config_name}")
    if trace:
        session.tracer.enable()
    if remarks:
        session.remarks.enable()
    if metrics:
        session.metrics.enable()
    start = time.perf_counter()
    # Inside a traced service task, the worker loop installed the
    # request's ambient context; binding this fresh session's tracer to
    # it parents the pair's compile/phase spans under the request's
    # ``worker:task`` span instead of leaving them unlinked.
    from ..observe.context import current_trace_context

    with use_session(session):
        with session.tracer.bind(current_trace_context()):
            run = run_kernel_config(
                kernel,
                config_named(config_name),
                target_named(target_name),
                seed,
                session=session.derive(),
                journal=journal,
            )
    capture: WorkerCapture = {
        "pid": os.getpid(),
        "worker_seconds": time.perf_counter() - start,
    }
    if trace:
        capture["events"] = list(session.tracer.events)
    if remarks:
        capture["remarks"] = list(session.remarks.remarks)
    if metrics:
        capture["metrics"] = session.metrics
    return run, capture


def _merge_capture(parent: CompilerSession, capture: WorkerCapture) -> None:
    """Fold one worker's spans/remarks/metrics into the parent session.

    Spans keep their originating worker ``pid`` so the Chrome trace
    renders one process track per worker; remarks are tagged with
    ``worker_pid``; worker histograms merge bucket-wise.  Captures are
    merged in payload order, so the merged streams are deterministic
    regardless of completion order.
    """
    pid = int(capture["pid"])
    generation = int(capture.get("generation", 0))
    for event in capture.get("events", ()):
        event.pid = pid
        event.generation = generation
        parent.tracer.events.append(event)
    for remark in capture.get("remarks", ()):
        remark.args.setdefault("worker_pid", pid)
        parent.remarks.remarks.append(remark)
    worker_metrics = capture.get("metrics")
    if worker_metrics is not None and parent.metrics.enabled:
        parent.metrics.merge(worker_metrics)


def _with_oracle(configs: Sequence[SLPConfig]) -> List[SLPConfig]:
    configs = list(configs)
    if not any(c.name == O3_CONFIG.name for c in configs):
        configs.insert(0, O3_CONFIG)
    return configs


def _pair_payloads(
    kernels: Sequence[Kernel],
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    seed: int,
    trace: bool,
    remarks: bool,
    journal: bool,
    metrics: bool,
) -> List[PairPayload]:
    return [
        (
            kernel.name, config.name, target.name, seed,
            trace, remarks, journal, metrics,
        )
        for kernel in kernels
        for config in configs
    ]


def _assemble(
    kernels: Sequence[Kernel],
    configs: Sequence[SLPConfig],
    results: Sequence[KernelRun],
) -> Dict[str, Dict[str, KernelRun]]:
    """Group worker results back into per-kernel matrices (payload order)
    and apply the O3 correctness cross-check in the parent."""
    suite: Dict[str, Dict[str, KernelRun]] = {}
    cursor = 0
    for kernel in kernels:
        runs = {
            config.name: results[cursor + offset]
            for offset, config in enumerate(configs)
        }
        cursor += len(configs)
        oracle = runs[O3_CONFIG.name]
        for run in runs.values():
            run.correct = outputs_match(kernel, run.outputs, oracle.outputs)
        suite[kernel.name] = runs
    return suite


def run_kernel_matrix_parallel(
    kernel: Kernel,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> Dict[str, KernelRun]:
    """Parallel twin of :func:`~repro.bench.runner.run_kernel_matrix`.

    Shards one kernel's configurations across ``jobs`` worker processes
    (default: all cores).  ``jobs=1`` degenerates to the serial runner.
    """
    return run_suite_parallel([kernel], configs, target, seed, jobs)[kernel.name]


def run_suite_parallel(
    kernels: Optional[Sequence[Kernel]] = None,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
    journal: bool = False,
    service=None,
    resilience=None,
) -> Dict[str, Dict[str, KernelRun]]:
    """Run every (kernel, config) pair of the suite, sharded over
    processes; returns ``{kernel_name: {config_name: KernelRun}}``.

    Results are reassembled in payload order, so the outcome is
    deterministic regardless of ``jobs`` or completion order.  If the
    *calling* session's tracer, remark collector or metrics registry is
    enabled, workers arm the same collectors and their streams are
    merged back into the caller's session keyed by worker pid (payload
    order again, so the merged streams are deterministic).
    ``journal=True`` attaches a per-run decision-journal summary to each
    :class:`KernelRun`.

    ``service=`` reuses a running
    :class:`~repro.serve.service.CompileService` (warm workers + shared
    result cache across calls); without one an ephemeral service is
    started for this call.

    ``resilience=`` is a
    :class:`~repro.serve.resilience.ResiliencePolicy`: service traffic
    then goes through a :class:`~repro.serve.resilience.ResilientExecutor`
    (retry/backoff, optional hedging, circuit-breaker degradation down to
    an ephemeral local pool or serial in-process execution), so the suite
    completes with identical results even when the service fails mid-run.
    Only honoured on the service path; the plain serial path needs no
    resilience.

    Overhead attribution: the parallel path records, into the *parent*
    session only, how much task wall clock was spent outside workers —
    ``parallel.overhead_seconds`` / ``parallel.marshal_seconds`` /
    ``parallel.spawn_seconds`` counters plus per-task histograms when
    metrics are armed — so a slower-than-serial parallel run explains
    itself from the report.
    """
    parent = current_session()
    trace = parent.tracer.enabled
    remarks = parent.remarks.enabled
    metrics = parent.metrics.enabled
    kernels = list(kernels) if kernels is not None else all_kernels()
    configs = _with_oracle(configs)
    payloads = _pair_payloads(
        kernels, configs, target, seed, trace, remarks, journal, metrics
    )
    jobs = _resolve_jobs(jobs)
    if service is None and (jobs <= 1 or len(payloads) <= 1):
        outcomes = [_run_pair(payload) for payload in payloads]
        for _, capture in outcomes:
            _merge_capture(parent, capture)
    else:
        outcomes = _dispatch(
            parent, payloads, jobs, service=service, resilience=resilience
        )
    return _assemble(kernels, configs, [run for run, _ in outcomes])


def _dispatch(
    parent: CompilerSession,
    payloads: Sequence[PairPayload],
    jobs: int,
    service=None,
    resilience=None,
) -> List[Tuple[KernelRun, WorkerCapture]]:
    """Fan payloads over the compile service, measuring dispatch overhead.

    Payload pickling cost is timed by the service submit path (the
    ``parallel.marshal_seconds`` counter / ``parallel.task.marshal_seconds``
    histogram now measure the real encode of each payload), and every
    worker ships back its in-worker wall seconds.
    ``parallel.overhead_seconds`` is the pool wall clock minus the
    perfectly-parallel worker time (``sum(worker_seconds) / workers``) —
    exactly the gap between the observed jobs=N time and the ideal N-way
    split, so a slower-than-serial run is attributable to spawn +
    marshal + IPC + imbalance rather than "the kernels got slower".
    Per-task turnaround (submit to done-callback, queueing included)
    lands in a histogram.  All derived counters and histograms go to the
    *parent* session, never into the per-run counter snapshots.
    """
    from ..serve.service import CompileService

    stats = parent.stats
    session_metrics = parent.metrics
    done_at: Dict[int, float] = {}
    submit_at: List[float] = []
    owns_service = service is None
    pool_start = time.perf_counter()
    if owns_service:
        service = CompileService(
            workers=min(jobs, len(payloads)),
            session=parent,
            name="bench-pool",
        )
        service.start()
    use_cache = service.result_cache_enabled
    try:
        if resilience is not None:
            from ..serve.resilience import ResilientExecutor

            # The executor owns submission and waiting: tasks that hit a
            # failing service retry/degrade, but land back here in
            # payload order, so the assembled suite is unchanged.
            tasks = [
                ("bench-pair", (payload, use_cache), payload[0], 1.0)
                for payload in payloads
            ]
            for _ in payloads:
                _TASKS.resolve(stats).add()
            with parent.tracer.span("parallel:submit", tasks=len(payloads)):
                with ResilientExecutor(
                    service, policy=resilience, session=parent
                ) as executor:
                    outcomes = executor.run_batch(tasks)
        else:
            with parent.tracer.span("parallel:submit", tasks=len(payloads)):
                futures = []
                for index, payload in enumerate(payloads):
                    _TASKS.resolve(stats).add()
                    submit_at.append(time.perf_counter())
                    future = service.submit(
                        "bench-pair", (payload, use_cache),
                        shard_key=payload[0],
                    )
                    future.add_done_callback(
                        lambda _, i=index: done_at.__setitem__(
                            i, time.perf_counter()
                        )
                    )
                    futures.append(future)
            outcomes = [future.result() for future in futures]
    finally:
        if owns_service:
            service.close()
    pool_wall = time.perf_counter() - pool_start
    workers = min(service.workers, len(payloads))
    worker_total = 0.0
    with parent.tracer.span("parallel:merge", tasks=len(payloads)):
        for index, (_, capture) in enumerate(outcomes):
            worker_seconds = float(capture["worker_seconds"])
            worker_total += worker_seconds
            if index < len(submit_at):  # resilient path times elsewhere
                turnaround = (
                    done_at.get(index, pool_start + pool_wall)
                    - submit_at[index]
                )
                session_metrics.observe(
                    "parallel.task.turnaround_seconds", max(0.0, turnaround),
                    description="submit-to-done wall seconds per task "
                    "(queueing included)",
                )
            session_metrics.observe(
                "parallel.task.worker_seconds", worker_seconds,
                description="in-worker wall seconds per task",
            )
            _merge_capture(parent, capture)
    overhead = max(0.0, pool_wall - worker_total / max(1, workers))
    _OVERHEAD_SECONDS.resolve(stats).add(overhead)
    session_metrics.observe(
        "parallel.dispatch.overhead_seconds", overhead,
        description="pool wall seconds beyond the ideal jobs-way split "
        "of in-worker time (spawn + marshal + IPC + imbalance)",
    )
    if done_at:
        first_index = min(done_at, key=done_at.get)
        spawn = max(
            0.0,
            done_at[first_index]
            - pool_start
            - float(outcomes[first_index][1]["worker_seconds"]),
        )
        _SPAWN_SECONDS.resolve(stats).add(spawn)
        session_metrics.gauge(
            "parallel.pool_spawn_seconds", spawn,
            description="pool start to first result, minus in-worker time",
        )
    return outcomes


# -- figure-level workers -----------------------------------------------------------


def _service_map(kind: str, payloads: Sequence[object], jobs: int) -> List[object]:
    """Run ``payloads`` through an ephemeral compile service, in order."""
    from ..serve.service import CompileService

    service = CompileService(
        workers=min(jobs, len(payloads)),
        session=current_session(),
        name=f"{kind}-pool",
    )
    service.start()
    try:
        futures = [service.submit(kind, payload) for payload in payloads]
        return [future.result() for future in futures]
    finally:
        service.close()


#: (program_name, config_name, target_name, seed, bulk_trip)
ProgramPayload = Tuple[str, str, str, int, int]


def _run_program_config(payload: ProgramPayload) -> Dict[str, float]:
    """Worker: one composite program under one configuration (Figure 8)."""
    from ..kernels.programs import program_named
    from .figures import _program_cycles

    program_name, config_name, target_name, seed, bulk_trip = payload
    session = CompilerSession(name=f"fig8-worker:{program_name}/{config_name}")
    with use_session(session):
        return _program_cycles(
            program_named(program_name),
            config_named(config_name),
            target_named(target_name),
            seed,
            bulk_trip,
        )


def run_program_grid_parallel(
    program_names: Sequence[str],
    config_names: Sequence[str],
    target: TargetMachine,
    seed: int,
    bulk_trip: int,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fan (program, config) cycle measurements out over the compile
    service; returns ``{program_name: {config_name: cycle_data}}``."""
    payloads: List[ProgramPayload] = [
        (program, config, target.name, seed, bulk_trip)
        for program in program_names
        for config in config_names
    ]
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        results = [_run_program_config(payload) for payload in payloads]
    else:
        results = _service_map("program-grid", payloads, jobs)
    grid: Dict[str, Dict[str, Dict[str, float]]] = {}
    cursor = 0
    for program in program_names:
        grid[program] = {
            config: results[cursor + offset]
            for offset, config in enumerate(config_names)
        }
        cursor += len(config_names)
    return grid


#: (kernel_name, target_name, runs, warmup)
TimingPayload = Tuple[str, str, int, int]


def _time_kernel(payload: TimingPayload) -> Dict[str, object]:
    """Worker: one kernel's Figure 11 compile-time row."""
    from .timing import compile_time_and_phase_stats

    kernel_name, target_name, runs, warmup = payload
    session = CompilerSession(name=f"fig11-worker:{kernel_name}")
    with use_session(session):
        stats, phases = compile_time_and_phase_stats(
            kernel_named(kernel_name), target_named(target_name),
            runs=runs, warmup=warmup,
        )
    o3 = stats["O3"]
    return {
        "kernel": kernel_name,
        "O3": 1.0,
        "LSLP": stats["LSLP"].mean / o3.mean,
        "SN-SLP": stats["SN-SLP"].mean / o3.mean,
        "LSLP stddev": stats["LSLP"].stddev / o3.mean,
        "SN-SLP stddev": stats["SN-SLP"].stddev / o3.mean,
        "phase_seconds": phases,
    }


def time_kernels_parallel(
    kernels: Sequence[Kernel],
    target: TargetMachine,
    runs: int,
    warmup: int,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Figure 11 rows, one worker per kernel, in kernel order."""
    payloads: List[TimingPayload] = [
        (kernel.name, target.name, runs, warmup) for kernel in kernels
    ]
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        return [_time_kernel(payload) for payload in payloads]
    return _service_map("fig11-timing", payloads, jobs)
