"""Regeneration of every evaluation figure in the paper.

Each ``figN_*`` function returns the figure's data series as a list of row
dicts (plus helpers to format them as text tables); the ``benchmarks/``
scripts print them through pytest-benchmark runs.  Mapping:

* Figure 5  — kernel speedup over O3 (LSLP vs SN-SLP)
* Figure 6  — total aggregate Multi-/Super-Node size, kernels
* Figure 7  — average Multi-/Super-Node size per graph, kernels
* Figure 8  — full-benchmark speedup (composite programs)
* Figure 9  — aggregate node size, full benchmarks
* Figure 10 — average node size, full benchmarks
* Figure 11 — compilation time normalized to O3
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..kernels.programs import PROGRAMS, Program
from ..kernels.suite import Kernel, all_kernels
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..sim.executor import simulate
from ..vectorizer.pipeline import compile_module
from ..vectorizer.slp import LSLP_CONFIG, O3_CONFIG, SLPConfig, SNSLP_CONFIG, config_named
from .runner import DEFAULT_SEED, run_kernel_matrix, speedup_over
from .timing import compile_time_and_phase_stats

Row = Dict[str, object]

#: the two configurations every paper figure compares
PAPER_CONFIGS = (LSLP_CONFIG, SNSLP_CONFIG)


def _kernel_set(kernels: Optional[Sequence[Kernel]]) -> List[Kernel]:
    return list(kernels) if kernels is not None else all_kernels()


def _suite_runs(
    kernels: List[Kernel],
    target: TargetMachine,
    jobs: Optional[int],
    journal: bool = False,
) -> Dict[str, Dict[str, object]]:
    """One matrix per kernel under the paper configs; ``jobs != 1``
    shards the (kernel, config) pairs over worker processes.  Simulated
    cycles are deterministic, so both paths return identical data.
    ``journal=True`` attaches per-run decision-journal summaries; the
    default leaves the journal disabled, keeping figure data bit-identical
    to pre-journal builds."""
    if jobs is not None and jobs != 1:
        from .parallel import run_suite_parallel

        return run_suite_parallel(
            kernels, PAPER_CONFIGS, target, jobs=jobs, journal=journal
        )
    return {
        kernel.name: run_kernel_matrix(kernel, PAPER_CONFIGS, target, journal=journal)
        for kernel in kernels
    }


# -- Figure 5 -----------------------------------------------------------------------

def fig5_kernel_speedups(
    kernels: Optional[Sequence[Kernel]] = None,
    target: TargetMachine = DEFAULT_TARGET,
    jobs: Optional[int] = 1,
    journal: bool = False,
) -> List[Row]:
    """Normalized speedup over O3 for each kernel (Figure 5)."""
    kernels = _kernel_set(kernels)
    suite = _suite_runs(kernels, target, jobs, journal=journal)
    rows: List[Row] = []
    for kernel in kernels:
        runs = suite[kernel.name]
        if not all(run.correct for run in runs.values()):
            raise AssertionError(f"{kernel.name}: output mismatch across configs")
        row: Row = {
            "kernel": kernel.name,
            "LSLP": speedup_over(runs, "LSLP"),
            "SN-SLP": speedup_over(runs, "SN-SLP"),
            # nested per-config breakdowns land in the JSON twin of the
            # results file; format_rows skips non-scalar columns
            "phase_seconds": {
                name: runs[name].phase_seconds for name in ("LSLP", "SN-SLP")
            },
            "counters": {
                name: runs[name].counters for name in ("LSLP", "SN-SLP")
            },
        }
        if journal:
            row["journal"] = {
                name: runs[name].journal for name in ("LSLP", "SN-SLP")
            }
        rows.append(row)
    rows.append(
        {
            "kernel": "geomean",
            "LSLP": _geomean([row["LSLP"] for row in rows]),
            "SN-SLP": _geomean([row["SN-SLP"] for row in rows]),
        }
    )
    return rows


def _geomean(values: Sequence[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


# -- Figures 6 and 7 -----------------------------------------------------------------

def fig6_aggregate_node_size(
    kernels: Optional[Sequence[Kernel]] = None,
    target: TargetMachine = DEFAULT_TARGET,
    jobs: Optional[int] = 1,
) -> List[Row]:
    """Total aggregate Multi-/Super-Node size per kernel (Figure 6)."""
    kernels = _kernel_set(kernels)
    suite = _suite_runs(kernels, target, jobs)
    rows: List[Row] = []
    for kernel in kernels:
        runs = suite[kernel.name]
        rows.append(
            {
                "kernel": kernel.name,
                "LSLP": runs["LSLP"].aggregate_node_size,
                "SN-SLP": runs["SN-SLP"].aggregate_node_size,
            }
        )
    rows.append(
        {
            "kernel": "total",
            "LSLP": sum(row["LSLP"] for row in rows),
            "SN-SLP": sum(row["SN-SLP"] for row in rows),
        }
    )
    return rows


def fig7_average_node_size(
    kernels: Optional[Sequence[Kernel]] = None,
    target: TargetMachine = DEFAULT_TARGET,
    jobs: Optional[int] = 1,
) -> List[Row]:
    """Average Multi-/Super-Node size per kernel (Figure 7)."""
    kernels = _kernel_set(kernels)
    suite = _suite_runs(kernels, target, jobs)
    rows: List[Row] = []
    totals = {"LSLP": [0, 0], "SN-SLP": [0, 0]}  # [aggregate, count]
    for kernel in kernels:
        runs = suite[kernel.name]
        row: Row = {"kernel": kernel.name}
        for name in ("LSLP", "SN-SLP"):
            row[name] = runs[name].average_node_size
            totals[name][0] += runs[name].aggregate_node_size
            totals[name][1] += runs[name].node_count
        rows.append(row)
    rows.append(
        {
            "kernel": "average",
            "LSLP": totals["LSLP"][0] / totals["LSLP"][1] if totals["LSLP"][1] else 0.0,
            "SN-SLP": (
                totals["SN-SLP"][0] / totals["SN-SLP"][1]
                if totals["SN-SLP"][1]
                else 0.0
            ),
        }
    )
    return rows


# -- Figure 8: composite full benchmarks ------------------------------------------------

def _program_cycles(
    program: Program,
    config: SLPConfig,
    target: TargetMachine,
    seed: int,
    bulk_trip: int,
) -> Dict[str, float]:
    kernel = program.kernel
    inputs = kernel.make_inputs(random.Random(seed))
    compiled = compile_module(program.build(), config, target)
    kernel_sim = simulate(
        compiled.module, kernel.function, target, [kernel.trip_count], inputs=inputs
    )
    bulk_sim = simulate(compiled.module, "bulk", target, [bulk_trip])
    return {
        "kernel": kernel_sim.cycles,
        "bulk": bulk_sim.cycles,
        "vectorized": float(len(compiled.report.vectorized_graphs())),
        "aggregate_node_size": float(compiled.report.aggregate_node_size()),
        "node_count": float(compiled.report.node_count()),
    }


def fig8_full_benchmark_speedups(
    programs: Optional[Sequence[Program]] = None,
    target: TargetMachine = DEFAULT_TARGET,
    seed: int = DEFAULT_SEED,
    bulk_trip: int = 4096,
    jobs: Optional[int] = 1,
) -> List[Row]:
    """End-to-end speedup of the composite benchmarks (Figure 8).

    The bulk function's weight is calibrated from the O3 run so the kernel
    accounts for the program's ``kernel_fraction`` of total O3 cycles; the
    same weight then applies to every configuration.  ``jobs != 1``
    shards the (program, config) measurements across worker processes.
    """
    programs = list(programs) if programs is not None else list(PROGRAMS)
    config_names = [c.name for c in (O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG)]
    if jobs is not None and jobs != 1:
        from .parallel import run_program_grid_parallel

        grid = run_program_grid_parallel(
            [p.name for p in programs], config_names, target, seed, bulk_trip,
            jobs=jobs,
        )
    else:
        grid = {
            program.name: {
                name: _program_cycles(
                    program, config_named(name), target, seed, bulk_trip
                )
                for name in config_names
            }
            for program in programs
        }
    rows: List[Row] = []
    for program in programs:
        per_config = grid[program.name]
        o3 = per_config["O3"]
        fraction = program.kernel_fraction
        bulk_weight = (o3["kernel"] * (1.0 - fraction)) / (fraction * o3["bulk"])

        def total(name: str) -> float:
            data = per_config[name]
            return data["kernel"] + bulk_weight * data["bulk"]

        rows.append(
            {
                "benchmark": program.name,
                "kernel_fraction": fraction,
                "LSLP": total("O3") / total("LSLP"),
                "SN-SLP": total("O3") / total("SN-SLP"),
                "SN-SLP vs LSLP": total("LSLP") / total("SN-SLP"),
            }
        )
    return rows


# -- Figures 9 and 10: node sizes over full benchmarks -----------------------------------

def _program_node_stats(
    programs: Optional[Sequence[Program]],
    target: TargetMachine,
    average: bool,
) -> List[Row]:
    rows: List[Row] = []
    for program in programs if programs is not None else PROGRAMS:
        row: Row = {"benchmark": program.name}
        for config in PAPER_CONFIGS:
            compiled = compile_module(program.build(), config, target)
            report = compiled.report
            row[config.name] = (
                report.average_node_size() if average else report.aggregate_node_size()
            )
        rows.append(row)
    return rows


def fig9_aggregate_node_size_full(
    programs: Optional[Sequence[Program]] = None,
    target: TargetMachine = DEFAULT_TARGET,
) -> List[Row]:
    """Aggregate node size across the composite benchmarks (Figure 9)."""
    rows = _program_node_stats(programs, target, average=False)
    rows.append(
        {
            "benchmark": "total",
            "LSLP": sum(row["LSLP"] for row in rows),
            "SN-SLP": sum(row["SN-SLP"] for row in rows),
        }
    )
    return rows


def fig10_average_node_size_full(
    programs: Optional[Sequence[Program]] = None,
    target: TargetMachine = DEFAULT_TARGET,
) -> List[Row]:
    """Average node size across the composite benchmarks (Figure 10)."""
    return _program_node_stats(programs, target, average=True)


# -- Figure 11: compilation time -----------------------------------------------------------

def fig11_compile_time(
    kernels: Optional[Sequence[Kernel]] = None,
    target: TargetMachine = DEFAULT_TARGET,
    runs: int = 10,
    warmup: int = 1,
    jobs: Optional[int] = 1,
) -> List[Row]:
    """Wall compilation time normalized to the O3 configuration
    (Figure 11): 10 measured runs after one warm-up, mean +/- stddev.
    ``jobs != 1`` times kernels in parallel worker processes; each
    kernel's O3-normalized ratio is still measured within one process,
    so contention skews ratios far less than absolute times."""
    kernels = _kernel_set(kernels)
    if jobs is not None and jobs != 1:
        from .parallel import time_kernels_parallel

        return time_kernels_parallel(kernels, target, runs, warmup, jobs=jobs)
    rows: List[Row] = []
    for kernel in kernels:
        stats, phases = compile_time_and_phase_stats(
            kernel, target, runs=runs, warmup=warmup
        )
        o3 = stats["O3"]
        rows.append(
            {
                "kernel": kernel.name,
                "O3": 1.0,
                "LSLP": stats["LSLP"].mean / o3.mean,
                "SN-SLP": stats["SN-SLP"].mean / o3.mean,
                "LSLP stddev": stats["LSLP"].stddev / o3.mean,
                "SN-SLP stddev": stats["SN-SLP"].stddev / o3.mean,
                "phase_seconds": phases,
            }
        )
    return rows


# -- formatting --------------------------------------------------------------------------

def format_rows(rows: Sequence[Row], title: str = "") -> str:
    """Render rows as an aligned text table.

    Nested (dict/list) columns — the per-config phase-time and counter
    breakdowns — are JSON-only payload and are skipped here.
    """
    if not rows:
        return title
    columns = [
        col
        for col, value in rows[0].items()
        if not isinstance(value, (dict, list))
    ]
    widths = {
        col: max(
            len(str(col)),
            *(len(_fmt(row.get(col, ""))) for row in rows),
        )
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(col).ljust(widths[col]) for col in columns))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
