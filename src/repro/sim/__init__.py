"""Cycle-accounting performance simulation."""

from .executor import CycleCounter, SimulationResult, simulate
from .stats import RunStats, measure, mean, stddev, summarize

__all__ = [
    "CycleCounter",
    "SimulationResult",
    "simulate",
    "RunStats",
    "measure",
    "mean",
    "stddev",
    "summarize",
]
