"""Cycle-accounting execution: the repro's stand-in for a real CPU.

Runs a function while charging every executed instruction its cost from
the target's :class:`~repro.machine.costmodel.CostModel`.  The resulting
cycle totals play the role of the paper's wall-clock kernel timings:
comparing the same kernel compiled under the O3 / LSLP / SN-SLP
configurations on the same simulated machine gives the normalized
speedups of Figures 5 and 8.

Two engines share these semantics bit-for-bit (see
:mod:`repro.interp.engine`): the ``scalar`` reference interpreter charged
through a per-step :class:`CycleCounter` hook, and the ``batched`` planned
engine (:mod:`repro.interp.batched`) that accounts whole pre-decoded block
traces at a time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..interp.batched import BatchedInterpreter
from ..interp.engine import resolve_engine
from ..interp.interpreter import Interpreter
from ..interp.memory import Memory
from ..ir.instructions import Instruction, Opcode
from ..ir.module import Module
from ..machine.costmodel import instruction_cost
from ..machine.targets import TargetMachine
from ..observe.session import CompilerSession, current_session, use_session


class CycleCounter:
    """Accumulates simulated cycles per executed instruction."""

    def __init__(self, target: TargetMachine) -> None:
        self.target = target
        self.cycles = 0.0
        self.instructions = 0
        self.per_opcode: Dict[Opcode, float] = {}

    def charge(self, inst: Instruction) -> None:
        cost = self._cost_of(inst)
        self.cycles += cost
        self.instructions += 1
        self.per_opcode[inst.opcode] = self.per_opcode.get(inst.opcode, 0.0) + cost

    def _cost_of(self, inst: Instruction) -> float:
        return instruction_cost(self.target.cost_model, inst)


@dataclass
class SimulationResult:
    """Outcome of simulating one function invocation."""

    cycles: float
    instructions: int
    per_opcode: Dict[Opcode, float]
    return_value: object
    globals_after: Dict[str, list] = field(default_factory=dict)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of *this* result relative to ``baseline`` (>1 = faster)."""
        if self.cycles == 0:
            return float("inf")
        return baseline.cycles / self.cycles


def simulate(
    module: Module,
    function_name: str,
    target: TargetMachine,
    args: Sequence = (),
    inputs: Optional[Dict[str, Sequence]] = None,
    capture_globals: bool = True,
    memory_size: int = 1 << 20,
    max_steps: Optional[int] = None,
    session: Optional[CompilerSession] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Execute ``function_name`` and account cycles on ``target``.

    ``inputs`` seeds global buffers before the run, which keeps workload
    data out of the IR and identical across compiler configurations.
    ``max_steps`` caps executed instructions (the watchdog): exceeding it
    raises :class:`~repro.interp.interpreter.BudgetExceededError` instead
    of letting a malformed loop hang the harness.

    ``engine`` picks the execution engine (``scalar`` | ``batched``);
    ``None`` uses the process default (see :mod:`repro.interp.engine`).
    Cycle totals, per-opcode charges and globals are bit-identical across
    engines — the choice is purely a throughput knob.

    ``sim.*`` counters land in ``session`` when given, else in an
    ephemeral child of the ambient session (the result object itself
    carries cycles/instructions, so nothing is lost by discarding it).
    """
    own = session if session is not None else current_session().derive(
        name=f"simulate:{function_name}"
    )
    engine_name = resolve_engine(engine)
    if engine_name == "batched":
        counter = None
        interp = BatchedInterpreter(
            module,
            memory=Memory(memory_size),
            max_steps=max_steps,
            cost_model=target.cost_model,
        )
    else:
        counter = CycleCounter(target)
        interp = Interpreter(
            module,
            memory=Memory(memory_size),
            on_execute=counter.charge,
            max_steps=max_steps,
        )
    if inputs:
        for name, values in inputs.items():
            interp.write_global(name, values)
    accounting = counter if counter is not None else interp
    with use_session(own):
        with own.tracer.span(
            "simulate", function=function_name, target=target.name
        ):
            started = time.perf_counter()
            result = interp.run(function_name, args)
            elapsed = time.perf_counter() - started
        own.stats.stat("sim.cycles", "Total simulated cycles").add(
            accounting.cycles
        )
        own.stats.stat("sim.instructions", "Simulated instructions executed").add(
            accounting.instructions
        )
        for opcode, cycles in accounting.per_opcode.items():
            own.stats.stat(
                f"sim.cycles.{opcode.name.lower()}",
                "Simulated cycles charged to this opcode",
            ).add(cycles)
        if own.metrics.enabled and elapsed > 0:
            own.metrics.gauge(
                "sim.instructions_per_sec",
                accounting.instructions / elapsed,
                "Interpreted instructions per wall-clock second",
            )
    globals_after = (
        {name: interp.read_global(name) for name in module.globals}
        if capture_globals
        else {}
    )
    return SimulationResult(
        cycles=accounting.cycles,
        instructions=accounting.instructions,
        per_opcode=dict(accounting.per_opcode),
        return_value=result,
        globals_after=globals_after,
    )
