"""Cycle-accounting execution: the repro's stand-in for a real CPU.

Runs a function on the reference interpreter while charging every executed
instruction its cost from the target's :class:`~repro.machine.costmodel.
CostModel`.  The resulting cycle totals play the role of the paper's
wall-clock kernel timings: comparing the same kernel compiled under the
O3 / LSLP / SN-SLP configurations on the same simulated machine gives the
normalized speedups of Figures 5 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..interp.interpreter import Interpreter
from ..interp.memory import Memory
from ..ir.instructions import (
    AltBinaryInst,
    CallInst,
    ExtractElementInst,
    InsertElementInst,
    Instruction,
    Opcode,
    ShuffleVectorInst,
)
from ..ir.module import Module
from ..ir.types import VectorType
from ..machine.targets import TargetMachine
from ..observe.session import CompilerSession, current_session, use_session


class CycleCounter:
    """Accumulates simulated cycles per executed instruction."""

    def __init__(self, target: TargetMachine) -> None:
        self.target = target
        self.cycles = 0.0
        self.instructions = 0
        self.per_opcode: Dict[Opcode, float] = {}

    def charge(self, inst: Instruction) -> None:
        cost = self._cost_of(inst)
        self.cycles += cost
        self.instructions += 1
        self.per_opcode[inst.opcode] = self.per_opcode.get(inst.opcode, 0.0) + cost

    def _cost_of(self, inst: Instruction) -> float:
        model = self.target.cost_model
        if isinstance(inst, AltBinaryInst):
            return model.altbinop_cost(inst.lane_opcodes, inst.type)
        if isinstance(inst, InsertElementInst):
            return model.insert_cost
        if isinstance(inst, ExtractElementInst):
            return model.extract_cost
        if isinstance(inst, ShuffleVectorInst):
            return model.shuffle_cost
        if isinstance(inst, CallInst):
            return model.intrinsic_cost(inst.callee, inst.type)
        result_type = inst.type
        # For stores the relevant width is the stored value's type.
        if inst.opcode is Opcode.STORE:
            result_type = inst.operand(0).type
        if isinstance(result_type, VectorType):
            return model.vector_op_cost(inst.opcode, result_type)
        return model.scalar_op_cost(inst.opcode, result_type)


@dataclass
class SimulationResult:
    """Outcome of simulating one function invocation."""

    cycles: float
    instructions: int
    per_opcode: Dict[Opcode, float]
    return_value: object
    globals_after: Dict[str, list] = field(default_factory=dict)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of *this* result relative to ``baseline`` (>1 = faster)."""
        if self.cycles == 0:
            return float("inf")
        return baseline.cycles / self.cycles


def simulate(
    module: Module,
    function_name: str,
    target: TargetMachine,
    args: Sequence = (),
    inputs: Optional[Dict[str, Sequence]] = None,
    capture_globals: bool = True,
    memory_size: int = 1 << 20,
    max_steps: Optional[int] = None,
    session: Optional[CompilerSession] = None,
) -> SimulationResult:
    """Execute ``function_name`` and account cycles on ``target``.

    ``inputs`` seeds global buffers before the run, which keeps workload
    data out of the IR and identical across compiler configurations.
    ``max_steps`` caps executed instructions (the watchdog): exceeding it
    raises :class:`~repro.interp.interpreter.BudgetExceededError` instead
    of letting a malformed loop hang the harness.

    ``sim.*`` counters land in ``session`` when given, else in an
    ephemeral child of the ambient session (the result object itself
    carries cycles/instructions, so nothing is lost by discarding it).
    """
    own = session if session is not None else current_session().derive(
        name=f"simulate:{function_name}"
    )
    counter = CycleCounter(target)
    interp = Interpreter(
        module,
        memory=Memory(memory_size),
        on_execute=counter.charge,
        max_steps=max_steps,
    )
    if inputs:
        for name, values in inputs.items():
            interp.write_global(name, values)
    with use_session(own):
        with own.tracer.span(
            "simulate", function=function_name, target=target.name
        ):
            result = interp.run(function_name, args)
        own.stats.stat("sim.cycles", "Total simulated cycles").add(counter.cycles)
        own.stats.stat("sim.instructions", "Simulated instructions executed").add(
            counter.instructions
        )
        for opcode, cycles in counter.per_opcode.items():
            own.stats.stat(
                f"sim.cycles.{opcode.name.lower()}",
                "Simulated cycles charged to this opcode",
            ).add(cycles)
    globals_after = (
        {name: interp.read_global(name) for name in module.globals}
        if capture_globals
        else {}
    )
    return SimulationResult(
        cycles=counter.cycles,
        instructions=counter.instructions,
        per_opcode=dict(counter.per_opcode),
        return_value=result,
        globals_after=globals_after,
    )
