"""Small statistics helpers shared by the simulator and benchmark harness.

The paper reports the average of 10 runs after one warm-up and draws error
bars from the standard deviation; :func:`summarize` implements exactly that
protocol for any measurement callable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence


@dataclass(frozen=True)
class RunStats:
    """Mean/stddev summary of repeated measurements."""

    samples: tuple
    mean: float
    stddev: float

    @property
    def count(self) -> int:
        return len(self.samples)

    def normalized_to(self, baseline: "RunStats") -> float:
        """This mean relative to a baseline mean (dimensionless ratio)."""
        if self.mean == 0:
            return float("inf")
        return baseline.mean / self.mean


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def summarize(values: Sequence[float]) -> RunStats:
    values = tuple(values)
    return RunStats(samples=values, mean=mean(values), stddev=stddev(values))


def measure(
    fn: Callable[[], float],
    runs: int = 10,
    warmup: int = 1,
) -> RunStats:
    """The paper's measurement protocol: warm-up runs discarded, then
    ``runs`` measured executions summarized as mean +/- stddev."""
    for _ in range(warmup):
        fn()
    return summarize([fn() for _ in range(runs)])
