"""Command-line driver: the repro's ``clang`` equivalent.

Compiles kernel-language source files, optionally vectorizing, printing
IR, executing on the simulator and comparing configurations::

    python -m repro compile kernel.sn --config sn-slp --emit-ir
    python -m repro compile kernel.sn --guard --phase-budget 2.0
    python -m repro run kernel.sn --kernel fig3 --n 512
    python -m repro compare kernel.sn --kernel fig3 --n 512
    python -m repro report kernel.sn --config sn-slp
    python -m repro explain motiv-leaf-reorder --dot graphs/
    python -m repro bench --json > RESULTS.json
    python -m repro report RESULTS.json --baseline OLD.json -o report.html
    python -m repro fuzz --budget 30s --seed 0 --out fuzz-artifacts
    python -m repro fuzz --replay fuzz-artifacts/failure-0000/reduced.ir
    python -m repro fuzz --inject --budget 15s
    python -m repro bisect failure-0000/reduced.ir --config sn-slp
    python -m repro profile motiv-leaf-reorder --folded profile.folded
    python -m repro bench --json --history-db history.db > RESULTS.json
    python -m repro history --db history.db --check
    python -m repro serve --socket /tmp/repro.sock --slow-log 0.5
    python -m repro top --socket /tmp/repro.sock --count 5
    python -m repro waterfall trace.json --slow 0.1

``compile`` prints the (vectorized) IR — with ``--guard`` it goes
through the fault-isolating driver that degrades instead of crashing;
``run`` executes one kernel and dumps the output buffers; ``compare``
runs every configuration on the same random inputs and reports speedups
+ correctness; ``report`` shows the SLP graphs the vectorizer built —
or, given a ``repro bench --json`` results file, renders a
self-contained HTML benchmark report (with ``--baseline`` diffing);
``explain`` narrates the vectorizer's per-graph decision journal;
``fuzz`` runs a differential-testing campaign (or replays a saved
reproducer, or — with ``--inject`` — injects deterministic faults and
checks they cannot escape the guard); ``bisect`` localizes the first
faulty vectorization decision in a failing module.  Global buffers are
seeded deterministically from ``--seed``.

Exit codes are distinct per failure class so scripts and CI can branch:

==== ==============================================================
code meaning
==== ==============================================================
0    success
2    usage error (bad flag, unknown config/target/kernel, bad file)
3    IR verifier failure
4    internal error (compiler crash)
5    execution budget exceeded (interpreter watchdog)
6    comparison mismatch (``compare`` divergence or fuzz findings)
==== ==============================================================
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Optional, Sequence

from .frontend import compile_source
from .frontend.errors import FrontendError
from .interp import BudgetExceededError
from .ir import FloatType, Module, print_module
from .ir.parser import ParseError
from .ir.verifier import VerificationError
from .machine import DEFAULT_TARGET, target_named
from .observe.session import CompilerSession, current_session, use_session
from .serve.service import ServiceError
from .serve.service import TaskTimeout as ServeTaskTimeout
from .sim import simulate
from .vectorizer import ALL_CONFIGS, compile_module, config_named

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_VERIFIER = 3
EXIT_CRASH = 4
EXIT_BUDGET = 5
EXIT_MISMATCH = 6


def _usage(message: str) -> None:
    """Report a user-input error and exit with the usage code."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(EXIT_USAGE)


def _resolve_config(name: str):
    try:
        return config_named(name)
    except KeyError as exc:
        _usage(str(exc.args[0]) if exc.args else str(exc))


def _resolve_target(name: str):
    try:
        return target_named(name)
    except KeyError as exc:
        _usage(str(exc.args[0]) if exc.args else str(exc))


def _configure_observability(args: argparse.Namespace, session: CompilerSession) -> None:
    """Arm the session's tracer / remark collector / decision journal /
    metrics registry before the command runs."""
    if getattr(args, "trace_out", None):
        session.tracer.enable()
    if getattr(args, "remarks", None):
        session.remarks.enable()
    if getattr(args, "journal", None):
        session.journal.enable()
    if getattr(args, "metrics_out", None) or getattr(args, "history_db", None):
        session.metrics.enable()
    if getattr(args, "log", None):
        session.log.enable(level=getattr(args, "log_level", None) or "info")


def _flush_observability(args: argparse.Namespace, session: CompilerSession) -> None:
    """Write trace/remark files and print the stats table after a command.

    Everything comes out of the per-invocation ``session`` — the process
    default session is never consulted, so two CLI invocations embedded
    in one process cannot bleed observability state into each other.
    """
    if getattr(args, "trace_out", None):
        session.tracer.write_chrome_trace(args.trace_out)
        print(
            f"; wrote {len(session.tracer.events)} trace event(s) to {args.trace_out}",
            file=sys.stderr,
        )
    if getattr(args, "remarks", None):
        session.remarks.write_jsonl(args.remarks)
        print(
            f"; wrote {len(session.remarks.remarks)} remark(s) to {args.remarks}",
            file=sys.stderr,
        )
    if getattr(args, "journal", None):
        session.journal.write_jsonl(args.journal)
        print(
            f"; wrote {len(session.journal.events)} journal event(s) to "
            f"{args.journal}",
            file=sys.stderr,
        )
    if getattr(args, "log", None):
        session.log.write_jsonl(args.log)
        print(
            f"; wrote {len(session.log.events)} log event(s) to {args.log}",
            file=sys.stderr,
        )
    if getattr(args, "metrics_out", None):
        session.metrics.write_exposition(args.metrics_out, session.stats)
        print(
            f"; wrote metrics exposition to {args.metrics_out}",
            file=sys.stderr,
        )
    if getattr(args, "history_db", None):
        _record_history(args, session)
    if getattr(args, "stats", False) and not getattr(args, "_stats_printed", False):
        print(session.stats.report(), file=sys.stderr)


#: args that are output destinations or presentation toggles — they do
#: not change what the run *measures*, so they stay out of the run-
#: history config hash (otherwise changing an artifact path would split
#: a metric series in two)
_HISTORY_CONFIG_EXCLUDE = frozenset(
    {
        "fn", "_stats_printed", "history_db", "metrics_out", "trace_out",
        "remarks", "journal", "out", "output", "stats", "verbose", "json",
        "folded", "dot", "dot_worst", "emit_ir", "show", "cache_dir",
        "socket", "log", "log_level", "slow_log_out",
    }
)


def _record_history(args: argparse.Namespace, session: CompilerSession) -> None:
    """Append this invocation's metrics + counters to the history DB."""
    from .observe.history import RunHistory

    samples = dict(session.metrics.flat_summary())
    for name, value in session.stats.snapshot().items():
        samples.setdefault(name, value)
    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in _HISTORY_CONFIG_EXCLUDE
        and isinstance(value, (str, int, float, bool, list, tuple, type(None)))
    }
    with RunHistory(args.history_db) as history:
        run_id = history.record(
            kind=args.command,
            metrics=samples,
            payload={"args": config},
            config=config,
        )
    print(
        f"; recorded run #{run_id} ({len(samples)} metric(s)) in "
        f"{args.history_db}",
        file=sys.stderr,
    )


def _stats_table(stats, title: str) -> str:
    """Render a counter *snapshot dict* as an LLVM -stats-style table.

    Campaign results carry their session's snapshot as a plain dict; this
    rebuilds a throwaway registry (descriptions auto-fill from the
    process-wide STAT catalog) purely for formatting.
    """
    from .observe.stats import StatsRegistry

    registry = StatsRegistry()
    for name, value in sorted(stats.items()):
        registry.stat(name).add(value)
    return registry.report(title=title, include_zero=False)


def _print_phase_times(result, label: str) -> None:
    """-v: a -time-passes-style per-phase wall-time table on stderr."""
    print(f"; phase times ({label}):", file=sys.stderr)
    for phase, seconds in result.phase_seconds.items():
        print(f";   {phase:10s} {seconds * 1000:8.3f} ms", file=sys.stderr)
    print(
        f";   {'total':10s} {result.compile_seconds * 1000:8.3f} ms",
        file=sys.stderr,
    )


def _load_module(path: str) -> Module:
    """Load a module from kernel-language source (default) or textual IR.

    Files ending in ``.ir`` are parsed as textual IR (see docs/IR.md);
    anything else goes through the mini-C frontend.
    """
    import os
    import re

    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as exc:
        _usage(f"cannot read {path}: {exc.strerror or exc}")
    if path.endswith(".ir"):
        from .ir import parse_module, verify_module

        module = parse_module(source)
        verify_module(module)
        return module
    # module names must be identifiers (they round-trip through the
    # textual IR), so derive one from the file's base name
    stem = os.path.splitext(os.path.basename(path))[0]
    name = re.sub(r"[^A-Za-z0-9_]", "_", stem) or "kernelmod"
    if not name[0].isalpha() and name[0] != "_":
        name = f"m_{name}"
    return compile_source(source, module_name=name)


def _pick_kernel(module: Module, name: Optional[str]) -> str:
    if name is not None:
        try:
            module.function(name)
        except KeyError as exc:
            _usage(str(exc.args[0]) if exc.args else str(exc))
        return name
    names = list(module.functions)
    if len(names) != 1:
        _usage(f"module defines kernels {names}; pick one with --kernel")
    return names[0]


def _seed_inputs(module: Module, seed: int) -> Dict[str, List]:
    """Deterministic random contents for every global buffer."""
    rng = random.Random(seed)
    inputs: Dict[str, List] = {}
    for name, buffer in module.globals.items():
        if isinstance(buffer.element, FloatType):
            inputs[name] = [rng.uniform(-4.0, 4.0) for _ in range(buffer.count)]
        else:
            inputs[name] = [rng.randint(-100, 100) for _ in range(buffer.count)]
    return inputs


def _values_close(a, b, is_float: bool) -> bool:
    import math

    if not is_float:
        return a == b
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def cmd_compile(args: argparse.Namespace) -> int:
    module = _load_module(args.source)
    config = _resolve_config(args.config)
    target = _resolve_target(args.target)
    if args.guard:
        from .robust.guard import guarded_compile

        ladder = None
        if args.ladder:
            ladder = [name.strip() for name in args.ladder.split(",") if name.strip()]
            if not ladder:
                _usage(f"empty --ladder {args.ladder!r}")
            for name in ladder:
                _resolve_config(name)  # usage-exits on unknown rungs
        outcome = guarded_compile(
            module,
            config,
            target,
            unroll_factor=args.unroll,
            ladder=ladder,
            phase_budget_seconds=args.phase_budget,
            bundle_dir=args.bundle_dir,
            session=current_session(),
        )
        result = outcome.result
        for line in outcome.summary().splitlines():
            print(f"; {line}", file=sys.stderr)
        label = outcome.config_used
    elif args.cache_dir:
        from .vectorizer import CompileCache, cached_compile_module

        cache = CompileCache(args.cache_dir)
        result = cached_compile_module(
            module,
            config,
            target,
            unroll_factor=args.unroll,
            session=current_session(),
            cache=cache,
        )
        label = config.name
        hit = current_session().stats.value("cache.hits") > 0
        print(
            f"; compile cache {'hit' if hit else 'miss'} in {args.cache_dir}",
            file=sys.stderr,
        )
    else:
        result = compile_module(
            module, config, target,
            unroll_factor=args.unroll, session=current_session(),
        )
        label = config.name
    print(
        f"; compiled {args.source} with {label} for {target.name} "
        f"in {result.compile_seconds * 1000:.2f} ms",
        file=sys.stderr,
    )
    graphs = result.report.all_graphs()
    vectorized = [g for g in graphs if g.vectorized]
    print(
        f"; SLP graphs: {len(graphs)} attempted, {len(vectorized)} vectorized",
        file=sys.stderr,
    )
    if args.verbose:
        _print_phase_times(result, label)
    if args.emit_ir:
        print(print_module(result.module), end="")
    return EXIT_OK


def cmd_run(args: argparse.Namespace) -> int:
    if args.engine:
        from .interp.engine import set_default_engine

        set_default_engine(args.engine)
    module = _load_module(args.source)
    kernel = _pick_kernel(module, args.kernel)
    config = _resolve_config(args.config)
    target = _resolve_target(args.target)
    compiled = compile_module(
        module, config, target,
        unroll_factor=args.unroll, session=current_session(),
    )
    if args.verbose:
        _print_phase_times(compiled, config.name)
    inputs = _seed_inputs(module, args.seed)
    result = simulate(
        compiled.module,
        kernel,
        target,
        [args.n],
        inputs=inputs,
        max_steps=args.max_steps,
        session=current_session(),
        engine=args.engine,
    )
    print(f"config:       {config.name}")
    print(f"cycles:       {result.cycles:.1f}")
    print(f"instructions: {result.instructions}")
    for name in sorted(result.globals_after):
        values = result.globals_after[name][: args.show]
        rendered = ", ".join(
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in values
        )
        print(f"@{name}[:{args.show}] = [{rendered}]")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    module = _load_module(args.source)
    kernel = _pick_kernel(module, args.kernel)
    target = _resolve_target(args.target)
    inputs = _seed_inputs(module, args.seed)
    baseline = None
    exit_code = EXIT_OK
    rows: List[Dict] = []
    if not args.json:
        print(f"{'config':8s} {'cycles':>12s} {'speedup':>8s} {'vectorized':>11s} {'correct':>8s}")
    for config in ALL_CONFIGS:
        # one derived session per configuration: its snapshot holds this
        # config's compile counters plus the simulation's cycle histogram,
        # and nothing from the other configurations
        config_session = current_session().derive(name=f"compare:{config.name}")
        compiled = compile_module(
            module, config, target,
            unroll_factor=args.unroll, session=config_session,
        )
        result = simulate(
            compiled.module, kernel, target, [args.n],
            inputs=inputs, session=config_session,
        )
        counters = config_session.stats.snapshot()
        if baseline is None:
            baseline = result
        correct = True
        for name, values in result.globals_after.items():
            is_float = isinstance(module.globals[name].element, FloatType)
            for x, y in zip(values, baseline.globals_after[name]):
                if not _values_close(x, y, is_float):
                    correct = False
                    break
        if not correct:
            exit_code = EXIT_MISMATCH
        rows.append(
            {
                "config": config.name,
                "cycles": result.cycles,
                "speedup": baseline.cycles / result.cycles,
                "instructions": result.instructions,
                "vectorized_graphs": len(compiled.report.vectorized_graphs()),
                "correct": correct,
                "compile_seconds": compiled.compile_seconds,
                "phase_seconds": compiled.phase_seconds,
                "counters": counters,
            }
        )
        if not args.json:
            print(
                f"{config.name:8s} {result.cycles:12.1f} "
                f"{baseline.cycles / result.cycles:8.2f} "
                f"{len(compiled.report.vectorized_graphs()):11d} "
                f"{str(correct):>8s}"
            )
        if args.verbose and not args.json:
            _print_phase_times(compiled, config.name)
        if args.stats:
            print(
                config_session.stats.report(
                    title=f"Statistics Collected ({config.name})"
                ),
                file=sys.stderr,
            )
    args._stats_printed = True
    if args.json:
        document = {
            "source": args.source,
            "kernel": kernel,
            "target": target.name,
            "n": args.n,
            "seed": args.seed,
            "unroll": args.unroll,
            "configs": rows,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    return exit_code


def _load_module_or_kernel(source: str) -> Module:
    """Resolve an ``explain`` source: a file path, or a registered
    benchmark kernel name (``repro explain fig3-trunk-reorder``)."""
    import os

    if os.path.exists(source) or os.sep in source:
        return _load_module(source)
    from .kernels.suite import kernel_named

    try:
        return kernel_named(source).build()
    except KeyError:
        _usage(
            f"{source}: no such file, and no benchmark kernel is "
            "registered under that name"
        )


def cmd_explain(args: argparse.Namespace) -> int:
    import json
    import os

    from .observe.explain import explain_module, render_stories

    module = _load_module_or_kernel(args.source)
    config = _resolve_config(args.config)
    target = _resolve_target(args.target)
    if args.function:
        try:
            module.function(args.function)
        except KeyError as exc:
            _usage(str(exc.args[0]) if exc.args else str(exc))
    result = explain_module(
        module, config, target,
        unroll_factor=args.unroll, session=current_session(),
    )
    # surface the explain run's private journal through --journal FILE
    current_session().journal.events.extend(result.session.journal.events)
    stories = result.stories
    if args.function:
        stories = [s for s in stories if s.function == args.function]
    if args.dot:
        os.makedirs(args.dot, exist_ok=True)
        written = 0
        for story in stories:
            for name, text in sorted(story.dots().items()):
                path = os.path.join(
                    args.dot, f"graph{story.graph_id}-{name}.dot"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
                written += 1
        print(f"; wrote {written} DOT file(s) to {args.dot}", file=sys.stderr)
    if args.json:
        doc = result.to_json()
        if args.function:
            doc["graphs"] = [
                g for g in doc["graphs"] if g["function"] == args.function
            ]
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_stories(stories, verbose=args.verbose), end="")
    return EXIT_OK


def _report_html(args: argparse.Namespace) -> int:
    """``repro report RESULTS.json``: render the HTML benchmark report."""
    import json

    from .observe.report_html import load_results, regressions, write_report

    try:
        doc = load_results(args.source)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        _usage(f"cannot load {args.source}: {exc}")
    baseline = None
    if args.baseline:
        try:
            baseline = load_results(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            _usage(f"cannot load baseline {args.baseline}: {exc}")
    deltas = write_report(
        args.output,
        doc,
        baseline=baseline,
        dots=_worst_miss_dots(doc, args.dot_worst),
        title=f"SLP benchmark report ({doc.get('target', '?')})",
    )
    print(f"; wrote HTML report to {args.output}", file=sys.stderr)
    bad = regressions(deltas)
    for delta in deltas:
        print(f"; {delta.describe()}", file=sys.stderr)
    if bad:
        print(
            f"repro: report: {len(bad)} regression(s) against "
            f"{args.baseline}",
            file=sys.stderr,
        )
        return EXIT_MISMATCH
    return EXIT_OK


def _worst_miss_dots(doc, limit: int):
    """DOT sources for the worst-performing kernels' SLP graphs.

    Re-explains the ``limit`` registered kernels with the lowest SN-SLP
    speedup; best-effort — a kernel that is not registered (or fails to
    recompile) is silently skipped, never failing the report.
    """
    if not limit:
        return {}
    from .kernels.suite import kernel_named
    from .observe.explain import explain_module
    from .vectorizer import config_named

    ranked = sorted(
        (
            run
            for run in doc.get("runs", [])
            if run.get("config") == "SN-SLP" and run.get("speedup") is not None
        ),
        key=lambda run: float(run["speedup"]),
    )
    dots = {}
    for run in ranked[:limit]:
        try:
            kernel = kernel_named(str(run["kernel"]))
            explained = explain_module(
                kernel.build(), config_named("SN-SLP"),
                session=current_session(),
            )
        except Exception:  # noqa: BLE001 - decorative section only
            continue
        for story in explained.stories:
            dot = story.dots().get("graph")
            if dot:
                dots[
                    f"{run['kernel']} graph #{story.graph_id} "
                    f"({story.verdict})"
                ] = dot
    return dots


def cmd_report(args: argparse.Namespace) -> int:
    if args.source.endswith(".json"):
        return _report_html(args)
    module = _load_module(args.source)
    config = _resolve_config(args.config)
    target = _resolve_target(args.target)
    compiled = compile_module(
        module, config, target,
        unroll_factor=args.unroll, session=current_session(),
    )
    print(compiled.report.summary())
    missed = compiled.report.missed_reasons()
    if missed:
        print("missed-vectorization reasons (gather nodes in failed graphs):")
        for reason, count in missed.items():
            print(f"  {count:3d}x {reason}")
    partial = compiled.report.partial_gather_reasons()
    if partial:
        print("partial gathers inside vectorized graphs:")
        for reason, count in partial.items():
            print(f"  {count:3d}x {reason}")
    if args.verbose:
        _print_phase_times(compiled, config.name)
    print()
    for graph in compiled.report.all_graphs():
        verdict = "vectorized" if graph.vectorized else "not profitable"
        print(f"[{graph.kind}] {verdict} (cost {graph.cost:+.1f})")
        print(graph.dump)
        for record in graph.supernodes:
            moves = ""
            if record.leaf_swaps or record.trunk_swaps:
                moves = (
                    f", applied {record.leaf_swaps} leaf swap(s) + "
                    f"{record.trunk_swaps} trunk swap(s)"
                )
            print(
                f"  {record.kind}-node: {record.lanes} lanes x {record.size} "
                f"trunks{' (inverse ops)' if record.contains_inverse else ''}"
                f"{moves}"
            )
        print()
    return 0


def _default_jobs() -> int:
    from .bench.parallel import default_jobs

    return default_jobs()


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import run_campaign, run_injection_campaign, replay_file

    if args.engine:
        # process-wide so spawned campaign workers inherit the choice
        from .interp.engine import set_default_engine

        set_default_engine(args.engine)
    target = _resolve_target(args.target)

    if args.inject:
        result = run_injection_campaign(
            budget=args.budget,
            seed=args.seed,
            target=target,
            input_seed=args.input_seed,
            max_ulps=args.max_ulps,
            phase_budget_seconds=args.phase_budget,
            progress=lambda line: print(f"; {line}", file=sys.stderr),
            session=current_session(),
            engine=args.engine,
        )
        print(result.summary())
        if args.stats:
            print(
                _stats_table(result.stats, "Injection Campaign Statistics"),
                file=sys.stderr,
            )
            args._stats_printed = True
        return EXIT_OK if result.ok else EXIT_MISMATCH

    if args.replay:
        report = replay_file(
            args.replay,
            target=target,
            input_seed=args.input_seed,
            max_ulps=args.max_ulps,
            engine=args.engine,
        )
        print(f"replay {args.replay}:")
        for outcome in report.outcomes:
            line = f"  {outcome.config:10s} {outcome.status}"
            if outcome.detail:
                line += f"  ({outcome.detail})"
            print(line)
        if report.reference_trapped:
            print("  reference run trapped: the reproducer is input-sensitive")
        if args.stats:
            # per-config counter snapshots from each outcome's session
            for outcome in report.outcomes:
                print(
                    _stats_table(
                        outcome.counters, f"Replay Counters ({outcome.config})"
                    ),
                    file=sys.stderr,
                )
            args._stats_printed = True
        return EXIT_OK if report.ok else EXIT_MISMATCH

    service = None
    resilience = None
    if args.resilient:
        if not args.service:
            _usage("--resilient requires --service")
        from .serve.resilience import ResiliencePolicy

        resilience = ResiliencePolicy(seed=args.seed)
    if args.service:
        from .serve.service import CompileService

        service = CompileService(
            workers=args.jobs if args.jobs is not None else _default_jobs(),
            session=current_session(),
            name="fuzz-service",
        )
        service.start()
    try:
        result = run_campaign(
            budget=args.budget,
            seed=args.seed,
            out_dir=args.out,
            target=target,
            input_seed=args.input_seed,
            max_ulps=args.max_ulps,
            reduce_failures=not args.no_reduce,
            progress=lambda line: print(f"; {line}", file=sys.stderr),
            jobs=args.jobs if args.jobs is not None else _default_jobs(),
            session=current_session(),
            service=service,
            resilience=resilience,
            engine=args.engine,
        )
    finally:
        if service is not None:
            service.close()
    print(result.summary())
    if args.stats:
        print(
            _stats_table(result.stats, "Fuzzing Campaign Statistics"),
            file=sys.stderr,
        )
        args._stats_printed = True
    for failure in result.failures:
        if failure.reduction is not None:
            print(
                f"; failure #{failure.index}: reduced "
                f"{failure.reduction.instructions_before} -> "
                f"{failure.reduction.instructions_after} instruction(s)",
                file=sys.stderr,
            )
    return EXIT_OK if result.ok else EXIT_MISMATCH


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench.parallel import default_jobs, run_suite_parallel
    from .bench.runner import speedup_over
    from .kernels.suite import kernel_named

    if args.engine:
        # process-wide so bench workers / the compile service inherit it
        from .interp.engine import set_default_engine

        set_default_engine(args.engine)
    target = _resolve_target(args.target)
    kernels = None
    if args.kernel:
        try:
            kernels = [kernel_named(name) for name in args.kernel]
        except KeyError as exc:
            _usage(str(exc.args[0]) if exc.args else str(exc))
    jobs = args.jobs if args.jobs is not None else default_jobs()
    service = None
    resilience = None
    if args.resilient:
        if not args.service:
            _usage("--resilient requires --service")
        from .serve.resilience import ResiliencePolicy

        resilience = ResiliencePolicy(seed=args.seed)
    if args.service:
        from .serve.service import CompileService

        service = CompileService(
            workers=jobs,
            cache_dir=args.cache_dir,
            default_timeout=args.service_timeout,
            session=current_session(),
            name="bench-service",
        )
        service.start()
    try:
        suite = run_suite_parallel(
            kernels, target=target, seed=args.seed, jobs=jobs,
            journal=args.journal_summary, service=service,
            resilience=resilience,
        )
    finally:
        if service is not None:
            snapshot = service.describe()
            service.close()
            counters = snapshot["counters"]
            print(
                f"; service: {len(snapshot['workers'])} worker(s), "
                f"{int(counters.get('serve.tasks', 0))} task(s), "
                f"{snapshot['compiles_per_sec']:.2f} compiles/sec, "
                f"task-cache hits "
                f"{int(counters.get('serve.task_cache.hits', 0))}, "
                f"cross-worker hits "
                f"{int(counters.get('cache.cross_worker_hits', 0))}",
                file=sys.stderr,
            )
    exit_code = EXIT_OK
    rows: List[Dict] = []
    if not args.json:
        print(
            f"{'kernel':24s} {'config':8s} {'cycles':>12s} {'speedup':>8s} "
            f"{'correct':>8s}"
        )
    for kernel_name, runs in suite.items():
        for config_name, run in runs.items():
            speedup = speedup_over(runs, config_name)
            if not run.correct:
                exit_code = EXIT_MISMATCH
            row: Dict = {
                "kernel": kernel_name,
                "config": config_name,
                "cycles": run.cycles,
                "speedup": speedup,
                "correct": run.correct,
                "vectorized_graphs": run.vectorized_graphs,
                "attempted_graphs": run.attempted_graphs,
                "phase_seconds": run.phase_seconds,
                "counters": run.counters,
            }
            if run.journal is not None:
                row["journal"] = run.journal
            rows.append(row)
            if not args.json:
                print(
                    f"{kernel_name:24s} {config_name:8s} {run.cycles:12.1f} "
                    f"{speedup:8.2f} {str(run.correct):>8s}"
                )
    _bench_gauges(rows)
    if args.json:
        document = {
            "target": target.name,
            "seed": args.seed,
            "jobs": jobs,
            "runs": rows,
        }
        metrics = current_session().metrics
        if metrics.enabled:
            document["metrics"] = metrics.summary()
        print(json.dumps(document, indent=2, sort_keys=True))
    return exit_code


def _bench_gauges(rows: List[Dict]) -> None:
    """Record deterministic per-config aggregates as gauges.

    Total simulated cycles and geomean speedups are pure functions of
    the code under test (no wall clock), so their history series are
    flat until a real change lands — exactly what the MAD gate's
    relative-deviation fallback wants to see.
    """
    import math

    metrics = current_session().metrics
    if not metrics.enabled or not rows:
        return
    speedups: Dict[str, List[float]] = {}
    cycles: Dict[str, float] = {}
    for row in rows:
        config = str(row["config"])
        speedups.setdefault(config, []).append(float(row["speedup"]))
        cycles[config] = cycles.get(config, 0.0) + float(row["cycles"])
    for config in sorted(speedups):
        values = speedups[config]
        geomean = math.exp(sum(math.log(v) for v in values) / len(values))
        metrics.gauge(
            f"bench.geomean_speedup.{config}", geomean,
            description="geomean speedup over O3 across benched kernels",
        )
        metrics.gauge(
            f"bench.total_cycles.{config}", cycles[config],
            description="total simulated cycles across benched kernels",
        )


def cmd_profile(args: argparse.Namespace) -> int:
    from .observe.profile import render_top_table, self_time_stats, write_folded

    module = _load_module_or_kernel(args.source)
    kernel = _pick_kernel(module, args.kernel)
    config = _resolve_config(args.config)
    target = _resolve_target(args.target)
    session = current_session()
    session.tracer.enable()  # the profile *is* the trace
    inputs = _seed_inputs(module, args.seed)
    for _ in range(max(1, args.repeat)):
        compiled = compile_module(
            module, config, target,
            unroll_factor=args.unroll,
            session=session.derive(name="profile-compile"),
        )
        simulate(
            compiled.module,
            kernel,
            target,
            [args.n],
            inputs=inputs,
            session=session.derive(name="profile-sim"),
        )
    stats = self_time_stats(session.tracer.events)
    # artifacts before the table: a closed stdout pipe (| head, | grep -q)
    # must not lose the folded output
    if args.folded:
        write_folded(args.folded, session.tracer.events)
        print(
            f"; wrote folded stacks to {args.folded} "
            "(feed to flamegraph.pl or drop into speedscope.app)",
            file=sys.stderr,
        )
    print(
        f"; profiled {args.source} ({config.name}, {target.name}): "
        f"{len(session.tracer.events)} span(s) over "
        f"{max(1, args.repeat)} repeat(s)",
        file=sys.stderr,
    )
    print(render_top_table(stats, args.top))
    return EXIT_OK


def cmd_history(args: argparse.Namespace) -> int:
    import json
    import os

    from .observe.history import (
        DEFAULT_THRESHOLD,
        RunHistory,
        check_history,
        render_trend_table,
    )

    if not os.path.exists(args.db):
        _usage(f"history database {args.db} does not exist")
    with RunHistory(args.db) as history:
        if args.json:
            document = [
                {
                    "id": record.id,
                    "created_at": record.created_at,
                    "kind": record.kind,
                    "git_rev": record.git_rev,
                    "config_hash": record.config_hash,
                    "metrics": record.metrics,
                }
                for record in history.runs(kind=args.kind, limit=args.limit)
            ]
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(
                render_trend_table(
                    history,
                    kind=args.kind,
                    metrics=args.metric or None,
                    limit=args.limit,
                )
            )
        if args.check:
            anomalies = check_history(
                history,
                kind=args.kind,
                metrics=args.metric or None,
                limit=args.limit,
                threshold=(
                    args.threshold if args.threshold is not None
                    else DEFAULT_THRESHOLD
                ),
            )
            if anomalies:
                for anomaly in anomalies:
                    print(
                        f"repro: history: regression: {anomaly}",
                        file=sys.stderr,
                    )
                return EXIT_MISMATCH
            print("; history check: no regressions", file=sys.stderr)
    return EXIT_OK


def cmd_bisect(args: argparse.Namespace) -> int:
    from .robust.bisect import run_bisect

    module = _load_module(args.source)
    config = _resolve_config(args.config)
    target = _resolve_target(args.target)
    kernel = _pick_kernel(module, args.kernel)
    fn_args = None
    if args.n is not None:
        fn_args = tuple(args.n for _ in module.function(kernel).arguments)
    try:
        result = run_bisect(
            module,
            config,
            target,
            unroll_factor=args.unroll,
            kernel=kernel,
            args=fn_args,
            input_seed=args.input_seed,
            max_ulps=args.max_ulps,
        )
    except ValueError as exc:  # e.g. the reference run traps
        _usage(str(exc))
    print(result.summary())
    if args.decisions:
        for index, description in enumerate(result.decisions, start=1):
            marker = " <-- first bad" if index == result.first_bad else ""
            print(f"  #{index:3d} {description}{marker}")
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .serve.service import CompileService
    from .serve.wire import SocketServer, serve_stream

    service = CompileService(
        workers=args.jobs if args.jobs is not None else _default_jobs(),
        cache_dir=args.cache_dir,
        cache_entries=args.cache_entries,
        max_pending=args.max_pending,
        default_timeout=args.request_timeout,
        slow_log_seconds=args.slow_log,
        session=current_session(),
        name="serve",
    )
    service.start()
    where = (
        f"socket {args.socket}" if args.socket else "JSONL on stdin"
    )
    cache = f", cache {args.cache_dir}" if args.cache_dir else ""
    print(
        f"; repro serve: {service.workers} warm worker(s), {where}{cache}",
        file=sys.stderr,
    )
    try:
        if args.socket:
            SocketServer(service, args.socket).serve_forever()
        else:
            serve_stream(
                service, sys.stdin, sys.stdout,
                faults=service.session.faults,
            )
    finally:
        snapshot = service.describe()
        slow = list(service.slow_records)
        service.close(drain=True)
        if args.slow_log_out:
            with open(args.slow_log_out, "w", encoding="utf-8") as handle:
                for record in slow:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            print(
                f"; wrote {len(slow)} slow-request record(s) to "
                f"{args.slow_log_out}",
                file=sys.stderr,
            )
        print(
            f"; served {int(snapshot['counters'].get('serve.tasks', 0))} "
            f"task(s) at {snapshot['compiles_per_sec']:.2f} compiles/sec "
            f"({snapshot['respawns']} respawn(s))",
            file=sys.stderr,
        )
    return EXIT_OK


def _render_stats_dashboard(doc: Dict) -> str:
    """The ``repro top`` screen: one service snapshot as a text dashboard."""
    queue = doc.get("queue_seconds") or {}
    turnaround = doc.get("turnaround_seconds") or {}
    counters = doc.get("counters") or {}
    breaker = doc.get("breaker") or "closed"
    lines = [
        f"{doc.get('name', 'service')}: up {doc.get('uptime_seconds', 0.0):.1f}s  "
        f"{doc.get('compiles_per_sec', 0.0):.2f} compiles/sec  "
        f"breaker {breaker}  "
        f"{doc.get('respawns', 0)} respawn(s)  "
        f"{doc.get('slow_requests', 0)} slow",
        f"  queue: {doc.get('pending', 0)} pending, "
        f"{doc.get('inflight', 0)} inflight; "
        f"wait p50 {queue.get('p50', 0.0) * 1e3:.1f}ms "
        f"p99 {queue.get('p99', 0.0) * 1e3:.1f}ms; "
        f"turnaround p50 {turnaround.get('p50', 0.0) * 1e3:.1f}ms "
        f"p99 {turnaround.get('p99', 0.0) * 1e3:.1f}ms",
        f"  tasks: {int(counters.get('serve.tasks', 0))} done, "
        f"{int(counters.get('serve.errors', 0))} error(s), "
        f"{int(counters.get('serve.requeued', 0))} requeued; "
        f"task-cache hit rate {doc.get('cache_hit_rate', 0.0) * 100:.1f}%",
        f"  {'worker':>6s} {'pid':>7s} {'gen':>3s} {'alive':>5s} "
        f"{'inflight':>8s} {'sent':>6s} {'util%':>6s}",
    ]
    for worker in doc.get("workers", []):
        lines.append(
            f"  {worker.get('index', 0):6d} {worker.get('pid', 0):7d} "
            f"{worker.get('generation', 0):3d} "
            f"{str(bool(worker.get('alive'))):>5s} "
            f"{worker.get('inflight', 0):8d} "
            f"{worker.get('tasks_sent', 0):6d} "
            f"{worker.get('utilization', 0.0) * 100:6.1f}"
        )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    import json
    import time

    from .serve.wire import ServiceClient

    try:
        client = ServiceClient(args.socket)
    except (ConnectionError, OSError) as exc:
        _usage(f"cannot reach service at {args.socket}: {exc}")
    try:
        for iteration in range(max(1, args.count)):
            if iteration:
                time.sleep(args.interval)
            response = client.request({"kind": "stats"})
            if not response.get("ok"):
                error = response.get("error") or {}
                print(
                    f"repro: top: {error.get('type', 'error')}: "
                    f"{error.get('message', response)}",
                    file=sys.stderr,
                )
                return EXIT_CRASH
            doc = response["result"]
            if args.json:
                print(json.dumps(doc, sort_keys=True), flush=True)
            else:
                print(_render_stats_dashboard(doc), flush=True)
    except (ConnectionError, OSError) as exc:
        print(f"repro: top: connection lost: {exc}", file=sys.stderr)
        return EXIT_CRASH
    finally:
        client.close()
    return EXIT_OK


def _trace_waterfalls(events, limit: int, slow: float) -> List[Dict]:
    """Per-request latency breakdowns from a Chrome trace's span tree.

    Groups spans by trace id, anchors each group at its earliest start,
    and orders requests slowest-first so ``--limit`` keeps the
    interesting tail."""
    by_trace: Dict[str, List] = {}
    for event in events:
        if event.trace_id:
            by_trace.setdefault(event.trace_id, []).append(event)
    requests = []
    for trace_id, spans in by_trace.items():
        base = min(span.start_ns for span in spans)
        total = max(span.end_ns for span in spans) - base
        if total / 1e9 < slow:
            continue
        rows = [
            {
                "name": span.name,
                "offset_ms": round((span.start_ns - base) / 1e6, 3),
                "duration_ms": round(span.duration_ns / 1e6, 3),
                "pid": span.pid,
                "generation": span.generation,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "args": {
                    key: value
                    for key, value in span.args.items()
                    if isinstance(value, (str, int, float, bool))
                },
            }
            for span in sorted(
                spans, key=lambda s: (s.start_ns, -s.duration_ns)
            )
        ]
        requests.append(
            {
                "trace_id": trace_id,
                "total_ms": round(total / 1e6, 3),
                "spans": rows,
            }
        )
    requests.sort(key=lambda r: (-r["total_ms"], r["trace_id"]))
    return requests[:limit] if limit else requests


def cmd_waterfall(args: argparse.Namespace) -> int:
    import json

    from .observe.trace import load_chrome_trace

    try:
        events = load_chrome_trace(args.trace)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        _usage(f"cannot load trace {args.trace}: {exc}")
    requests = _trace_waterfalls(events, args.limit, args.slow)
    if args.json:
        print(json.dumps({"requests": requests}, indent=2, sort_keys=True))
        return EXIT_OK
    if not requests:
        print(
            "; no traced requests above "
            f"{args.slow:.3f}s in {args.trace}",
            file=sys.stderr,
        )
        return EXIT_OK
    width = 32
    for request in requests:
        total = max(request["total_ms"], 1e-9)
        print(f"trace {request['trace_id']}  total {total:.3f} ms")
        for span in request["spans"]:
            start = int(width * span["offset_ms"] / total)
            length = max(1, int(width * span["duration_ms"] / total))
            bar = " " * min(start, width - 1) + "#" * min(length, width - start)
            where = (
                f"pid{span['pid']}"
                + (f".g{span['generation']}" if span["generation"] else "")
                if span["pid"]
                else "client"
            )
            print(
                f"  [{bar:<{width}s}] {span['duration_ms']:9.3f} ms  "
                f"{span['name']}  ({where})"
            )
        print()
    return EXIT_OK


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .serve.chaos import DEFAULT_KERNELS, run_chaos_campaign

    kernel_names = tuple(args.kernel) if args.kernel else DEFAULT_KERNELS
    from .kernels.suite import kernel_named

    try:
        for name in kernel_names:
            kernel_named(name)
    except KeyError as exc:
        _usage(str(exc.args[0]) if exc.args else str(exc))
    result = run_chaos_campaign(
        budget=args.budget,
        seed=args.seed,
        kernel_names=kernel_names,
        fuzz_programs=args.fuzz_programs,
        progress=lambda line: print(f"; {line}", file=sys.stderr),
        session=current_session(),
    )
    print(result.summary())
    for run in result.runs:
        if run.status in ("escaped", "fatal"):
            print(f"  [{run.status}] {run.scenario}: {run.detail}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"; wrote chaos classification to {args.out}", file=sys.stderr)
    return EXIT_OK if result.ok else EXIT_MISMATCH


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Super-Node SLP reproduction: compile and run kernels",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_config: bool = True) -> None:
        p.add_argument("source", help="kernel-language source file (or textual IR when named *.ir)")
        if with_config:
            p.add_argument(
                "--config",
                default="SN-SLP",
                help="vectorizer configuration: O3, SLP, LSLP, SN-SLP",
            )
        p.add_argument(
            "--target",
            default=DEFAULT_TARGET.name,
            help="target machine (skylake-like, sse4-like, no-addsub, scalar)",
        )
        p.add_argument(
            "--unroll",
            type=int,
            default=0,
            metavar="U",
            help="unroll canonical loops by U before vectorizing",
        )
        p.add_argument(
            "--stats",
            action="store_true",
            help="print the statistic counter table on stderr (LLVM -stats)",
        )
        p.add_argument(
            "--remarks",
            metavar="FILE",
            help="write optimization remarks as JSONL to FILE (LLVM -Rpass)",
        )
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="write a Chrome trace-event JSON file (LLVM -ftime-trace)",
        )
        p.add_argument(
            "--journal",
            metavar="FILE",
            help="write the vectorizer's decision journal as JSONL to FILE",
        )
        p.add_argument(
            "-v",
            "--verbose",
            action="store_true",
            help="print per-phase compile times on stderr (-time-passes)",
        )
        metrics_flags(p)

    def metrics_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="write gauges/histograms/counters as Prometheus text "
            "exposition to FILE (arms the session metrics registry)",
        )
        p.add_argument(
            "--history-db",
            metavar="FILE",
            help="append this run's headline metrics to the sqlite "
            "run-history DB at FILE (see `repro history`)",
        )
        p.add_argument(
            "--log",
            metavar="FILE",
            help="write the structured event log (service lifecycle, "
            "retries, degradations, chaos runs) as JSONL to FILE",
        )
        p.add_argument(
            "--log-level",
            choices=("debug", "info", "warn", "error"),
            default=None,
            metavar="LEVEL",
            help="event-log severity threshold for --log (default: info)",
        )

    def engine_flag(p: argparse.ArgumentParser) -> None:
        from .interp.engine import ENGINES

        p.add_argument(
            "--engine",
            choices=ENGINES,
            default=None,
            help="execution engine: 'scalar' (reference, per-step) or "
            "'batched' (planned, whole-block; default) — results are "
            "bit-identical, only throughput differs",
        )

    p_compile = sub.add_parser("compile", help="compile and optionally print IR")
    common(p_compile)
    p_compile.add_argument("--emit-ir", action="store_true", help="print textual IR")
    p_compile.add_argument(
        "--guard",
        action="store_true",
        help="compile through the guarded driver: checkpoint every phase, "
        "roll back failures, degrade down the config ladder",
    )
    p_compile.add_argument(
        "--ladder",
        metavar="C1,C2,...",
        help="degradation ladder for --guard (default: SN-SLP,LSLP,SLP,O3)",
    )
    p_compile.add_argument(
        "--phase-budget",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per pipeline phase under --guard",
    )
    p_compile.add_argument(
        "--bundle-dir",
        metavar="DIR",
        help="write a reduced failure-NNNN crash bundle under DIR when a "
        "guarded compile captures a crash",
    )
    p_compile.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed compile cache: reuse the stored result when "
        "the printed module + config + target + unroll factor match",
    )
    p_compile.set_defaults(fn=cmd_compile)

    p_run = sub.add_parser("run", help="compile and execute one kernel")
    common(p_run)
    p_run.add_argument("--kernel", help="kernel name (default: the only one)")
    p_run.add_argument("--n", type=int, default=64, help="trip-count argument")
    p_run.add_argument("--seed", type=int, default=0, help="input seed")
    p_run.add_argument("--show", type=int, default=8, help="buffer elements to print")
    p_run.add_argument(
        "--max-steps",
        type=int,
        metavar="N",
        help="interpreter watchdog: abort after N executed instructions "
        f"(exit code {EXIT_BUDGET})",
    )
    engine_flag(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_compare = sub.add_parser(
        "compare", help="run all configurations; verify and report speedups"
    )
    common(p_compare, with_config=False)
    p_compare.add_argument("--kernel", help="kernel name (default: the only one)")
    p_compare.add_argument("--n", type=int, default=64)
    p_compare.add_argument("--seed", type=int, default=0)
    p_compare.add_argument(
        "--json",
        action="store_true",
        help="print a structured JSON document (cycles, phase times, counters)",
    )
    p_compare.set_defaults(fn=cmd_compare)

    p_report = sub.add_parser(
        "report",
        help="show the vectorizer's SLP graphs, or render an HTML "
        "benchmark report from a bench JSON file",
    )
    common(p_report)
    p_report.add_argument(
        "--baseline",
        metavar="OLD.json",
        help="bench JSON to diff against (JSON mode); cycle/counter "
        f"regressions exit with code {EXIT_MISMATCH}",
    )
    p_report.add_argument(
        "-o",
        "--output",
        default="report.html",
        metavar="FILE",
        help="HTML output path for JSON mode (default: report.html)",
    )
    p_report.add_argument(
        "--dot-worst",
        type=int,
        default=2,
        metavar="N",
        help="embed SLP graph DOT for the N slowest kernels (0 disables)",
    )
    p_report.set_defaults(fn=cmd_report)

    p_explain = sub.add_parser(
        "explain",
        help="narrate the vectorizer's per-graph decisions "
        "(seeds, look-ahead picks, APO reorders, cost verdicts)",
    )
    p_explain.add_argument(
        "source",
        help="kernel-language source file, textual IR (*.ir), or a "
        "registered benchmark kernel name",
    )
    p_explain.add_argument(
        "--function",
        metavar="F",
        help="only narrate graphs inside function F",
    )
    p_explain.add_argument(
        "--config",
        default="SN-SLP",
        help="vectorizer configuration: O3, SLP, LSLP, SN-SLP",
    )
    p_explain.add_argument(
        "--target",
        default=DEFAULT_TARGET.name,
        help="target machine (skylake-like, sse4-like, no-addsub, scalar)",
    )
    p_explain.add_argument(
        "--unroll",
        type=int,
        default=0,
        metavar="U",
        help="unroll canonical loops by U before vectorizing",
    )
    p_explain.add_argument(
        "--dot",
        metavar="DIR",
        help="write per-graph DOT files (chains before/after reorder, "
        "final SLP graph) under DIR",
    )
    p_explain.add_argument(
        "--json",
        action="store_true",
        help="print the stories as a structured JSON document",
    )
    p_explain.add_argument(
        "--journal",
        metavar="FILE",
        help="also write the raw decision-journal JSONL to FILE",
    )
    p_explain.add_argument(
        "--stats",
        action="store_true",
        help="print the statistic counter table on stderr (LLVM -stats)",
    )
    p_explain.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include each graph's textual dump in the narration",
    )
    metrics_flags(p_explain)
    p_explain.set_defaults(fn=cmd_explain)

    # fuzz generates its own programs — no positional source argument
    p_fuzz = sub.add_parser(
        "fuzz", help="run a differential-testing campaign (or replay a reproducer)"
    )
    p_fuzz.add_argument(
        "--budget",
        default="30s",
        help="campaign budget: '200' (programs) or '30s'/'2m'/'1h' (wall clock)",
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_fuzz.add_argument(
        "--out",
        metavar="DIR",
        help="write failure-NNNN artifact directories under DIR",
    )
    p_fuzz.add_argument(
        "--replay",
        metavar="FILE",
        help="re-run the oracle on a saved .ir reproducer instead of fuzzing",
    )
    p_fuzz.add_argument(
        "--no-reduce",
        action="store_true",
        help="save failures without delta-debugging them",
    )
    p_fuzz.add_argument(
        "--target",
        default=DEFAULT_TARGET.name,
        help="target machine (skylake-like, sse4-like, no-addsub, scalar)",
    )
    p_fuzz.add_argument(
        "--input-seed", type=int, default=1, help="seed for buffer contents"
    )
    p_fuzz.add_argument(
        "--max-ulps",
        type=int,
        default=4096,
        help="float comparison tolerance in ULPs",
    )
    p_fuzz.add_argument(
        "--stats",
        action="store_true",
        help="print the campaign bucket counter table on stderr",
    )
    p_fuzz.add_argument(
        "--inject",
        action="store_true",
        help="fault-injection campaign: arm every registered (site, mode) "
        "in turn and verify the guarded driver absorbs each fault",
    )
    p_fuzz.add_argument(
        "--phase-budget",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="per-phase wall-clock budget for --inject guarded compiles",
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for count budgets (default: all cores); "
        "results are bit-identical to a serial run",
    )
    p_fuzz.add_argument(
        "--service",
        action="store_true",
        help="dispatch count-budget chunks through a persistent "
        "warm-worker compile service (see `repro serve`)",
    )
    p_fuzz.add_argument(
        "--resilient",
        action="store_true",
        help="with --service: retry failed chunks with backoff and, when "
        "the service circuit-breaker opens, degrade to local compile "
        "(results stay bit-identical)",
    )
    engine_flag(p_fuzz)
    metrics_flags(p_fuzz)
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_bench = sub.add_parser(
        "bench", help="run the kernel benchmark suite (optionally in parallel)"
    )
    p_bench.add_argument(
        "--kernel",
        action="append",
        metavar="NAME",
        help="benchmark kernel(s) to run (default: the whole suite); repeatable",
    )
    p_bench.add_argument(
        "--target",
        default=DEFAULT_TARGET.name,
        help="target machine (skylake-like, sse4-like, no-addsub, scalar)",
    )
    p_bench.add_argument("--seed", type=int, default=0, help="input seed")
    p_bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: all cores); cycles/counters are "
        "bit-identical to a serial run",
    )
    p_bench.add_argument(
        "--json",
        action="store_true",
        help="print a structured JSON document instead of the table",
    )
    p_bench.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome trace-event JSON file; spans from worker "
        "processes are merged in, one process track per worker",
    )
    p_bench.add_argument(
        "--remarks",
        metavar="FILE",
        help="write optimization remarks as JSONL to FILE (worker remarks "
        "are merged in, tagged with worker_pid)",
    )
    p_bench.add_argument(
        "--journal-summary",
        action="store_true",
        help="attach a decision-journal summary to every run (JSON mode); "
        "off by default so bench results stay bit-identical",
    )
    p_bench.add_argument(
        "--service",
        action="store_true",
        help="run through a persistent warm-worker compile service: one "
        "pool (and, with --cache-dir, one shared result cache) for the "
        "whole invocation; results stay bit-identical to serial",
    )
    p_bench.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="with --service: shared cross-worker cache directory "
        "(compile artifacts + bench-pair results, LRU-bounded)",
    )
    p_bench.add_argument(
        "--service-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline under --service; a timed-out task exits "
        f"with code {EXIT_BUDGET}",
    )
    p_bench.add_argument(
        "--resilient",
        action="store_true",
        help="with --service: retry failed pairs with backoff and, when "
        "the service circuit-breaker opens, degrade to local compile "
        "(results stay bit-identical)",
    )
    engine_flag(p_bench)
    metrics_flags(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile service: a persistent warm-worker pool "
        "answering JSONL requests on stdin (or an AF_UNIX socket)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="warm worker processes (default: all cores)",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="shared cross-worker cache directory (compile artifacts + "
        "bench-pair results); survives service restarts",
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="LRU size bound per cache namespace (default: unbounded)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="bounded request queue: maximum unresolved tasks before "
        "submissions block (backpressure)",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (a wedged task's worker is "
        "killed and respawned)",
    )
    p_serve.add_argument(
        "--socket",
        metavar="PATH",
        help="serve on an AF_UNIX socket at PATH instead of stdin/stdout",
    )
    p_serve.add_argument(
        "--slow-log",
        type=float,
        default=None,
        metavar="SECONDS",
        help="record a structured latency breakdown (queue/marshal/"
        "compile/overhead) for every request slower than SECONDS",
    )
    p_serve.add_argument(
        "--slow-log-out",
        metavar="FILE",
        help="write the --slow-log records as JSONL to FILE on shutdown",
    )
    metrics_flags(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="live service dashboard: poll a `repro serve --socket` "
        "instance's stats op (queue depth, per-worker utilization, "
        "cache hit rate, p50/p99 latency, breaker state)",
    )
    p_top.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="AF_UNIX socket of the running service",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between polls (default: 2)",
    )
    p_top.add_argument(
        "--count",
        type=int,
        default=1,
        metavar="N",
        help="snapshots to print before exiting (default: 1; use a "
        "large N for a watch-style loop)",
    )
    p_top.add_argument(
        "--json",
        action="store_true",
        help="print each snapshot as one JSON line instead of the table",
    )
    p_top.set_defaults(fn=cmd_top)

    p_waterfall = sub.add_parser(
        "waterfall",
        help="per-request latency waterfalls from a --trace-out Chrome "
        "trace: queue/dispatch/compile segments per traced request",
    )
    p_waterfall.add_argument(
        "trace",
        help="Chrome trace-event JSON file written by --trace-out",
    )
    p_waterfall.add_argument(
        "--slow",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="only show requests whose end-to-end time exceeds SECONDS",
    )
    p_waterfall.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="show the N slowest requests (default: 10; 0 = all)",
    )
    p_waterfall.add_argument(
        "--json",
        action="store_true",
        help="print the breakdowns as a structured JSON document",
    )
    p_waterfall.set_defaults(fn=cmd_waterfall)

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos-test the compile service: arm each service fault site "
        "against real bench/fuzz/socket traffic and verify every run "
        "recovers bit-identically",
    )
    p_chaos.add_argument(
        "--budget",
        type=int,
        default=20,
        metavar="N",
        help="chaos runs to execute (scenarios cycle round-robin, "
        "later laps fire the fault deeper into the run)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="campaign seed (workloads + backoff jitter)"
    )
    p_chaos.add_argument(
        "--kernel",
        action="append",
        metavar="NAME",
        help="bench-workload kernel(s); repeatable (default: two motivating "
        "kernels)",
    )
    p_chaos.add_argument(
        "--fuzz-programs",
        type=int,
        default=16,
        metavar="N",
        help="programs per fuzz workload (default: 16)",
    )
    p_chaos.add_argument(
        "--out",
        metavar="FILE",
        help="write the per-run classification JSON to FILE",
    )
    p_chaos.add_argument(
        "--stats",
        action="store_true",
        help="print the aggregated counter table on stderr",
    )
    metrics_flags(p_chaos)
    p_chaos.set_defaults(fn=cmd_chaos)

    p_profile = sub.add_parser(
        "profile",
        help="self-time profile of one kernel's compile + simulate, with "
        "folded-stack flamegraph export",
    )
    common(p_profile)
    p_profile.add_argument("--kernel", help="kernel name (default: the only one)")
    p_profile.add_argument("--n", type=int, default=64, help="trip-count argument")
    p_profile.add_argument("--seed", type=int, default=0, help="input seed")
    p_profile.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="compile+simulate N times for denser span distributions",
    )
    p_profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the hot-phase table (default: 10)",
    )
    p_profile.add_argument(
        "--folded",
        metavar="FILE",
        help="write collapsed-stack output to FILE "
        "(flamegraph.pl / speedscope input)",
    )
    p_profile.set_defaults(fn=cmd_profile)

    p_history = sub.add_parser(
        "history",
        help="render run-history trend tables; --check gates on "
        "median/MAD anomaly detection",
    )
    p_history.add_argument(
        "--db", required=True, metavar="FILE", help="sqlite run-history database"
    )
    p_history.add_argument(
        "--kind",
        metavar="CMD",
        help="only consider runs recorded by this command (e.g. bench)",
    )
    p_history.add_argument(
        "--metric",
        action="append",
        metavar="NAME",
        help="only show/check this metric; repeatable",
    )
    p_history.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="series length to consider (default: 20 most recent runs)",
    )
    p_history.add_argument(
        "--check",
        action="store_true",
        help="flag regressive anomalies in the latest run; exit "
        f"{EXIT_MISMATCH} when any are found",
    )
    p_history.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="Z",
        help="robust z-score threshold for --check (default: 3.5)",
    )
    p_history.add_argument(
        "--json",
        action="store_true",
        help="dump the recorded runs as a JSON document",
    )
    p_history.set_defaults(fn=cmd_history)

    p_bisect = sub.add_parser(
        "bisect",
        help="binary-search the first faulty vectorization decision "
        "(-opt-bisect-limit)",
    )
    common(p_bisect)
    p_bisect.add_argument("--kernel", help="kernel name (default: the only one)")
    p_bisect.add_argument(
        "--n",
        type=int,
        default=None,
        help="value for every kernel argument (default: 0, the fuzz convention)",
    )
    p_bisect.add_argument(
        "--input-seed", type=int, default=1, help="seed for buffer contents"
    )
    p_bisect.add_argument(
        "--max-ulps",
        type=int,
        default=4096,
        help="float comparison tolerance in ULPs",
    )
    p_bisect.add_argument(
        "--decisions",
        action="store_true",
        help="list every gated decision, marking the first bad one",
    )
    p_bisect.set_defaults(fn=cmd_bisect)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # every invocation gets its own root session: counters, remarks and
    # traces are scoped to this command, never to process globals.  The
    # fault registry is inherited — injected faults model the build
    # environment, so an armed fault must stay visible to the command
    # (replaying a crash bundle relies on this).
    session = CompilerSession(
        name=f"cli:{args.command}", faults=current_session().faults
    )
    _configure_observability(args, session)
    try:
        with use_session(session):
            return args.fn(args)
    except SystemExit as exc:
        # _usage() raises SystemExit(EXIT_USAGE); surface it as a return
        # value so callers (and tests) see the code without unwinding
        code = exc.code
        if code is None:
            return EXIT_OK
        if isinstance(code, int):
            return code
        print(f"repro: {code}", file=sys.stderr)
        return EXIT_USAGE
    except VerificationError as exc:
        print(f"repro: IR verifier failure: {exc}", file=sys.stderr)
        return EXIT_VERIFIER
    except (FrontendError, ParseError) as exc:
        # malformed user input (source or textual IR), not a compiler bug
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BudgetExceededError as exc:
        print(f"repro: execution budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except ServeTaskTimeout as exc:
        # a service task blew its deadline: a budget problem, not a crash
        print(f"repro: service task timed out: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except ServiceError as exc:
        # worker crashed / service closed underneath us: internal error
        print(f"repro: compile service failure: {exc}", file=sys.stderr)
        return EXIT_CRASH
    except BrokenPipeError:
        # stdout closed early (| head, | grep -q): not a compiler bug.
        # Artifact files are written before tables, so nothing is lost.
        return EXIT_OK
    except Exception as exc:  # noqa: BLE001 - last-resort crash mapping
        import traceback

        traceback.print_exc(file=sys.stderr)
        print(
            f"repro: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return EXIT_CRASH
    finally:
        _flush_observability(args, session)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
