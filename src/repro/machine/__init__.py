"""Target machine models: ISA capabilities and instruction cost tables."""

from .isa import VectorISA
from .costmodel import CostModel, DEFAULT_SCALAR_COSTS, DEFAULT_INTRINSIC_COSTS
from .targets import (
    ALL_TARGETS,
    DEFAULT_TARGET,
    NO_ADDSUB,
    SCALAR,
    SKYLAKE_LIKE,
    SSE4_LIKE,
    TargetMachine,
    target_named,
)

__all__ = [
    "VectorISA",
    "CostModel",
    "DEFAULT_SCALAR_COSTS",
    "DEFAULT_INTRINSIC_COSTS",
    "TargetMachine",
    "SKYLAKE_LIKE",
    "SSE4_LIKE",
    "NO_ADDSUB",
    "SCALAR",
    "DEFAULT_TARGET",
    "ALL_TARGETS",
    "target_named",
]
