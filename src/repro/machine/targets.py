"""Predefined target machines.

The paper evaluates on an Intel i5-6440HQ (Skylake, AVX2).  We model three
targets:

* ``SKYLAKE_LIKE`` — 256-bit vectors with native addsub: the evaluation
  target (``-march=native`` on the paper's machine);
* ``SSE4_LIKE`` — 128-bit vectors with addsub: the minimal x86 target the
  paper's footnote about the SSE ``addsub`` family refers to;
* ``SCALAR`` — no vectors: the ``O3`` (vectorizers disabled) baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import CostModel
from .isa import VectorISA


@dataclass(frozen=True)
class TargetMachine:
    """A named (ISA, cost model) pair."""

    name: str
    isa: VectorISA
    cost_model: CostModel


def _make(name: str, vector_bits: int, has_addsub: bool, **cost_kwargs) -> TargetMachine:
    isa = VectorISA(name=name, vector_bits=vector_bits, has_addsub=has_addsub)
    return TargetMachine(name=name, isa=isa, cost_model=CostModel(isa=isa, **cost_kwargs))


SKYLAKE_LIKE = _make("skylake-like", vector_bits=256, has_addsub=True)
SSE4_LIKE = _make("sse4-like", vector_bits=128, has_addsub=True)
NO_ADDSUB = _make("no-addsub", vector_bits=256, has_addsub=False)
SCALAR = _make("scalar", vector_bits=0, has_addsub=False)

#: default target used throughout examples/benchmarks
DEFAULT_TARGET = SKYLAKE_LIKE

ALL_TARGETS = (SKYLAKE_LIKE, SSE4_LIKE, NO_ADDSUB, SCALAR)


def target_named(name: str) -> TargetMachine:
    for target in ALL_TARGETS:
        if target.name == name:
            return target
    raise KeyError(f"unknown target: {name}")
