"""Target cost model (the analogue of LLVM's TargetTransformInfo).

Two consumers share these numbers:

* the SLP vectorizer's profitability check — ``vector saving = sum over
  nodes of (scalar cost x lanes - vector cost)`` exactly as in Figure 1,
  step 4 of the paper;
* the cycle simulator — it charges each *executed* instruction its cost, so
  compile-time predictions and simulated run time come from one table,
  mirroring how the paper's speedups follow from the real machine the cost
  model approximates.

The numbers are reciprocal-throughput-flavoured costs in abstract cycles,
shaped after Intel client cores of the paper's era (Skylake): cheap
add/sub/mul, expensive division and sqrt, per-element penalties for moving
data between scalar and vector registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..ir.instructions import (
    AltBinaryInst,
    CallInst,
    ExtractElementInst,
    InsertElementInst,
    Instruction,
    Opcode,
    ShuffleVectorInst,
)
from ..ir.types import FloatType, Type, VectorType
from .isa import VectorISA


#: default scalar op costs; anything absent costs DEFAULT_OP_COST.
#: Unit-flavoured like LLVM's TTI: most ops cost 1, divisions are
#: expensive, address computation (gep) folds into the memory access.
#: With these numbers the SLP cost arithmetic of the paper's motivating
#: examples reproduces exactly: Figure 2 totals 0 under (L)SLP and -6
#: under SN-SLP; Figure 3 totals +4 under (L)SLP and -6 under SN-SLP.
DEFAULT_SCALAR_COSTS: Dict[Opcode, float] = {
    Opcode.ADD: 1.0,
    Opcode.SUB: 1.0,
    Opcode.MUL: 2.0,
    Opcode.SDIV: 20.0,
    Opcode.FADD: 1.0,
    Opcode.FSUB: 1.0,
    Opcode.FMUL: 2.0,
    Opcode.FDIV: 10.0,
    Opcode.AND: 1.0,
    Opcode.OR: 1.0,
    Opcode.XOR: 1.0,
    Opcode.SHL: 1.0,
    Opcode.ASHR: 1.0,
    Opcode.LOAD: 1.0,
    Opcode.STORE: 1.0,
    Opcode.GEP: 0.0,
    Opcode.ICMP: 1.0,
    Opcode.FCMP: 1.0,
    Opcode.SELECT: 1.0,
    Opcode.SITOFP: 1.0,
    Opcode.FPTOSI: 1.0,
    Opcode.SEXT: 1.0,
    Opcode.TRUNC: 1.0,
    Opcode.FPEXT: 1.0,
    Opcode.FPTRUNC: 1.0,
    Opcode.BR: 0.5,
    Opcode.CONDBR: 1.0,
    Opcode.RET: 1.0,
    Opcode.PHI: 0.0,
}

DEFAULT_INTRINSIC_COSTS: Dict[str, float] = {
    "sqrt": 12.0,
    "fabs": 1.0,
    "fmin": 1.0,
    "fmax": 1.0,
    "smin": 1.0,
    "smax": 1.0,
}

DEFAULT_OP_COST = 1.0


@dataclass(frozen=True)
class CostModel:
    """Per-target instruction cost queries.

    ``vector_op_factor`` scales a scalar op's cost to its whole-vector
    counterpart — close to 1.0 on modern SIMD units (one vector op has
    roughly the throughput cost of one scalar op, which is exactly where
    vectorization savings come from).
    """

    isa: VectorISA
    scalar_costs: Dict[Opcode, float] = field(default_factory=lambda: dict(DEFAULT_SCALAR_COSTS))
    intrinsic_costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_INTRINSIC_COSTS))
    vector_op_factor: float = 1.0
    #: moving one scalar into a vector lane (insertelement)
    insert_cost: float = 1.0
    #: moving one lane out to scalar (extractelement)
    extract_cost: float = 1.0
    #: one shuffle/permute of a whole register
    shuffle_cost: float = 1.0
    #: blend penalty for alternating lane opcodes without native addsub
    alternate_penalty: float = 2.0

    # -- scalar queries -----------------------------------------------------------

    def scalar_op_cost(self, opcode: Opcode, type_: Type) -> float:
        return self.scalar_costs.get(opcode, DEFAULT_OP_COST)

    def intrinsic_cost(self, name: str, type_: Type) -> float:
        base = self.intrinsic_costs.get(name, DEFAULT_OP_COST)
        if isinstance(type_, VectorType):
            return base * self.vector_op_factor
        return base

    # -- vector queries -----------------------------------------------------------

    def vector_op_cost(self, opcode: Opcode, vec_type: VectorType) -> float:
        """Cost of one whole-vector arithmetic/memory operation."""
        base = self.scalar_costs.get(opcode, DEFAULT_OP_COST)
        cost = base * self.vector_op_factor
        # Divisions don't pipeline across lanes as well.
        if opcode in (Opcode.SDIV, Opcode.FDIV):
            cost += 0.5 * (vec_type.count - 1)
        return cost

    def altbinop_cost(
        self, lane_opcodes: Sequence[Opcode], vec_type: VectorType
    ) -> float:
        """Cost of a vector op with per-lane opcodes (add/sub alternation).

        With native addsub support an alternating float pattern costs the
        same as a plain vector op; otherwise the lowering needs two vector
        ops plus a blend, modelled as a flat penalty.
        """
        worst = max(self.scalar_costs.get(op, DEFAULT_OP_COST) for op in lane_opcodes)
        cost = worst * self.vector_op_factor
        if len(set(lane_opcodes)) > 1:
            is_float = isinstance(vec_type.element, FloatType)
            is_addsub_family = all(
                op in (Opcode.FADD, Opcode.FSUB) for op in lane_opcodes
            )
            if not (self.isa.has_addsub and is_float and is_addsub_family):
                # Lowered as two vector ops + blend (the paper's +2 for
                # the integer [+,-] trunk nodes of Figure 3c).
                cost += self.alternate_penalty
        return cost

    def gather_cost(self, vec_type: VectorType) -> float:
        """Building a vector out of N arbitrary scalars (N inserts)."""
        return self.insert_cost * vec_type.count

    def extract_all_cost(self, vec_type: VectorType) -> float:
        return self.extract_cost * vec_type.count

    # -- SLP node-level savings ------------------------------------------------------

    def scalarized_cost(self, opcode: Opcode, type_: Type, lanes: int) -> float:
        """Cost of ``lanes`` copies of the scalar op."""
        return self.scalar_op_cost(opcode, type_) * lanes


def instruction_cost(model: CostModel, inst: Instruction) -> float:
    """The cycle charge of one executed instruction under ``model``.

    The single shared ladder behind both the cycle simulator's
    :class:`~repro.sim.executor.CycleCounter` and the planned engine's
    pre-bound per-trace charges — one table, one interpretation.
    """
    if isinstance(inst, AltBinaryInst):
        return model.altbinop_cost(inst.lane_opcodes, inst.type)
    if isinstance(inst, InsertElementInst):
        return model.insert_cost
    if isinstance(inst, ExtractElementInst):
        return model.extract_cost
    if isinstance(inst, ShuffleVectorInst):
        return model.shuffle_cost
    if isinstance(inst, CallInst):
        return model.intrinsic_cost(inst.callee, inst.type)
    result_type = inst.type
    # For stores the relevant width is the stored value's type.
    if inst.opcode is Opcode.STORE:
        result_type = inst.operand(0).type
    if isinstance(result_type, VectorType):
        return model.vector_op_cost(inst.opcode, result_type)
    return model.scalar_op_cost(inst.opcode, result_type)
