"""ISA capability descriptions for target machines.

A :class:`VectorISA` captures the handful of target facts the SLP cost
model and code generator care about: how wide the vector registers are,
which element types can be vectorized, and whether the target has native
alternating add/sub instructions (the x86 ``addsubps``/``addsubpd``
family) that let ``[+,-]`` lane patterns execute without blend overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from ..ir.types import FloatType, IntType, Type


@dataclass(frozen=True)
class VectorISA:
    """Capabilities of a SIMD instruction set."""

    name: str
    #: widest vector register, in bits (0 = scalar-only target)
    vector_bits: int
    #: element bit-widths vectorizable for integer ops
    int_element_bits: FrozenSet[int] = frozenset({8, 16, 32, 64})
    #: element bit-widths vectorizable for float ops
    float_element_bits: FrozenSet[int] = frozenset({32, 64})
    #: native alternating add/sub (x86 SSE3 ``addsub*``)
    has_addsub: bool = True
    #: native fused multiply-add (affects nothing in the cost model yet,
    #: recorded for completeness)
    has_fma: bool = False

    def supports_element(self, element: Type) -> bool:
        if isinstance(element, IntType):
            return element.bits in self.int_element_bits
        if isinstance(element, FloatType):
            return element.bits in self.float_element_bits
        return False

    def max_lanes(self, element: Type) -> int:
        """Widest legal vector arity for an element type (0 if none)."""
        if self.vector_bits == 0 or not self.supports_element(element):
            return 0
        return self.vector_bits // element.bit_width

    def legal_lane_counts(self, element: Type) -> List[int]:
        """All power-of-two arities from widest down to 2."""
        counts: List[int] = []
        lanes = self.max_lanes(element)
        while lanes >= 2:
            counts.append(lanes)
            lanes //= 2
        return counts
