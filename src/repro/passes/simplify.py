"""Instruction simplification (a miniature instcombine).

Runs before the vectorizer in every configuration, standing in for the
parts of clang's -O3 mid-end that shape the IR the SLP pass sees:

* full constant folding (via :mod:`repro.ir.folding`);
* algebraic identities: ``x+0``, ``0+x``, ``x-0``, ``x*1``, ``1*x``,
  ``x*0``, ``0*x``, ``x/1``, ``x-x``, ``x^x``, ``x&x``, ``x|x``,
  ``x<<0``, ``x>>0``, and the float counterparts where they are exact
  (``x+0.0`` and ``x*1.0`` are exact in IEEE for finite inputs only, so
  they are applied under fast-math just like LLVM does);
* canonicalization: constants move to the right-hand side of commutative
  operators (LLVM's canonical form, which also simplifies the address
  analysis' pattern match).

The pass iterates to a fixpoint; every rewrite is RAUW + DCE-able dead
instruction, so it composes with the rest of the pipeline.
"""

from __future__ import annotations

from typing import Optional

from ..ir.dce import eliminate_dead_code
from ..ir.function import Function
from ..ir.instructions import BinaryInst, Instruction, Opcode, is_commutative
from ..ir.folding import try_fold
from ..ir.module import Module
from ..ir.types import FloatType
from ..ir.values import Constant, Value


def _is_const(value: Value, payload) -> bool:
    return isinstance(value, Constant) and value.value == payload


def _zero_of(type_) -> Constant:
    return Constant(type_, 0.0 if type_.is_float else 0)


def _simplify_binary(inst: BinaryInst, fast_math: bool) -> Optional[Value]:
    """The replacement value for ``inst``, or None if no rule applies."""
    opcode = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs
    type_ = inst.type
    is_float = isinstance(type_, FloatType)
    # Float identities involving 0.0 change signed-zero/NaN behaviour, so
    # they need the fast-math licence (LLVM: -ffast-math implies nsz).
    float_ok = not is_float or fast_math

    if opcode in (Opcode.ADD, Opcode.FADD):
        if _is_const(rhs, 0) or (is_float and _is_const(rhs, 0.0)):
            return lhs if float_ok else None
        if _is_const(lhs, 0) or (is_float and _is_const(lhs, 0.0)):
            return rhs if float_ok else None
    elif opcode in (Opcode.SUB, Opcode.FSUB):
        if _is_const(rhs, 0) or (is_float and _is_const(rhs, 0.0)):
            return lhs if float_ok else None
        if lhs is rhs and not is_float:
            return _zero_of(type_)  # x - x == 0 exactly for integers
    elif opcode in (Opcode.MUL, Opcode.FMUL):
        if _is_const(rhs, 1) or (is_float and _is_const(rhs, 1.0)):
            return lhs
        if _is_const(lhs, 1) or (is_float and _is_const(lhs, 1.0)):
            return rhs
        if not is_float and (_is_const(rhs, 0) or _is_const(lhs, 0)):
            return _zero_of(type_)
        if is_float and fast_math and (_is_const(rhs, 0.0) or _is_const(lhs, 0.0)):
            return _zero_of(type_)
    elif opcode in (Opcode.SDIV, Opcode.FDIV):
        if _is_const(rhs, 1) or (is_float and _is_const(rhs, 1.0)):
            return lhs
    elif opcode is Opcode.XOR:
        if lhs is rhs:
            return _zero_of(type_)
        if _is_const(rhs, 0):
            return lhs
    elif opcode in (Opcode.AND, Opcode.OR):
        if lhs is rhs:
            return lhs
        if opcode is Opcode.OR and _is_const(rhs, 0):
            return lhs
        if opcode is Opcode.AND and _is_const(rhs, -1):
            return lhs
    elif opcode in (Opcode.SHL, Opcode.ASHR):
        if _is_const(rhs, 0):
            return lhs
    return None


def _canonicalize_commutative(inst: BinaryInst) -> bool:
    """Move a constant LHS to the RHS of a commutative op; True if changed."""
    if (
        is_commutative(inst.opcode)
        and isinstance(inst.lhs, Constant)
        and not isinstance(inst.rhs, Constant)
    ):
        inst.swap_operands(0, 1)
        return True
    return False


def simplify_function(function: Function) -> int:
    """Simplify to a fixpoint; returns the number of rewrites applied."""
    total = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue
                folded = try_fold(inst)
                if folded is not None:
                    inst.replace_all_uses_with(folded)
                    inst.erase_from_parent()
                    total += 1
                    changed = True
                    continue
                if isinstance(inst, BinaryInst):
                    if _canonicalize_commutative(inst):
                        total += 1
                        changed = True
                    replacement = _simplify_binary(inst, function.fast_math)
                    if replacement is not None:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        total += 1
                        changed = True
    eliminate_dead_code(function)
    return total


def simplify_module(module: Module) -> int:
    from ..robust.faults import current_faults

    current_faults().fire("simplify.module")
    return sum(simplify_function(f) for f in module.functions.values())
