"""Loop unrolling for canonical counted loops.

SLP vectorizes straight-line code; the paper's kernels are *manually*
unrolled loop bodies.  This pass supplies the missing -O3 ingredient for
sources written one-element-per-iteration: it unrolls the canonical

    for (i = start; i < n; i += step) { body }

by a factor ``U``, producing a main loop stepping ``U*step`` whose body is
``U`` copies of the original body (with ``i`` advanced by ``k*step`` in
copy ``k``), plus the original loop as the remainder.  The unrolled copies
are exactly the lane-per-offset shape the SLP seeds look for.

Restrictions (checked, not assumed): the loop must be the canonical shape
produced by the frontend / kernel builders — entry -> header(phi, icmp lt,
condbr) -> body (straight-line, ends ``br header``) -> exit, with a single
induction phi stepped by a positive constant.  Anything else is left
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.types import I64
from ..ir.values import Constant, Value
from ..ir.verifier import verify_function


@dataclass
class CanonicalLoop:
    """A recognized canonical counted loop."""

    preheader: BasicBlock
    header: BasicBlock
    body: BasicBlock
    exit: BasicBlock
    induction: PhiInst
    bound: Value
    step: int
    increment: BinaryInst


def find_canonical_loops(function: Function) -> List[CanonicalLoop]:
    """Recognize every canonical loop in ``function``."""
    loops: List[CanonicalLoop] = []
    for header in function.blocks:
        loop = _match_loop(function, header)
        if loop is not None:
            loops.append(loop)
    return loops


def _match_loop(function: Function, header: BasicBlock) -> Optional[CanonicalLoop]:
    phis = header.phis()
    if len(phis) != 1:
        return None
    induction = phis[0]
    if induction.type is not I64 or induction.num_operands != 2:
        return None
    body_insts = header.non_phi_instructions()
    if len(body_insts) != 2:
        return None
    cmp, term = body_insts
    if not isinstance(cmp, CmpInst) or cmp.predicate is not CmpPredicate.LT:
        return None
    if cmp.lhs is not induction:
        return None
    if not isinstance(term, CondBranchInst) or term.cond is not cmp:
        return None
    body, exit_block = term.if_true, term.if_false
    if body is header or exit_block is header:
        return None
    # the body must be straight-line and branch back to the header
    body_term = body.terminator
    if not isinstance(body_term, BranchInst) or body_term.target is not header:
        return None
    if any(isinstance(inst, PhiInst) for inst in body):
        return None
    # one incoming edge from the body: `i + step`; the other is the start
    preheader = None
    increment = None
    for value, pred in induction.incoming():
        if pred is body:
            if (
                isinstance(value, BinaryInst)
                and value.opcode is Opcode.ADD
                and value.lhs is induction
                and isinstance(value.rhs, Constant)
                and value.rhs.value > 0
                and value.parent is body
            ):
                increment = value
            else:
                return None
        else:
            preheader = pred
    if increment is None or preheader is None:
        return None
    # nothing else may use the induction variable's increment as a loop
    # value (keep it simple: the increment feeds only the phi)
    if any(user is not induction for user in increment.unique_users()):
        return None
    return CanonicalLoop(
        preheader=preheader,
        header=header,
        body=body,
        exit=exit_block,
        induction=induction,
        bound=cmp.rhs,
        step=increment.rhs.value,
        increment=increment,
    )


def _clone_instruction(inst: Instruction, mapping: Dict[int, Value]) -> Instruction:
    """Structural clone of ``inst`` with operands remapped."""

    def op(index: int) -> Value:
        operand = inst.operand(index)
        return mapping.get(id(operand), operand)

    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, op(0), op(1))
    if isinstance(inst, AltBinaryInst):
        return AltBinaryInst(inst.lane_opcodes, op(0), op(1))
    if isinstance(inst, LoadInst):
        return LoadInst(op(0), inst.type)
    if isinstance(inst, StoreInst):
        return StoreInst(op(0), op(1))
    if isinstance(inst, GepInst):
        return GepInst(op(0), op(1))
    if isinstance(inst, InsertElementInst):
        return InsertElementInst(op(0), op(1), op(2))
    if isinstance(inst, ExtractElementInst):
        return ExtractElementInst(op(0), op(1))
    if isinstance(inst, ShuffleVectorInst):
        return ShuffleVectorInst(op(0), op(1), inst.mask)
    if isinstance(inst, CmpInst):
        return CmpInst(inst.opcode, inst.predicate, op(0), op(1))
    if isinstance(inst, SelectInst):
        return SelectInst(op(0), op(1), op(2))
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, op(0), inst.type)
    if isinstance(inst, CallInst):
        return CallInst(inst.callee, [op(k) for k in range(inst.num_operands)])
    raise ValueError(f"cannot clone {inst.opcode} during unrolling")


def unroll_loop(function: Function, loop: CanonicalLoop, factor: int) -> bool:
    """Unroll ``loop`` by ``factor``; returns True on success.

    Layout after the transformation::

        preheader -> uheader -> ubody (U copies) -> uheader
                       \\-> header (remainder loop, original) -> ...
    """
    if factor < 2:
        return False
    step = loop.step
    wide_step = step * factor

    uheader = function.add_block("unroll.header")
    ubody = function.add_block("unroll.body")
    # reroute the preheader into the unrolled header
    pre_term = loop.preheader.terminator
    assert pre_term is not None
    if isinstance(pre_term, BranchInst):
        pre_term.target = uheader
    elif isinstance(pre_term, CondBranchInst):
        if pre_term.if_true is loop.header:
            pre_term.if_true = uheader
        if pre_term.if_false is loop.header:
            pre_term.if_false = uheader
    else:  # pragma: no cover - canonical preheaders end in branches
        return False

    start_value = loop.induction.incoming_for(loop.preheader)

    builder = IRBuilder(uheader)
    u_induction = builder.phi(I64, "i.unroll")
    # guard: i + wide_step - step < bound  <=>  last copy's index < bound
    last_offset = builder.add(
        u_induction, builder.const_i64(wide_step - step), "i.last"
    )
    in_range = builder.icmp(CmpPredicate.LT, last_offset, loop.bound)
    builder.condbr(in_range, ubody, loop.header)

    # clone the body `factor` times
    builder.position_at_end(ubody)
    for copy in range(factor):
        mapping: Dict[int, Value] = {}
        if copy == 0:
            mapping[id(loop.induction)] = u_induction
        else:
            advanced = builder.add(
                u_induction, builder.const_i64(copy * step), f"i.u{copy}"
            )
            mapping[id(loop.induction)] = advanced
        for inst in loop.body.instructions:
            if inst is loop.increment or inst.is_terminator:
                continue
            clone = _clone_instruction(inst, mapping)
            builder.insert(clone)
            mapping[id(inst)] = clone
    next_value = builder.add(u_induction, builder.const_i64(wide_step), "i.unroll.next")
    builder.br(uheader)

    u_induction.add_incoming(start_value, loop.preheader)
    u_induction.add_incoming(next_value, ubody)

    # the original loop becomes the remainder: it now starts where the
    # unrolled loop stopped
    for index, pred in enumerate(loop.induction.incoming_blocks):
        if pred is loop.preheader:
            loop.induction.set_operand(index, u_induction)
            loop.induction.incoming_blocks[index] = uheader
            break
    return True


def unroll_function(function: Function, factor: int = 4) -> int:
    """Unroll every canonical loop; returns how many were unrolled."""
    count = 0
    for loop in find_canonical_loops(function):
        if unroll_loop(function, loop, factor):
            count += 1
    if count:
        verify_function(function)
    return count


def unroll_module(module: Module, factor: int = 4) -> int:
    return sum(unroll_function(f, factor) for f in module.functions.values())
