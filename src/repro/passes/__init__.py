"""Mid-end passes: simplification and loop unrolling.

These stand in for the parts of a production -O3 pipeline that run before
the SLP vectorizer: :mod:`simplify` is a miniature instcombine,
:mod:`unroll` turns canonical counted loops into the manually-unrolled
shape the paper's kernels are written in.
"""

from .simplify import simplify_function, simplify_module
from .unroll import (
    CanonicalLoop,
    find_canonical_loops,
    unroll_function,
    unroll_loop,
    unroll_module,
)

__all__ = [
    "simplify_function",
    "simplify_module",
    "CanonicalLoop",
    "find_canonical_loops",
    "unroll_loop",
    "unroll_function",
    "unroll_module",
]
