"""Instruction set of the repro IR.

The instruction set is the subset of LLVM IR that an SLP vectorizer cares
about, plus enough control flow to express the loops the kernels live in:

* binary arithmetic — integer ``add/sub/mul/sdiv`` and floating point
  ``fadd/fsub/fmul/fdiv`` plus bitwise ops, each usable at scalar or vector
  type;
* ``altbinop`` — a vector instruction applying an *alternating* opcode
  pattern across lanes (models x86 ``addsubps``-family instructions, the way
  SLP vectorizes ``[+,-]`` alternate sequences);
* memory — ``load``, ``store`` and a single-index ``gep``;
* vector data movement — ``insertelement``, ``extractelement``,
  ``shufflevector``;
* comparisons, ``select``, a few ``call``-able intrinsics;
* control flow — ``br``, conditional ``br``, ``ret`` and ``phi``.

Opcode algebra (commutativity, associativity, inverse pairing) lives here as
well because it is the ground truth that the Multi-Node / Super-Node logic
of the vectorizer builds on.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from .types import I1, VOID, IntType, PointerType, Type, VectorType, vector_of
from .values import Constant, User, Value


class Opcode(enum.Enum):
    """All instruction opcodes."""

    # integer binary
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    # float binary
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # bitwise binary
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    ASHR = "ashr"
    # alternating vector binary (addsub-style)
    ALTBINOP = "altbinop"
    # memory
    LOAD = "load"
    STORE = "store"
    GEP = "gep"
    # vector data movement
    INSERTELEMENT = "insertelement"
    EXTRACTELEMENT = "extractelement"
    SHUFFLEVECTOR = "shufflevector"
    # comparisons / select
    ICMP = "icmp"
    FCMP = "fcmp"
    SELECT = "select"
    # casts
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    SEXT = "sext"
    TRUNC = "trunc"
    FPEXT = "fpext"
    FPTRUNC = "fptrunc"
    # calls (intrinsics)
    CALL = "call"
    # control flow
    BR = "br"
    CONDBR = "condbr"
    RET = "ret"
    PHI = "phi"

    def __str__(self) -> str:
        return self.value


#: binary opcodes usable in expressions
BINARY_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.ASHR,
    }
)

#: opcodes that are commutative: a op b == b op a
COMMUTATIVE_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.FADD,
        Opcode.FMUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)

#: opcodes that are associative (float ops only under fast-math, which the
#: vectorizer checks separately via function attributes)
ASSOCIATIVE_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.FADD,
        Opcode.FMUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)

#: inverse-element pairing: op -> the op that applies the inverse element.
#: ``a sub b == a add (-b)`` and ``a fdiv b == a fmul (1/b)``.
INVERSE_OF = {
    Opcode.ADD: Opcode.SUB,
    Opcode.FADD: Opcode.FSUB,
    Opcode.FMUL: Opcode.FDIV,
}

#: the reverse mapping: inverse op -> its commutative base op
BASE_OF_INVERSE = {inv: base for base, inv in INVERSE_OF.items()}

#: note: integer MUL has no practical inverse op in the IR (integer division
#: does not invert multiplication), so Super-Nodes never mix MUL with SDIV.


def is_commutative(opcode: Opcode) -> bool:
    return opcode in COMMUTATIVE_OPCODES


def is_associative(opcode: Opcode) -> bool:
    return opcode in ASSOCIATIVE_OPCODES


def inverse_opcode(opcode: Opcode) -> Optional[Opcode]:
    """The inverse-element opcode of a commutative op, if any."""
    return INVERSE_OF.get(opcode)


def base_opcode(opcode: Opcode) -> Opcode:
    """Map an inverse op to its commutative base; identity otherwise.

    ``base_opcode(FSUB) == FADD``, ``base_opcode(FADD) == FADD``.
    """
    return BASE_OF_INVERSE.get(opcode, opcode)


def same_operator_family(a: Opcode, b: Opcode) -> bool:
    """True when two opcodes belong to one commutative/inverse family."""
    return base_opcode(a) == base_opcode(b)


class CmpPredicate(enum.Enum):
    """Comparison predicates shared by icmp/fcmp."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def __str__(self) -> str:
        return self.value


class Instruction(User):
    """Base class of all instructions.

    Instructions live inside a :class:`~repro.ir.block.BasicBlock`; the
    ``parent`` pointer is maintained by the block's insertion/removal API.
    """

    opcode: Opcode

    def __init__(self, opcode: Opcode, type_: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, operands, name)
        self.opcode = opcode
        self.parent = None  # type: Optional["BasicBlock"]

    # -- position / lifetime -------------------------------------------------

    def erase_from_parent(self) -> None:
        """Remove from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def move_before(self, other: "Instruction") -> None:
        """Reposition this instruction immediately before ``other``."""
        block = other.parent
        if block is None:
            raise ValueError("cannot move before a detached instruction")
        if self.parent is not None:
            self.parent.remove(self)
        block.insert_before(other, self)

    def index_in_block(self) -> int:
        if self.parent is None:
            raise ValueError("detached instruction has no index")
        return self.parent.index_of(self)

    # -- classification -------------------------------------------------------

    @property
    def is_binary(self) -> bool:
        return self.opcode in BINARY_OPCODES

    @property
    def is_terminator(self) -> bool:
        return self.opcode in (Opcode.BR, Opcode.CONDBR, Opcode.RET)

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def may_write_memory(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def may_read_memory(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def has_side_effects(self) -> bool:
        return self.may_write_memory or self.is_terminator or self.opcode is Opcode.PHI

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from .printer import format_instruction

        try:
            return f"<{format_instruction(self)}>"
        except Exception:
            return f"<{self.opcode} {self.ref()}>"


class BinaryInst(Instruction):
    """A two-operand arithmetic/bitwise instruction."""

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"{opcode} is not a binary opcode")
        if lhs.type is not rhs.type:
            raise TypeError(f"binary operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    @property
    def is_commutative(self) -> bool:
        return is_commutative(self.opcode)


class AltBinaryInst(Instruction):
    """A vector binary op with a per-lane opcode pattern.

    Models the x86 ``addsub`` family and, more generally, the
    select/shuffle-based lowering SLP uses for alternating ``[+,-,...]``
    sequences.  ``lane_opcodes`` gives the scalar opcode applied on each
    lane; all lane opcodes must come from the same operator family.
    """

    def __init__(
        self,
        lane_opcodes: Sequence[Opcode],
        lhs: Value,
        rhs: Value,
        name: str = "",
    ) -> None:
        if not isinstance(lhs.type, VectorType):
            raise TypeError("altbinop requires vector operands")
        if lhs.type is not rhs.type:
            raise TypeError(f"altbinop operand type mismatch: {lhs.type} vs {rhs.type}")
        lane_opcodes = tuple(lane_opcodes)
        if len(lane_opcodes) != lhs.type.count:
            raise ValueError(
                f"altbinop lane count {len(lane_opcodes)} != vector arity {lhs.type.count}"
            )
        families = {base_opcode(op) for op in lane_opcodes}
        if len(families) != 1:
            raise ValueError(f"altbinop lanes span operator families: {lane_opcodes}")
        super().__init__(Opcode.ALTBINOP, lhs.type, (lhs, rhs), name)
        self.lane_opcodes: Tuple[Opcode, ...] = lane_opcodes

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class LoadInst(Instruction):
    """Load a scalar or vector from a pointer."""

    def __init__(self, pointer: Value, type_: Optional[Type] = None, name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load requires pointer operand, got {pointer.type}")
        loaded = type_ if type_ is not None else pointer.type.pointee
        super().__init__(Opcode.LOAD, loaded, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)


class StoreInst(Instruction):
    """Store a scalar or vector value through a pointer."""

    def __init__(self, value: Value, pointer: Value) -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store requires pointer operand, got {pointer.type}")
        super().__init__(Opcode.STORE, VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)


class GepInst(Instruction):
    """``gep base, index`` — pointer to ``base[index]``.

    The single-index form is all the kernels need; the address analysis
    (`repro.ir.analysis`) decomposes the index into symbolic-base + constant
    offset for the vectorizer's adjacency checks.
    """

    def __init__(self, base: Value, index: Value, name: str = "") -> None:
        if not isinstance(base.type, PointerType):
            raise TypeError(f"gep requires pointer base, got {base.type}")
        if not isinstance(index.type, IntType):
            raise TypeError(f"gep requires integer index, got {index.type}")
        super().__init__(Opcode.GEP, base.type, (base, index), name)

    @property
    def base(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)


class InsertElementInst(Instruction):
    """``insertelement vec, scalar, lane`` — functional vector update."""

    def __init__(self, vector: Value, scalar: Value, lane: Value, name: str = "") -> None:
        if not isinstance(vector.type, VectorType):
            raise TypeError(f"insertelement requires vector, got {vector.type}")
        if vector.type.element is not scalar.type:
            raise TypeError(
                f"insertelement element mismatch: {vector.type.element} vs {scalar.type}"
            )
        super().__init__(Opcode.INSERTELEMENT, vector.type, (vector, scalar, lane), name)

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def scalar(self) -> Value:
        return self.operand(1)

    @property
    def lane(self) -> Value:
        return self.operand(2)


class ExtractElementInst(Instruction):
    """``extractelement vec, lane`` — read one lane of a vector."""

    def __init__(self, vector: Value, lane: Value, name: str = "") -> None:
        if not isinstance(vector.type, VectorType):
            raise TypeError(f"extractelement requires vector, got {vector.type}")
        super().__init__(Opcode.EXTRACTELEMENT, vector.type.element, (vector, lane), name)

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def lane(self) -> Value:
        return self.operand(1)


class ShuffleVectorInst(Instruction):
    """``shufflevector a, b, mask`` — lane permutation/blend of two vectors.

    ``mask`` is a static tuple of source lane indices; index ``i`` selects
    lane ``i`` of ``a`` when ``i < arity(a)``, otherwise lane ``i - arity``
    of ``b``.
    """

    def __init__(self, a: Value, b: Value, mask: Sequence[int], name: str = "") -> None:
        if not isinstance(a.type, VectorType):
            raise TypeError(f"shufflevector requires vectors, got {a.type}")
        if a.type is not b.type:
            raise TypeError(f"shufflevector type mismatch: {a.type} vs {b.type}")
        mask = tuple(int(m) for m in mask)
        limit = 2 * a.type.count
        if any(m < 0 or m >= limit for m in mask):
            raise ValueError(f"shuffle mask {mask} out of range for {a.type}")
        result = vector_of(a.type.element, len(mask)) if len(mask) >= 2 else a.type.element
        super().__init__(Opcode.SHUFFLEVECTOR, result, (a, b), name)
        self.mask: Tuple[int, ...] = mask

    @property
    def a(self) -> Value:
        return self.operand(0)

    @property
    def b(self) -> Value:
        return self.operand(1)


class CmpInst(Instruction):
    """Integer or float comparison yielding an ``i1`` (or i1-vector)."""

    def __init__(
        self,
        opcode: Opcode,
        predicate: CmpPredicate,
        lhs: Value,
        rhs: Value,
        name: str = "",
    ) -> None:
        if opcode not in (Opcode.ICMP, Opcode.FCMP):
            raise ValueError(f"{opcode} is not a comparison opcode")
        if lhs.type is not rhs.type:
            raise TypeError(f"cmp operand type mismatch: {lhs.type} vs {rhs.type}")
        result: Type = I1
        if isinstance(lhs.type, VectorType):
            result = vector_of(I1, lhs.type.count)
        super().__init__(opcode, result, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class SelectInst(Instruction):
    """``select cond, a, b`` — ternary conditional move."""

    def __init__(self, cond: Value, a: Value, b: Value, name: str = "") -> None:
        if a.type is not b.type:
            raise TypeError(f"select arm type mismatch: {a.type} vs {b.type}")
        super().__init__(Opcode.SELECT, a.type, (cond, a, b), name)

    @property
    def cond(self) -> Value:
        return self.operand(0)


class CastInst(Instruction):
    """A type conversion (sitofp, sext, trunc, fpext, ...)."""

    CAST_OPCODES = frozenset(
        {
            Opcode.SITOFP,
            Opcode.FPTOSI,
            Opcode.SEXT,
            Opcode.TRUNC,
            Opcode.FPEXT,
            Opcode.FPTRUNC,
        }
    )

    def __init__(self, opcode: Opcode, value: Value, to_type: Type, name: str = "") -> None:
        if opcode not in self.CAST_OPCODES:
            raise ValueError(f"{opcode} is not a cast opcode")
        super().__init__(opcode, to_type, (value,), name)

    @property
    def value(self) -> Value:
        return self.operand(0)


#: intrinsic name -> (arity, preserves-type?)  All intrinsics are pure.
INTRINSICS = {
    "sqrt": 1,
    "fabs": 1,
    "fmin": 2,
    "fmax": 2,
    "smin": 2,
    "smax": 2,
}


class CallInst(Instruction):
    """Call to a pure intrinsic (sqrt, fabs, fmin, fmax, smin, smax)."""

    def __init__(self, callee: str, args: Sequence[Value], name: str = "") -> None:
        if callee not in INTRINSICS:
            raise ValueError(f"unknown intrinsic: {callee}")
        args = tuple(args)
        if len(args) != INTRINSICS[callee]:
            raise ValueError(
                f"{callee} expects {INTRINSICS[callee]} args, got {len(args)}"
            )
        super().__init__(Opcode.CALL, args[0].type, args, name)
        self.callee = callee


class BranchInst(Instruction):
    """Unconditional branch."""

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(Opcode.BR, VOID, ())
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class CondBranchInst(Instruction):
    """Conditional branch on an ``i1``."""

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        if cond.type is not I1:
            raise TypeError(f"condbr requires i1 condition, got {cond.type}")
        super().__init__(Opcode.CONDBR, VOID, (cond,))
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.operand(0)

    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]


class RetInst(Instruction):
    """Return, optionally with a value."""

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(Opcode.RET, VOID, (value,) if value is not None else ())

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class PhiInst(Instruction):
    """SSA phi node; incoming values are paired with predecessor blocks."""

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(Opcode.PHI, type_, (), name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise TypeError(f"phi incoming type mismatch: {value.type} vs {self.type}")
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from {block.name}")


def make_binary(opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
    """Convenience constructor used by the builder and the folding pass."""
    return BinaryInst(opcode, lhs, rhs, name)
