"""Type system for the repro IR.

The IR is strongly typed.  Every :class:`~repro.ir.values.Value` carries a
type drawn from this small lattice:

* :class:`VoidType` — the type of instructions that produce no value.
* :class:`IntType` — fixed-width two's-complement integers (i1, i8, ... i64).
* :class:`FloatType` — IEEE-754 binary32 / binary64 floats.
* :class:`VectorType` — fixed-length vectors of a scalar element type.
* :class:`PointerType` — a pointer to a (scalar or vector) element type.

Types are interned: constructing ``IntType(32)`` twice returns the same
object, so identity comparison (``is``) works and types are hashable and
cheap to compare.  This mirrors how production compilers (LLVM) treat types
as uniqued context objects.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Tuple


class Type:
    """Base class of all IR types.

    Subclasses are interned value objects: equal types are identical
    objects.  All types answer the small set of predicates the rest of the
    compiler needs (``is_integer``, ``is_float``, ...) so client code never
    has to use ``isinstance`` chains.
    """

    #: cache for interning, keyed by (class, args)
    _cache: ClassVar[Dict[Tuple, "Type"]] = {}

    def __new__(cls, *args):
        key = (cls, args)
        cached = Type._cache.get(key)
        if cached is None:
            cached = super().__new__(cls)
            cached._init(*args)
            Type._cache[key] = cached
        return cached

    def _init(self, *args) -> None:
        """Subclass hook; runs once per interned instance."""

    # -- predicates --------------------------------------------------------

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    # -- size queries ------------------------------------------------------

    @property
    def bit_width(self) -> int:
        """Total width in bits (0 for void, 64 for pointers)."""
        raise NotImplementedError

    @property
    def byte_width(self) -> int:
        return (self.bit_width + 7) // 8

    def scalar_type(self) -> "Type":
        """The element type for vectors; self for scalars."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.__class__.__name__} {self}>"


class VoidType(Type):
    """The type of value-less instructions (stores, branches, ret void)."""

    @property
    def bit_width(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A fixed-width integer type (``i1``, ``i8``, ``i16``, ``i32``, ``i64``).

    ``i1`` doubles as the boolean type produced by comparisons.
    """

    VALID_WIDTHS = (1, 8, 16, 32, 64)

    def _init(self, bits: int) -> None:
        if bits not in self.VALID_WIDTHS:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def bit_width(self) -> int:
        return self.bits

    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's two's-complement range."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE-754 floating point type (``f32`` or ``f64``)."""

    VALID_WIDTHS = (32, 64)

    def _init(self, bits: int) -> None:
        if bits not in self.VALID_WIDTHS:
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    @property
    def bit_width(self) -> int:
        return self.bits

    def __str__(self) -> str:
        return f"f{self.bits}"


class VectorType(Type):
    """A fixed-length vector ``<N x elem>`` of a scalar element type."""

    def _init(self, element: Type, count: int) -> None:
        if not element.is_scalar:
            raise ValueError(f"vector element must be scalar, got {element}")
        if count < 2:
            raise ValueError(f"vector length must be >= 2, got {count}")
        self.element = element
        self.count = count

    @property
    def bit_width(self) -> int:
        return self.element.bit_width * self.count

    def scalar_type(self) -> Type:
        return self.element

    def __str__(self) -> str:
        return f"<{self.count} x {self.element}>"


class PointerType(Type):
    """A pointer to an element type.

    Pointers are modelled as 64-bit byte addresses into the interpreter's
    flat memory.  The pointee type gives load/store their value type and the
    address analysis its element stride.
    """

    def _init(self, pointee: Type) -> None:
        if pointee.is_void or pointee.is_pointer:
            raise ValueError(f"unsupported pointee type: {pointee}")
        self.pointee = pointee

    @property
    def bit_width(self) -> int:
        return 64

    def __str__(self) -> str:
        return f"{self.pointee}*"


# -- convenience singletons used pervasively -------------------------------

VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def vector_of(element: Type, count: int) -> VectorType:
    """Build (or fetch the interned) vector type ``<count x element>``."""
    return VectorType(element, count)


def pointer_to(pointee: Type) -> PointerType:
    """Build (or fetch the interned) pointer type ``pointee*``."""
    return PointerType(pointee)


def parse_type(text: str) -> Type:
    """Parse a type from its textual form (inverse of ``str(type)``).

    Accepts ``void``, ``iN``, ``fN``, ``<N x elem>`` and any of those with a
    trailing ``*`` for pointers.
    """
    text = text.strip()
    if text.endswith("*"):
        return pointer_to(parse_type(text[:-1]))
    if text == "void":
        return VOID
    if text.startswith("<") and text.endswith(">"):
        inner = text[1:-1]
        count_str, _, elem_str = inner.partition("x")
        return vector_of(parse_type(elem_str), int(count_str.strip()))
    if text.startswith("i"):
        return IntType(int(text[1:]))
    if text.startswith("f"):
        return FloatType(int(text[1:]))
    raise ValueError(f"cannot parse type: {text!r}")
