"""Basic blocks: ordered instruction containers with insertion API."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Instruction, PhiInst


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    The block owns instruction ordering; all position queries the scheduler
    and the vectorizer's legality checks need (``index_of``, ``comes_before``)
    are answered here.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self.parent = None  # type: Optional["Function"]

    # -- insertion / removal -------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise ValueError(f"instruction already belongs to block {inst.parent.name}")
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert_at(self, index: int, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise ValueError(f"instruction already belongs to block {inst.parent.name}")
        self.instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert_at(self.index_of(anchor), inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert_at(self.index_of(anchor) + 1, inst)

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    # -- queries ---------------------------------------------------------------

    def index_of(self, inst: Instruction) -> int:
        # Identity search: instructions never compare equal structurally.
        for i, candidate in enumerate(self.instructions):
            if candidate is inst:
                return i
        raise ValueError(f"instruction not in block {self.name}")

    def comes_before(self, a: Instruction, b: Instruction) -> bool:
        """True when ``a`` appears strictly before ``b`` in this block."""
        return self.index_of(a) < self.index_of(b)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def phis(self) -> List[PhiInst]:
        return [i for i in self.instructions if isinstance(i, PhiInst)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, PhiInst)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BasicBlock {self.name}: {len(self.instructions)} insts>"
