"""Dead code elimination.

The vectorizer's code generation leaves the replaced scalar instructions in
place (dead) and lets DCE sweep them, exactly as LLVM's SLP pass does.
An instruction is dead when it has no uses and no side effects.
"""

from __future__ import annotations

from typing import List

from .function import Function
from .instructions import Instruction
from .module import Module


def _is_trivially_dead(inst: Instruction) -> bool:
    return not inst.has_side_effects and inst.num_uses == 0 and not inst.type.is_void


def eliminate_dead_code(function: Function) -> int:
    """Iteratively remove dead instructions; returns the number removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            # Walk backwards so chains of dead instructions die in one pass.
            for inst in reversed(list(block.instructions)):
                if _is_trivially_dead(inst):
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def eliminate_dead_code_in_module(module: Module) -> int:
    return sum(eliminate_dead_code(f) for f in module.functions.values())
