"""Functions: argument lists, blocks, and local name uniquing."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .block import BasicBlock
from .instructions import Instruction
from .types import Type, VOID
from .values import Argument


class Function:
    """A function: name, typed arguments, return type, list of blocks.

    ``fast_math`` mirrors clang's ``-ffast-math``: it licenses the
    vectorizer to reassociate floating point expressions, which is a
    precondition for Multi-Node / Super-Node formation on fadd/fmul chains
    (the paper compiles everything with ``-O3 -ffast-math``).
    """

    def __init__(
        self,
        name: str,
        arg_types: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
        fast_math: bool = True,
    ) -> None:
        self.name = name
        self.return_type = return_type
        self.fast_math = fast_math
        self.arguments: List[Argument] = [
            Argument(type_, arg_name, i) for i, (arg_name, type_) in enumerate(arg_types)
        ]
        self.blocks: List[BasicBlock] = []
        self.parent = None  # type: Optional["Module"]
        self._name_counts: Dict[str, int] = {}

    # -- block management -----------------------------------------------------

    def add_block(self, name: str) -> BasicBlock:
        # Parsed functions carry label names the counter has never seen,
        # so uniquing must also dodge the labels already present.
        existing = {block.name for block in self.blocks}
        candidate = self.unique_name(name)
        while candidate in existing:
            candidate = self.unique_name(name)
        block = BasicBlock(candidate)
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block_named(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name} in {self.name}")

    # -- naming ---------------------------------------------------------------

    def unique_name(self, base: str) -> str:
        """Produce a function-unique name derived from ``base``."""
        base = base or "t"
        count = self._name_counts.get(base, 0)
        self._name_counts[base] = count + 1
        return base if count == 0 else f"{base}.{count}"

    def assign_names(self) -> None:
        """Give every unnamed value-producing instruction a fresh name.

        Names already present (e.g. in a module that was parsed from text
        and then transformed) are respected: fresh names never collide
        with them, so printing stays parseable.
        """
        taken = {arg.name for arg in self.arguments}
        for inst in self.instructions():
            if inst.name:
                taken.add(inst.name)
        for inst in self.instructions():
            if not inst.name and not inst.type.is_void:
                name = self.unique_name("t")
                while name in taken:
                    name = self.unique_name("t")
                inst.name = name
                taken.add(name)

    # -- iteration ---------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def argument_named(self, name: str) -> Argument:
        for arg in self.arguments:
            if arg.name == name:
                return arg
        raise KeyError(f"no argument named {name} in {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Function {self.name}: {len(self.blocks)} blocks>"
