"""The repro IR: a typed, SSA-style intermediate representation.

This package provides everything the vectorizer and interpreter need:
types, values with exact use-def chains, instructions, basic blocks,
functions, modules, an IRBuilder, a textual printer/parser pair, a
verifier, address analysis and DCE.
"""

from .types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VoidType,
    parse_type,
    pointer_to,
    vector_of,
)
from .values import (
    Argument,
    Constant,
    GlobalBuffer,
    Use,
    User,
    Value,
)
from .instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    base_opcode,
    inverse_opcode,
    is_associative,
    is_commutative,
    same_operator_family,
)
from .block import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder
from .printer import format_instruction, print_function, print_module
from .parser import ParseError, parse_module
from .verifier import VerificationError, verify_function, verify_module
from .analysis import AddressInfo, address_of, decompose_pointer, may_alias
from .folding import try_fold
from .dce import eliminate_dead_code, eliminate_dead_code_in_module

__all__ = [
    # types
    "Type", "VoidType", "IntType", "FloatType", "VectorType", "PointerType",
    "VOID", "I1", "I8", "I16", "I32", "I64", "F32", "F64",
    "vector_of", "pointer_to", "parse_type",
    # values
    "Value", "User", "Use", "Constant", "Argument", "GlobalBuffer",
    # instructions
    "Opcode", "Instruction", "BinaryInst", "AltBinaryInst", "LoadInst",
    "StoreInst", "GepInst", "InsertElementInst", "ExtractElementInst",
    "ShuffleVectorInst", "CmpInst", "CmpPredicate", "SelectInst", "CastInst",
    "CallInst", "BranchInst", "CondBranchInst", "RetInst", "PhiInst",
    "is_commutative", "is_associative", "inverse_opcode", "base_opcode",
    "same_operator_family",
    # containers
    "BasicBlock", "Function", "Module", "IRBuilder",
    # services
    "format_instruction", "print_function", "print_module",
    "parse_module", "ParseError",
    "verify_function", "verify_module", "VerificationError",
    "AddressInfo", "address_of", "decompose_pointer", "may_alias",
    "try_fold", "eliminate_dead_code", "eliminate_dead_code_in_module",
]
