"""IRBuilder: the ergonomic construction API for IR.

The builder tracks an insertion point (a block, appending at its end, or a
position before a given instruction) and exposes one method per
instruction.  Kernels in :mod:`repro.kernels` and the frontend lowering in
:mod:`repro.frontend.lower` are written against this API.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .block import BasicBlock
from .instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    Instruction,
    InsertElementInst,
    LoadInst,
    Opcode,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from .types import FloatType, I32, I64, IntType, Type
from .values import Constant, Value


class IRBuilder:
    """Builds instructions at a movable insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self._block = block
        self._before: Optional[Instruction] = None

    # -- insertion point -----------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("builder has no insertion point")
        return self._block

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._before = None

    def position_before(self, inst: Instruction) -> None:
        if inst.parent is None:
            raise ValueError("cannot position before a detached instruction")
        self._block = inst.parent
        self._before = inst

    def insert(self, inst: Instruction) -> Instruction:
        if self._before is not None:
            self.block.insert_before(self._before, inst)
        else:
            self.block.append(inst)
        return inst

    # -- constants -------------------------------------------------------------

    @staticmethod
    def const(type_: Type, value) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def const_i32(value: int) -> Constant:
        return Constant(I32, value)

    @staticmethod
    def const_i64(value: int) -> Constant:
        return Constant(I64, value)

    # -- binary arithmetic --------------------------------------------------------

    def binop(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.insert(BinaryInst(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.ADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.SUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.MUL, lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.SDIV, lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.FADD, lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.FSUB, lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.FMUL, lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.FDIV, lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.AND, lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.OR, lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.XOR, lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.SHL, lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop(Opcode.ASHR, lhs, rhs, name)

    def altbinop(
        self,
        lane_opcodes: Sequence[Opcode],
        lhs: Value,
        rhs: Value,
        name: str = "",
    ) -> AltBinaryInst:
        return self.insert(AltBinaryInst(lane_opcodes, lhs, rhs, name))

    # -- memory -----------------------------------------------------------------

    def load(self, pointer: Value, type_: Optional[Type] = None, name: str = "") -> LoadInst:
        return self.insert(LoadInst(pointer, type_, name))

    def store(self, value: Value, pointer: Value) -> StoreInst:
        return self.insert(StoreInst(value, pointer))

    def gep(self, base: Value, index: Union[Value, int], name: str = "") -> GepInst:
        if isinstance(index, int):
            index = Constant(I64, index)
        return self.insert(GepInst(base, index, name))

    # -- vector data movement ------------------------------------------------------

    def insertelement(
        self, vector: Value, scalar: Value, lane: Union[Value, int], name: str = ""
    ) -> InsertElementInst:
        if isinstance(lane, int):
            lane = Constant(I32, lane)
        return self.insert(InsertElementInst(vector, scalar, lane, name))

    def extractelement(
        self, vector: Value, lane: Union[Value, int], name: str = ""
    ) -> ExtractElementInst:
        if isinstance(lane, int):
            lane = Constant(I32, lane)
        return self.insert(ExtractElementInst(vector, lane, name))

    def shufflevector(
        self, a: Value, b: Value, mask: Sequence[int], name: str = ""
    ) -> ShuffleVectorInst:
        return self.insert(ShuffleVectorInst(a, b, mask, name))

    # -- comparisons / select -----------------------------------------------------

    def icmp(
        self, predicate: CmpPredicate, lhs: Value, rhs: Value, name: str = ""
    ) -> CmpInst:
        return self.insert(CmpInst(Opcode.ICMP, predicate, lhs, rhs, name))

    def fcmp(
        self, predicate: CmpPredicate, lhs: Value, rhs: Value, name: str = ""
    ) -> CmpInst:
        return self.insert(CmpInst(Opcode.FCMP, predicate, lhs, rhs, name))

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> SelectInst:
        return self.insert(SelectInst(cond, a, b, name))

    # -- casts -----------------------------------------------------------------------

    def cast(self, opcode: Opcode, value: Value, to_type: Type, name: str = "") -> CastInst:
        return self.insert(CastInst(opcode, value, to_type, name))

    def sitofp(self, value: Value, to_type: FloatType, name: str = "") -> CastInst:
        return self.cast(Opcode.SITOFP, value, to_type, name)

    def fptosi(self, value: Value, to_type: IntType, name: str = "") -> CastInst:
        return self.cast(Opcode.FPTOSI, value, to_type, name)

    def sext(self, value: Value, to_type: IntType, name: str = "") -> CastInst:
        return self.cast(Opcode.SEXT, value, to_type, name)

    def trunc(self, value: Value, to_type: IntType, name: str = "") -> CastInst:
        return self.cast(Opcode.TRUNC, value, to_type, name)

    # -- calls ------------------------------------------------------------------------

    def call(self, callee: str, args: Sequence[Value], name: str = "") -> CallInst:
        return self.insert(CallInst(callee, args, name))

    # -- control flow -------------------------------------------------------------------

    def br(self, target: BasicBlock) -> BranchInst:
        return self.insert(BranchInst(target))

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> CondBranchInst:
        return self.insert(CondBranchInst(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> RetInst:
        return self.insert(RetInst(value))

    def phi(self, type_: Type, name: str = "") -> PhiInst:
        return self.insert(PhiInst(type_, name))
