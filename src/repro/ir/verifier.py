"""Structural and type verifier for the repro IR.

Run after construction and after every transformation pass in tests; a
verifier failure means a pass produced malformed IR.  Checks:

* every block ends in exactly one terminator (and only the last
  instruction is a terminator);
* use-def bookkeeping is exact in both directions;
* operands of each instruction are defined before use within a block, or
  come from arguments/constants/globals/other (dominating) blocks — for the
  reducible single-loop CFGs the kernels use, a simple RPO check suffices;
* phis appear only at block starts and cover exactly the predecessors.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .block import BasicBlock
from .function import Function
from .instructions import (
    ExtractElementInst,
    InsertElementInst,
    Instruction,
    PhiInst,
    ShuffleVectorInst,
)
from .module import Module
from .types import VectorType
from .values import Argument, Constant, GlobalBuffer, User, Value


class VerificationError(Exception):
    """Raised when IR fails verification."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise VerificationError(message)


def _reverse_postorder(function: Function) -> Dict[int, int]:
    """Map ``id(block)`` -> RPO index for blocks reachable from entry."""
    order: List[BasicBlock] = []
    visited: Set[int] = set()

    def visit(block: BasicBlock) -> None:
        visited.add(id(block))
        for succ in block.successors():
            if id(succ) not in visited:
                visit(succ)
        order.append(block)

    visit(function.entry)
    order.reverse()
    return {id(block): index for index, block in enumerate(order)}


def _predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            _check(
                succ in preds,
                f"{function.name}: branch from {block.name} to foreign block "
                f"{succ.name}",
            )
            preds[succ].append(block)
    return preds


def verify_function(function: Function) -> None:
    _check(bool(function.blocks), f"function {function.name} has no blocks")
    defined: Set[int] = set()
    for arg in function.arguments:
        defined.add(id(arg))

    # Pass 1: structure, terminators, phi placement, use-list integrity.
    for block in function.blocks:
        _check(
            block.terminator is not None,
            f"{function.name}/{block.name}: missing terminator",
        )
        for i, inst in enumerate(block):
            _check(
                inst.parent is block,
                f"{function.name}/{block.name}: instruction with stale parent",
            )
            if inst.is_terminator:
                _check(
                    i == len(block.instructions) - 1,
                    f"{function.name}/{block.name}: terminator not last",
                )
            if isinstance(inst, PhiInst):
                _check(
                    all(
                        isinstance(prev, PhiInst)
                        for prev in block.instructions[:i]
                    ),
                    f"{function.name}/{block.name}: phi after non-phi",
                )
            for index, op in enumerate(inst.operands):
                _check(
                    any(
                        use.user is inst and use.index == index
                        for use in op.uses
                    ),
                    f"{function.name}/{block.name}: operand {index} of "
                    f"{inst.opcode} missing its use record",
                )
            defined.add(id(inst))

    # Pass 2: every operand must be a known kind of value defined somewhere
    # in this function (or constant/global/argument).
    for block in function.blocks:
        for inst in block:
            for op in inst.operands:
                if isinstance(op, (Constant, GlobalBuffer)):
                    continue
                if isinstance(op, Argument):
                    _check(
                        op in function.arguments,
                        f"{function.name}: foreign argument %{op.name}",
                    )
                    continue
                _check(
                    id(op) in defined,
                    f"{function.name}/{block.name}: operand %{op.name} of "
                    f"{inst.opcode} is not defined in this function",
                )

    # Pass 3: straight-line dominance within each block — a non-phi use of
    # an instruction defined in the *same* block must come after the def.
    for block in function.blocks:
        position = {id(inst): i for i, inst in enumerate(block.instructions)}
        for i, inst in enumerate(block):
            if isinstance(inst, PhiInst):
                continue
            for op in inst.operands:
                j = position.get(id(op))
                if j is not None:
                    _check(
                        j < i,
                        f"{function.name}/{block.name}: %{op.name} used before "
                        f"definition",
                    )

    # Pass 3b: cross-block use-before-def ordering.  For the reducible
    # single-loop CFGs the kernels use, a non-phi use of a value defined in
    # a *different* block is only valid when the defining block precedes
    # the using block in reverse postorder — values flowing around a back
    # edge must travel through a phi.  (Unreachable blocks are exempt;
    # pass 2 already pinned their operands to this function.)
    rpo = _reverse_postorder(function)
    def_block: Dict[int, BasicBlock] = {}
    for block in function.blocks:
        for inst in block:
            def_block[id(inst)] = block
    for block in function.blocks:
        use_index = rpo.get(id(block))
        if use_index is None:
            continue
        for inst in block:
            if isinstance(inst, PhiInst):
                continue
            for op in inst.operands:
                home = def_block.get(id(op))
                if home is None or home is block:
                    continue
                home_index = rpo.get(id(home))
                _check(
                    home_index is not None and home_index < use_index,
                    f"{function.name}/{block.name}: %{op.name} used before "
                    f"its defining block {home.name} (no dominating path)",
                )

    # Pass 4: phi edges match predecessors exactly.
    preds = _predecessors(function)
    for block in function.blocks:
        for phi in block.phis():
            incoming_blocks = list(phi.incoming_blocks)
            _check(
                len(incoming_blocks) == len(set(id(b) for b in incoming_blocks)),
                f"{function.name}/{block.name}: duplicate phi predecessor",
            )
            expect = {id(b) for b in preds[block]}
            got = {id(b) for b in incoming_blocks}
            _check(
                expect == got,
                f"{function.name}/{block.name}: phi predecessors "
                f"{sorted(b.name for b in incoming_blocks)} != CFG predecessors "
                f"{sorted(b.name for b in preds[block])}",
            )

    # Pass 5: use lists point back at real operands.
    for block in function.blocks:
        for inst in block:
            for use in inst.uses:
                _check(
                    isinstance(use.user, User)
                    and use.index < use.user.num_operands
                    and use.user.operand(use.index) is inst,
                    f"{function.name}/{block.name}: stale use record on "
                    f"%{inst.name}",
                )

    # Pass 6: vector-lane bounds.  Static insert/extract lanes and shuffle
    # masks must index existing lanes — the fuzzing reducer leans on this
    # to reject shrink candidates that narrowed a vector out from under
    # its users.
    for block in function.blocks:
        for inst in block:
            if isinstance(inst, (InsertElementInst, ExtractElementInst)):
                vec_type = inst.operand(0).type
                _check(
                    isinstance(vec_type, VectorType),
                    f"{function.name}/{block.name}: {inst.opcode} on "
                    f"non-vector {vec_type}",
                )
                lane = inst.lane
                if isinstance(lane, Constant):
                    _check(
                        0 <= int(lane.value) < vec_type.count,
                        f"{function.name}/{block.name}: {inst.opcode} lane "
                        f"{lane.value} out of range for {vec_type}",
                    )
            if isinstance(inst, ShuffleVectorInst):
                a_type = inst.a.type
                _check(
                    isinstance(a_type, VectorType),
                    f"{function.name}/{block.name}: shufflevector on "
                    f"non-vector {a_type}",
                )
                limit = a_type.count + inst.b.type.count
                _check(
                    all(0 <= m < limit for m in inst.mask),
                    f"{function.name}/{block.name}: shuffle mask "
                    f"{list(inst.mask)} out of range for {limit} source "
                    f"lanes",
                )


def verify_module(module: Module) -> None:
    """Verify every function in the module; raises VerificationError."""
    for function in module.functions.values():
        verify_function(function)
