"""Textual IR parser (inverse of :mod:`repro.ir.printer`).

A small hand-rolled recursive-descent parser.  Forward references are
supported for both blocks (branches to not-yet-seen labels) and values
(phi edges into loop headers) via placeholder values that are patched once
the definition is parsed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from .module import Module
from .types import FloatType, IntType, PointerType, Type, VOID, VectorType, parse_type
from .values import Constant, Value


class ParseError(Exception):
    """Raised on malformed textual IR, with line information."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|;[^\n]*)
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+(?:[eE][+-]?\d+)?|-?inf|nan)
  | (?P<local>%[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<global>@[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct><|>|\*|\(|\)|\[|\]|\{|\}|,|:|=|->)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            line += text.count("\n")
        elif kind != "comment":
            tokens.append(_Token(kind, text, line))
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Placeholder(Value):
    """Stand-in for a forward-referenced local value."""

    def __init__(self, type_: Type, name: str) -> None:
        super().__init__(type_, name)


class _FunctionScope:
    """Per-function name tables with forward-reference support."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.values: Dict[str, Value] = {arg.name: arg for arg in function.arguments}
        self.placeholders: Dict[str, _Placeholder] = {}
        self.blocks: Dict[str, BasicBlock] = {}

    def lookup(self, name: str, type_: Type, line: int) -> Value:
        value = self.values.get(name)
        if value is not None:
            if value.type is not type_:
                raise ParseError(
                    f"%{name} used at type {type_} but defined at {value.type}", line
                )
            return value
        placeholder = self.placeholders.get(name)
        if placeholder is None:
            placeholder = _Placeholder(type_, name)
            self.placeholders[name] = placeholder
        elif placeholder.type is not type_:
            raise ParseError(
                f"%{name} forward-referenced at inconsistent types "
                f"{placeholder.type} vs {type_}",
                line,
            )
        return placeholder

    def define(self, name: str, value: Value, line: int) -> None:
        if name in self.values:
            raise ParseError(f"redefinition of %{name}", line)
        self.values[name] = value
        placeholder = self.placeholders.pop(name, None)
        if placeholder is not None:
            if placeholder.type is not value.type:
                raise ParseError(
                    f"%{name} defined at {value.type} but forward-referenced "
                    f"at {placeholder.type}",
                    line,
                )
            placeholder.replace_all_uses_with(value)

    def block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name)
            block.parent = self.function
            self.blocks[name] = block
        return block

    def finish(self) -> None:
        if self.placeholders:
            missing = ", ".join(sorted(self.placeholders))
            raise ParseError(
                f"undefined values in @{self.function.name}: {missing}"
            )
        for block in self.blocks.values():
            if block not in self.function.blocks:
                raise ParseError(
                    f"branch to undefined block %{block.name} "
                    f"in @{self.function.name}"
                )


class Parser:
    """Parses a full module from textual IR."""

    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._pos = 0

    # -- token plumbing ----------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, got {token.text!r}", token.line)
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    # -- types --------------------------------------------------------------------

    def _parse_type(self) -> Type:
        token = self._peek()
        if token.kind == "punct" and token.text == "<":
            self._next()
            count_tok = self._expect("number")
            self._expect("ident", "x")
            element = self._parse_type()
            self._expect("punct", ">")
            base: Type = VectorType(element, int(count_tok.text))
        elif token.kind == "ident":
            self._next()
            base = parse_type(token.text)
        else:
            raise ParseError(f"expected type, got {token.text!r}", token.line)
        while self._accept("punct", "*"):
            base = PointerType(base)
        return base

    # -- operands ---------------------------------------------------------------------

    def _parse_scalar_literal(self, type_: Type, token: _Token):
        if isinstance(type_, IntType):
            if "." in token.text or "e" in token.text or "E" in token.text:
                raise ParseError(
                    f"float literal {token.text} at integer type {type_}", token.line
                )
            return int(token.text)
        if isinstance(type_, FloatType):
            return float(token.text)
        raise ParseError(f"literal {token.text} at non-scalar type {type_}", token.line)

    def _parse_operand(self, scope: _FunctionScope, type_: Type) -> Value:
        token = self._peek()
        if token.kind == "local":
            self._next()
            return scope.lookup(token.text[1:], type_, token.line)
        if token.kind == "global":
            self._next()
            module = scope.function.parent
            if module is None:
                raise ParseError("global reference outside module", token.line)
            buffer = module.globals.get(token.text[1:])
            if buffer is None:
                raise ParseError(f"unknown global {token.text}", token.line)
            return buffer
        if token.kind == "number":
            self._next()
            return Constant(type_, self._parse_scalar_literal(type_, token))
        if token.kind == "punct" and token.text == "<":
            if not isinstance(type_, VectorType):
                raise ParseError(f"vector literal at type {type_}", token.line)
            self._next()
            elems = []
            while True:
                elem_tok = self._expect("number")
                elems.append(self._parse_scalar_literal(type_.element, elem_tok))
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ">")
            return Constant(type_, tuple(elems))
        raise ParseError(f"expected operand, got {token.text!r}", token.line)

    def _parse_typed_operand(self, scope: _FunctionScope) -> Value:
        type_ = self._parse_type()
        return self._parse_operand(scope, type_)

    # -- module structure -----------------------------------------------------------------

    def parse_module(self) -> Module:
        self._expect("ident", "module")
        name = self._expect("ident").text
        module = Module(name)
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.kind == "ident" and token.text == "global":
                self._parse_global(module)
            elif token.kind == "ident" and token.text == "func":
                self._parse_function(module)
            else:
                raise ParseError(
                    f"expected 'global' or 'func', got {token.text!r}", token.line
                )
        return module

    def _parse_global(self, module: Module) -> None:
        self._expect("ident", "global")
        name = self._expect("global").text[1:]
        self._expect("punct", ":")
        element = self._parse_type()
        self._expect("ident", "x")
        count = int(self._expect("number").text)
        initializer = None
        if self._accept("punct", "="):
            self._expect("punct", "[")
            initializer = []
            while not self._accept("punct", "]"):
                token = self._expect("number")
                if isinstance(element, IntType):
                    initializer.append(int(token.text))
                else:
                    initializer.append(float(token.text))
                self._accept("punct", ",")
        module.add_global(name, element, count, initializer)

    def _parse_function(self, module: Module) -> None:
        self._expect("ident", "func")
        name = self._expect("global").text[1:]
        self._expect("punct", "(")
        args: List[Tuple[str, Type]] = []
        while not self._accept("punct", ")"):
            arg_name = self._expect("local").text[1:]
            self._expect("punct", ":")
            args.append((arg_name, self._parse_type()))
            self._accept("punct", ",")
        self._expect("punct", "->")
        return_type = self._parse_type()
        fast_math = bool(self._accept("ident", "fastmath"))
        function = Function(name, args, return_type, fast_math)
        module.add_function(function)
        scope = _FunctionScope(function)
        self._expect("punct", "{")
        while not self._accept("punct", "}"):
            self._parse_block(scope)
        scope.finish()

    def _parse_block(self, scope: _FunctionScope) -> None:
        label = self._expect("ident")
        self._expect("punct", ":")
        block = scope.block(label.text)
        if block in scope.function.blocks:
            raise ParseError(f"duplicate block label {label.text}", label.line)
        scope.function.blocks.append(block)
        while True:
            token = self._peek()
            if token.kind == "punct" and token.text == "}":
                break
            # A new block starts with `ident :` — look ahead one token.
            if token.kind == "ident" and self._tokens[self._pos + 1].text == ":":
                break
            self._parse_instruction(scope, block)

    # -- instructions -------------------------------------------------------------------------

    def _parse_instruction(self, scope: _FunctionScope, block: BasicBlock) -> None:
        token = self._peek()
        result_name: Optional[str] = None
        if token.kind == "local":
            result_name = self._next().text[1:]
            self._expect("punct", "=")
        op_tok = self._expect("ident")
        inst = self._dispatch(scope, op_tok)
        if result_name is not None:
            if inst.type.is_void:
                raise ParseError(
                    f"{op_tok.text} produces no value but is named", op_tok.line
                )
            inst.name = result_name
            scope.define(result_name, inst, op_tok.line)
        block.append(inst)

    def _dispatch(self, scope: _FunctionScope, op_tok: _Token) -> Instruction:
        text = op_tok.text
        simple_binops = {
            op.value: op
            for op in (
                Opcode.ADD,
                Opcode.SUB,
                Opcode.MUL,
                Opcode.SDIV,
                Opcode.FADD,
                Opcode.FSUB,
                Opcode.FMUL,
                Opcode.FDIV,
                Opcode.AND,
                Opcode.OR,
                Opcode.XOR,
                Opcode.SHL,
                Opcode.ASHR,
            )
        }
        if text in simple_binops:
            type_ = self._parse_type()
            lhs = self._parse_operand(scope, type_)
            self._expect("punct", ",")
            rhs = self._parse_operand(scope, type_)
            return BinaryInst(simple_binops[text], lhs, rhs)
        if text == "altbinop":
            self._expect("punct", "[")
            lane_ops = []
            while not self._accept("punct", "]"):
                lane_tok = self._expect("ident")
                lane_ops.append(Opcode(lane_tok.text))
                self._accept("punct", ",")
            type_ = self._parse_type()
            lhs = self._parse_operand(scope, type_)
            self._expect("punct", ",")
            rhs = self._parse_operand(scope, type_)
            return AltBinaryInst(lane_ops, lhs, rhs)
        if text == "load":
            loaded = self._parse_type()
            self._expect("punct", ",")
            pointer = self._parse_typed_operand(scope)
            return LoadInst(pointer, loaded)
        if text == "store":
            value = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            pointer = self._parse_typed_operand(scope)
            return StoreInst(value, pointer)
        if text == "gep":
            base = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            index = self._parse_typed_operand(scope)
            return GepInst(base, index)
        if text == "insertelement":
            vector = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            scalar = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            lane = self._parse_typed_operand(scope)
            return InsertElementInst(vector, scalar, lane)
        if text == "extractelement":
            vector = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            lane = self._parse_typed_operand(scope)
            return ExtractElementInst(vector, lane)
        if text == "shufflevector":
            a = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            b = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            self._expect("punct", "[")
            mask = []
            while not self._accept("punct", "]"):
                mask.append(int(self._expect("number").text))
                self._accept("punct", ",")
            return ShuffleVectorInst(a, b, mask)
        if text in ("icmp", "fcmp"):
            predicate = CmpPredicate(self._expect("ident").text)
            type_ = self._parse_type()
            lhs = self._parse_operand(scope, type_)
            self._expect("punct", ",")
            rhs = self._parse_operand(scope, type_)
            opcode = Opcode.ICMP if text == "icmp" else Opcode.FCMP
            return CmpInst(opcode, predicate, lhs, rhs)
        if text == "select":
            cond = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            a = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            b = self._parse_typed_operand(scope)
            return SelectInst(cond, a, b)
        if text in ("sitofp", "fptosi", "sext", "trunc", "fpext", "fptrunc"):
            value = self._parse_typed_operand(scope)
            self._expect("ident", "to")
            to_type = self._parse_type()
            return CastInst(Opcode(text), value, to_type)
        if text == "call":
            self._parse_type()  # result type (redundant; derived from args)
            callee = self._expect("global").text[1:]
            self._expect("punct", "(")
            args = []
            while not self._accept("punct", ")"):
                args.append(self._parse_typed_operand(scope))
                self._accept("punct", ",")
            return CallInst(callee, args)
        if text == "br":
            target = self._expect("local").text[1:]
            return BranchInst(scope.block(target))
        if text == "condbr":
            cond = self._parse_typed_operand(scope)
            self._expect("punct", ",")
            if_true = self._expect("local").text[1:]
            self._expect("punct", ",")
            if_false = self._expect("local").text[1:]
            return CondBranchInst(cond, scope.block(if_true), scope.block(if_false))
        if text == "ret":
            token = self._peek()
            starts_type = (token.kind == "punct" and token.text == "<") or (
                # An identifier starts a return type unless it is the label
                # of the next block (`ident :`).
                token.kind == "ident"
                and self._tokens[self._pos + 1].text != ":"
            )
            if starts_type:
                return RetInst(self._parse_typed_operand(scope))
            return RetInst()
        if text == "phi":
            type_ = self._parse_type()
            phi = PhiInst(type_)
            while self._accept("punct", "["):
                value = self._parse_operand(scope, type_)
                self._expect("punct", ",")
                pred = self._expect("local").text[1:]
                self._expect("punct", "]")
                phi.add_incoming(value, scope.block(pred))
                if not self._accept("punct", ","):
                    break
            return phi
        raise ParseError(f"unknown instruction {text!r}", op_tok.line)


def parse_module(source: str) -> Module:
    """Parse textual IR into a :class:`~repro.ir.module.Module`."""
    return Parser(source).parse_module()
