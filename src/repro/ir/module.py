"""Modules: the top-level IR container (functions + global buffers)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .function import Function
from .types import Type
from .values import GlobalBuffer


class Module:
    """A compilation unit: named global array buffers and functions.

    Global buffers model the C arrays of the paper's kernels (``long A[]``,
    ``double B[]``...); the interpreter materializes them in its flat memory
    at load time.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalBuffer] = {}

    # -- functions -------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function name: {function.name}")
        function.parent = self
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name} in module {self.name}") from None

    # -- globals ---------------------------------------------------------------

    def add_global(
        self,
        name: str,
        element: Type,
        count: int,
        initializer: Optional[Sequence] = None,
    ) -> GlobalBuffer:
        if name in self.globals:
            raise ValueError(f"duplicate global name: {name}")
        buffer = GlobalBuffer(name, element, count, initializer)
        self.globals[name] = buffer
        return buffer

    def global_named(self, name: str) -> GlobalBuffer:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"no global named {name} in module {self.name}") from None

    # -- cloning ---------------------------------------------------------------

    def clone(self) -> "Module":
        """Structural deep copy: fresh functions, blocks, instructions.

        Replaces the printer→parser round-trip on the compile hot path
        (:func:`repro.vectorizer.pipeline.clone_module`).  The clone
        shares no mutable IR objects with the original: constants are
        re-created (they carry use lists), blocks are constructed
        directly (bypassing ``add_block`` so label names survive
        verbatim), and ``_name_counts`` is copied so post-clone name
        uniquing behaves exactly as it would on the original.

        Forward references (e.g. a phi reading the loop latch's value)
        are cloned through placeholder values that are RAUW-patched once
        the referenced instruction is cloned — the same two-phase scheme
        the textual parser uses.
        """
        from .block import BasicBlock
        from .function import Function
        from .values import Value

        clone = Module(self.name)
        for name, buffer in self.globals.items():
            clone.add_global(
                name,
                buffer.element,
                buffer.count,
                list(buffer.initializer) if buffer.initializer is not None else None,
            )
        for fn in self.functions.values():
            new_fn = Function(
                fn.name,
                [(arg.name, arg.type) for arg in fn.arguments],
                fn.return_type,
                fn.fast_math,
            )
            clone.add_function(new_fn)

            value_map: Dict[int, "Value"] = {
                id(old): new for old, new in zip(fn.arguments, new_fn.arguments)
            }
            for name, buffer in self.globals.items():
                value_map[id(buffer)] = clone.globals[name]
            block_map: Dict[int, BasicBlock] = {}
            for block in fn.blocks:
                new_block = BasicBlock(block.name)
                new_block.parent = new_fn
                new_fn.blocks.append(new_block)
                block_map[id(block)] = new_block
            new_fn._name_counts = dict(fn._name_counts)

            placeholders: Dict[int, "Value"] = {}

            def map_operand(op: "Value") -> "Value":
                from .values import Constant

                mapped = value_map.get(id(op))
                if mapped is not None:
                    return mapped
                if isinstance(op, Constant):
                    fresh = Constant(op.type, op.value)
                    value_map[id(op)] = fresh
                    return fresh
                # an instruction defined later: forward-reference placeholder
                placeholder = placeholders.get(id(op))
                if placeholder is None:
                    placeholder = Value(op.type, op.name)
                    placeholders[id(op)] = placeholder
                return placeholder

            for block in fn.blocks:
                new_block = block_map[id(block)]
                for inst in block.instructions:
                    cloned = _clone_instruction(inst, map_operand, block_map)
                    value_map[id(inst)] = cloned
                    placeholder = placeholders.pop(id(inst), None)
                    if placeholder is not None:
                        placeholder.replace_all_uses_with(cloned)
                    new_block.append(cloned)
            assert not placeholders, (
                f"unresolved forward references cloning {fn.name}: "
                f"{[v.name for v in placeholders.values()]}"
            )
        return clone

    # -- stats -------------------------------------------------------------------

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )


def _clone_instruction(inst, map_operand, block_map):
    """Construct a fresh copy of ``inst`` with mapped operands/targets."""
    from .instructions import (
        AltBinaryInst,
        BinaryInst,
        BranchInst,
        CallInst,
        CastInst,
        CmpInst,
        CondBranchInst,
        ExtractElementInst,
        GepInst,
        InsertElementInst,
        LoadInst,
        PhiInst,
        RetInst,
        SelectInst,
        ShuffleVectorInst,
        StoreInst,
    )

    if isinstance(inst, PhiInst):
        phi = PhiInst(inst.type, inst.name)
        for value, block in zip(inst.operands, inst.incoming_blocks):
            phi.add_incoming(map_operand(value), block_map[id(block)])
        return phi
    if isinstance(inst, AltBinaryInst):
        return AltBinaryInst(
            inst.lane_opcodes,
            map_operand(inst.operand(0)),
            map_operand(inst.operand(1)),
            inst.name,
        )
    if isinstance(inst, CmpInst):
        return CmpInst(
            inst.opcode,
            inst.predicate,
            map_operand(inst.operand(0)),
            map_operand(inst.operand(1)),
            inst.name,
        )
    if isinstance(inst, BinaryInst):
        return BinaryInst(
            inst.opcode,
            map_operand(inst.operand(0)),
            map_operand(inst.operand(1)),
            inst.name,
        )
    if isinstance(inst, LoadInst):
        return LoadInst(map_operand(inst.operand(0)), inst.type, inst.name)
    if isinstance(inst, StoreInst):
        return StoreInst(map_operand(inst.operand(0)), map_operand(inst.operand(1)))
    if isinstance(inst, GepInst):
        return GepInst(
            map_operand(inst.operand(0)), map_operand(inst.operand(1)), inst.name
        )
    if isinstance(inst, InsertElementInst):
        return InsertElementInst(
            map_operand(inst.operand(0)),
            map_operand(inst.operand(1)),
            map_operand(inst.operand(2)),
            inst.name,
        )
    if isinstance(inst, ExtractElementInst):
        return ExtractElementInst(
            map_operand(inst.operand(0)), map_operand(inst.operand(1)), inst.name
        )
    if isinstance(inst, ShuffleVectorInst):
        return ShuffleVectorInst(
            map_operand(inst.operand(0)),
            map_operand(inst.operand(1)),
            inst.mask,
            inst.name,
        )
    if isinstance(inst, SelectInst):
        return SelectInst(
            map_operand(inst.operand(0)),
            map_operand(inst.operand(1)),
            map_operand(inst.operand(2)),
            inst.name,
        )
    if isinstance(inst, CastInst):
        return CastInst(
            inst.opcode, map_operand(inst.operand(0)), inst.type, inst.name
        )
    if isinstance(inst, CallInst):
        return CallInst(
            inst.callee,
            [map_operand(op) for op in inst.operands],
            inst.name,
        )
    if isinstance(inst, CondBranchInst):
        return CondBranchInst(
            map_operand(inst.operand(0)),
            block_map[id(inst.if_true)],
            block_map[id(inst.if_false)],
        )
    if isinstance(inst, BranchInst):
        return BranchInst(block_map[id(inst.target)])
    if isinstance(inst, RetInst):
        value = inst.operand(0) if inst.operands else None
        return RetInst(map_operand(value) if value is not None else None)
    raise AssertionError(f"clone: unhandled instruction class {type(inst).__name__}")
