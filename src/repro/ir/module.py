"""Modules: the top-level IR container (functions + global buffers)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .function import Function
from .types import Type
from .values import GlobalBuffer


class Module:
    """A compilation unit: named global array buffers and functions.

    Global buffers model the C arrays of the paper's kernels (``long A[]``,
    ``double B[]``...); the interpreter materializes them in its flat memory
    at load time.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalBuffer] = {}

    # -- functions -------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function name: {function.name}")
        function.parent = self
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name} in module {self.name}") from None

    # -- globals ---------------------------------------------------------------

    def add_global(
        self,
        name: str,
        element: Type,
        count: int,
        initializer: Optional[Sequence] = None,
    ) -> GlobalBuffer:
        if name in self.globals:
            raise ValueError(f"duplicate global name: {name}")
        buffer = GlobalBuffer(name, element, count, initializer)
        self.globals[name] = buffer
        return buffer

    def global_named(self, name: str) -> GlobalBuffer:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"no global named {name} in module {self.name}") from None

    # -- stats -------------------------------------------------------------------

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
