"""Constant folding for IR instructions.

Used by the frontend lowering (fold trivially constant subexpressions) and
by tests as a semantic cross-check.  Folding is intentionally conservative:
it only fires when *all* operands are constants and never changes rounding
or overflow behaviour (integer ops wrap like the interpreter does).
"""

from __future__ import annotations

import math
from typing import Optional

from .instructions import (
    BinaryInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    Instruction,
    Opcode,
)
from .types import FloatType, I1, IntType
from .values import Constant


class FoldError(Exception):
    """Raised when a fold would trap (e.g. constant division by zero)."""


def fold_binary(opcode: Opcode, type_, a, b):
    """Fold one scalar binary operation on raw Python payloads."""
    if isinstance(type_, IntType):
        if opcode is Opcode.ADD:
            return type_.wrap(a + b)
        if opcode is Opcode.SUB:
            return type_.wrap(a - b)
        if opcode is Opcode.MUL:
            return type_.wrap(a * b)
        if opcode is Opcode.SDIV:
            if b == 0:
                raise FoldError("integer division by zero")
            # C-style truncating division.
            return type_.wrap(int(a / b) if b != 0 else 0)
        if opcode is Opcode.AND:
            return type_.wrap(a & b)
        if opcode is Opcode.OR:
            return type_.wrap(a | b)
        if opcode is Opcode.XOR:
            return type_.wrap(a ^ b)
        if opcode is Opcode.SHL:
            return type_.wrap(a << (b % type_.bits))
        if opcode is Opcode.ASHR:
            return type_.wrap(a >> (b % type_.bits))
    if isinstance(type_, FloatType):
        if opcode is Opcode.FADD:
            return _round(type_, a + b)
        if opcode is Opcode.FSUB:
            return _round(type_, a - b)
        if opcode is Opcode.FMUL:
            return _round(type_, a * b)
        if opcode is Opcode.FDIV:
            if b == 0.0:
                return math.copysign(math.inf, a) if a != 0 else math.nan
            return _round(type_, a / b)
    raise FoldError(f"cannot fold {opcode} at {type_}")


def _round(type_: FloatType, value: float) -> float:
    if type_.bits == 32:
        import struct

        return struct.unpack("f", struct.pack("f", value))[0]
    return value


def compare(predicate: CmpPredicate, a, b) -> int:
    """Evaluate a comparison predicate on raw payloads, returning 0/1."""
    result = {
        CmpPredicate.EQ: a == b,
        CmpPredicate.NE: a != b,
        CmpPredicate.LT: a < b,
        CmpPredicate.LE: a <= b,
        CmpPredicate.GT: a > b,
        CmpPredicate.GE: a >= b,
    }[predicate]
    return 1 if result else 0


def fold_cast(opcode: Opcode, value, to_type):
    """Fold one scalar cast on a raw payload."""
    if opcode is Opcode.SITOFP:
        return _round(to_type, float(value))
    if opcode is Opcode.FPTOSI:
        return to_type.wrap(int(value))
    if opcode in (Opcode.SEXT, Opcode.TRUNC):
        return to_type.wrap(int(value))
    if opcode in (Opcode.FPEXT, Opcode.FPTRUNC):
        return _round(to_type, float(value))
    raise FoldError(f"cannot fold cast {opcode}")


def try_fold(inst: Instruction) -> Optional[Constant]:
    """Fold ``inst`` to a constant when all operands are constants."""
    if not all(isinstance(op, Constant) for op in inst.operands):
        return None
    try:
        if isinstance(inst, BinaryInst):
            a = inst.lhs.value
            b = inst.rhs.value
            if inst.type.is_vector:
                elem = inst.type.scalar_type()
                payload = tuple(
                    fold_binary(inst.opcode, elem, x, y) for x, y in zip(a, b)
                )
                return Constant(inst.type, payload)
            return Constant(inst.type, fold_binary(inst.opcode, inst.type, a, b))
        if isinstance(inst, CmpInst):
            a = inst.lhs.value
            b = inst.rhs.value
            if inst.lhs.type.is_vector:
                payload = tuple(compare(inst.predicate, x, y) for x, y in zip(a, b))
                return Constant(inst.type, payload)
            return Constant(I1, compare(inst.predicate, a, b))
        if isinstance(inst, CastInst):
            v = inst.value.value
            if inst.type.is_vector:
                elem = inst.type.scalar_type()
                payload = tuple(fold_cast(inst.opcode, x, elem) for x in v)
                return Constant(inst.type, payload)
            return Constant(inst.type, fold_cast(inst.opcode, v, inst.type))
    except FoldError:
        return None
    return None
