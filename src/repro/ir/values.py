"""Core value hierarchy and use-def machinery for the repro IR.

The IR follows the classic SSA design used by production compilers:

* every :class:`Value` has a :class:`~repro.ir.types.Type` and a list of
  :class:`Use` records describing who consumes it;
* :class:`User` values (instructions, mostly) hold an operand list; operand
  mutation goes through :meth:`User.set_operand` so the def's use list stays
  consistent;
* :meth:`Value.replace_all_uses_with` (RAUW) rewires every consumer to a new
  value — the workhorse of every rewriting pass including the vectorizer's
  code generation.

Keeping use lists exact is what lets the SLP vectorizer walk *up* the
use-def chains (operands) and *down* the def-use chains (users) cheaply.
"""

from __future__ import annotations

import math
import struct
from typing import Iterator, List, Optional, Sequence

from .types import FloatType, IntType, Type, VectorType


class Use:
    """A single (user, operand-index) edge in the def-use graph."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int) -> None:
        self.user = user
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Use({self.user!r}[{self.index}])"


class Value:
    """Anything that can appear as an operand: constants, arguments,
    instructions, globals."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        self.uses: List[Use] = []

    # -- use bookkeeping ----------------------------------------------------

    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        self.uses.remove(use)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def users(self) -> Iterator["User"]:
        """Iterate over the users of this value (with multiplicity)."""
        for use in self.uses:
            yield use.user

    def unique_users(self) -> List["User"]:
        """Users of this value, de-duplicated, in first-use order."""
        seen = []
        for use in self.uses:
            if use.user not in seen:
                seen.append(use.user)
        return seen

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewire every use of ``self`` to ``replacement`` (RAUW)."""
        if replacement is self:
            return
        # Iterate over a copy: set_operand mutates self.uses.
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)

    # -- display -----------------------------------------------------------

    def ref(self) -> str:
        """Textual reference used when this value appears as an operand."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.__class__.__name__} {self.ref()}: {self.type}>"


class User(Value):
    """A value that consumes other values as operands."""

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self._operands: List[Value] = []
        self._operand_uses: List[Use] = []
        for op in operands:
            self._append_operand(op)

    def _append_operand(self, value: Value) -> None:
        use = Use(self, len(self._operands))
        self._operands.append(value)
        self._operand_uses.append(use)
        value.add_use(use)

    # -- operand access ------------------------------------------------------

    @property
    def operands(self) -> Sequence[Value]:
        """Read-only view of the operand list."""
        return tuple(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        """Replace operand ``index``, keeping use lists consistent."""
        old = self._operands[index]
        if old is value:
            return
        use = self._operand_uses[index]
        old.remove_use(use)
        self._operands[index] = value
        value.add_use(use)

    def swap_operands(self, i: int, j: int) -> None:
        """Exchange two operands of this user (commutation helper)."""
        if i == j:
            return
        a, b = self._operands[i], self._operands[j]
        self.set_operand(i, b)
        # ``set_operand(i, b)`` may have been a no-op if a is b; handle both.
        self.set_operand(j, a)

    def operand_index_of(self, value: Value) -> int:
        """First operand slot holding ``value`` (ValueError if absent)."""
        return self._operands.index(value)

    def drop_all_references(self) -> None:
        """Detach this user from every operand (used when erasing)."""
        for use, op in zip(self._operand_uses, self._operands):
            op.remove_use(use)
        self._operands.clear()
        self._operand_uses.clear()


class Constant(Value):
    """An immediate scalar or vector constant.

    ``value`` is a Python ``int`` for integers, ``float`` for floats, and a
    tuple of those for vector constants.  Integer constants are stored
    wrapped to their type's range.
    """

    def __init__(self, type_: Type, value) -> None:
        super().__init__(type_)
        self.value = self._normalize(type_, value)

    @staticmethod
    def _normalize(type_: Type, value):
        if isinstance(type_, IntType):
            if not isinstance(value, int):
                raise TypeError(f"integer constant requires int, got {value!r}")
            return type_.wrap(value)
        if isinstance(type_, FloatType):
            value = float(value)
            if type_.bits == 32:
                # Round-trip through binary32 so f32 constants behave like f32.
                value = struct.unpack("f", struct.pack("f", value))[0]
            return value
        if isinstance(type_, VectorType):
            elems = tuple(value)
            if len(elems) != type_.count:
                raise ValueError(
                    f"vector constant arity {len(elems)} != type arity {type_.count}"
                )
            return tuple(Constant._normalize(type_.element, v) for v in elems)
        raise TypeError(f"cannot build constant of type {type_}")

    def is_zero(self) -> bool:
        if isinstance(self.value, tuple):
            return all(v == 0 for v in self.value)
        return self.value == 0

    def ref(self) -> str:
        return format_constant(self.type, self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and self.type is other.type
            and constant_key(self.value) == constant_key(other.value)
        )

    def __hash__(self) -> int:
        return hash((self.type, constant_key(self.value)))


def constant_key(value):
    """A hashable, NaN-safe key for a constant payload."""
    if isinstance(value, tuple):
        return tuple(constant_key(v) for v in value)
    if isinstance(value, float):
        if math.isnan(value):
            return ("nan",)
        return ("f", value)
    return ("i", value)


def format_constant(type_: Type, value) -> str:
    """Render a constant payload the way the printer/parser expect it."""
    if isinstance(type_, VectorType):
        inner = ", ".join(
            format_constant(type_.element, v) for v in value
        )
        return f"<{inner}>"
    if isinstance(type_, FloatType):
        return repr(float(value))
    return str(value)


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index


class GlobalBuffer(Value):
    """A module-level array buffer (models the C arrays of the kernels).

    The value itself is a pointer to the element type; ``count`` elements of
    storage are reserved by the interpreter at module load.  An optional
    ``initializer`` supplies initial contents.
    """

    def __init__(
        self,
        name: str,
        element: Type,
        count: int,
        initializer: Optional[Sequence] = None,
    ) -> None:
        from .types import pointer_to

        super().__init__(pointer_to(element), name)
        self.element = element
        self.count = count
        self.initializer = list(initializer) if initializer is not None else None
        if self.initializer is not None and len(self.initializer) != count:
            raise ValueError(
                f"initializer length {len(self.initializer)} != count {count}"
            )

    def ref(self) -> str:
        return f"@{self.name}"
