"""Textual IR printer.

The format round-trips through :mod:`repro.ir.parser`; tests assert
``parse(print(m))`` is structurally identical to ``m``.  A printed module
looks like::

    module kernel

    global @A : f64 x 128
    global @B : f64 x 128 = [0.0, 1.0, ...]

    func @axpy(%a: f64, %n: i64) -> void fastmath {
    entry:
      %i0 = gep f64* @A, i64 0
      %v = load f64, f64* %i0
      ...
      ret
    }
"""

from __future__ import annotations

from typing import List

from .block import BasicBlock
from .function import Function
from .instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from .module import Module
from .values import Constant, Value, format_constant


def operand_ref(value: Value) -> str:
    """Render a value as an operand (constants inline, others by name)."""
    return value.ref()


def typed_operand(value: Value) -> str:
    return f"{value.type} {operand_ref(value)}"


def format_instruction(inst: Instruction) -> str:
    """One-line textual form of an instruction (no indentation)."""
    prefix = f"%{inst.name} = " if not inst.type.is_void and inst.name else ""
    if isinstance(inst, BinaryInst):
        return (
            f"{prefix}{inst.opcode} {inst.type} "
            f"{operand_ref(inst.lhs)}, {operand_ref(inst.rhs)}"
        )
    if isinstance(inst, AltBinaryInst):
        lanes = ", ".join(str(op) for op in inst.lane_opcodes)
        return (
            f"{prefix}altbinop [{lanes}] {inst.type} "
            f"{operand_ref(inst.lhs)}, {operand_ref(inst.rhs)}"
        )
    if isinstance(inst, LoadInst):
        return f"{prefix}load {inst.type}, {typed_operand(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {typed_operand(inst.value)}, {typed_operand(inst.pointer)}"
    if isinstance(inst, GepInst):
        return f"{prefix}gep {typed_operand(inst.base)}, {typed_operand(inst.index)}"
    if isinstance(inst, InsertElementInst):
        return (
            f"{prefix}insertelement {typed_operand(inst.vector)}, "
            f"{typed_operand(inst.scalar)}, {typed_operand(inst.lane)}"
        )
    if isinstance(inst, ExtractElementInst):
        return (
            f"{prefix}extractelement {typed_operand(inst.vector)}, "
            f"{typed_operand(inst.lane)}"
        )
    if isinstance(inst, ShuffleVectorInst):
        mask = ", ".join(str(m) for m in inst.mask)
        return (
            f"{prefix}shufflevector {typed_operand(inst.a)}, "
            f"{typed_operand(inst.b)}, [{mask}]"
        )
    if isinstance(inst, CmpInst):
        return (
            f"{prefix}{inst.opcode} {inst.predicate} {inst.lhs.type} "
            f"{operand_ref(inst.lhs)}, {operand_ref(inst.rhs)}"
        )
    if isinstance(inst, SelectInst):
        return (
            f"{prefix}select {typed_operand(inst.cond)}, "
            f"{typed_operand(inst.operand(1))}, {typed_operand(inst.operand(2))}"
        )
    if isinstance(inst, CastInst):
        return f"{prefix}{inst.opcode} {typed_operand(inst.value)} to {inst.type}"
    if isinstance(inst, CallInst):
        args = ", ".join(typed_operand(arg) for arg in inst.operands)
        return f"{prefix}call {inst.type} @{inst.callee}({args})"
    if isinstance(inst, BranchInst):
        return f"br %{inst.target.name}"
    if isinstance(inst, CondBranchInst):
        return (
            f"condbr {typed_operand(inst.cond)}, "
            f"%{inst.if_true.name}, %{inst.if_false.name}"
        )
    if isinstance(inst, RetInst):
        return f"ret {typed_operand(inst.value)}" if inst.value is not None else "ret"
    if isinstance(inst, PhiInst):
        edges = ", ".join(
            f"[{operand_ref(value)}, %{block.name}]" for value, block in inst.incoming()
        )
        return f"{prefix}phi {inst.type} {edges}"
    raise NotImplementedError(f"printer: unhandled instruction {inst.opcode}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    function.assign_names()
    args = ", ".join(f"%{arg.name}: {arg.type}" for arg in function.arguments)
    fast = " fastmath" if function.fast_math else ""
    lines = [f"func @{function.name}({args}) -> {function.return_type}{fast} {{"]
    for block in function.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts: List[str] = [f"module {module.name}", ""]
    for buffer in module.globals.values():
        decl = f"global @{buffer.name} : {buffer.element} x {buffer.count}"
        if buffer.initializer is not None:
            init = ", ".join(
                format_constant(buffer.element, v) for v in buffer.initializer
            )
            decl += f" = [{init}]"
        parts.append(decl)
    if module.globals:
        parts.append("")
    for function in module.functions.values():
        parts.append(print_function(function))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
