"""IR analyses used by the vectorizer.

The central one is the *address analysis*: decomposing the pointer of a
load/store into ``(base object, symbolic index, constant offset)``.  This is
the miniature equivalent of LLVM's SCEV-based pointer analysis that the SLP
pass uses to recognise loads/stores of *adjacent* memory locations —
``A[i+0]``, ``A[i+1]`` — the primary vectorization seeds and leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .instructions import (
    BinaryInst,
    GepInst,
    Instruction,
    LoadInst,
    Opcode,
    StoreInst,
)
from .values import Constant, Value


@dataclass(frozen=True)
class AddressInfo:
    """Decomposed memory address: ``base[sym + offset]``.

    ``base`` is the pointer the gep indexes (a global buffer or pointer
    argument); ``symbol`` is the non-constant part of the index (``None``
    for fully constant addresses); ``offset`` is the constant part in
    *elements* (not bytes); ``element_size`` is the byte width of the
    accessed element.
    """

    base: Value
    symbol: Optional[Value]
    offset: int
    element_size: int

    def same_base_and_symbol(self, other: "AddressInfo") -> bool:
        return self.base is other.base and self.symbol is other.symbol

    def is_consecutive_with(self, other: "AddressInfo") -> bool:
        """True when ``other`` addresses the element right after ``self``."""
        return (
            self.same_base_and_symbol(other)
            and self.element_size == other.element_size
            and other.offset == self.offset + 1
        )

    def distance_to(self, other: "AddressInfo") -> Optional[int]:
        """Element distance ``other - self`` when comparable, else None."""
        if not self.same_base_and_symbol(other):
            return None
        return other.offset - self.offset


def _split_index(index: Value) -> Optional[tuple]:
    """Decompose an integer index into (symbol, constant offset)."""
    if isinstance(index, Constant):
        return (None, index.value)
    if isinstance(index, BinaryInst):
        lhs, rhs = index.lhs, index.rhs
        if index.opcode is Opcode.ADD:
            if isinstance(rhs, Constant):
                return (lhs, rhs.value)
            if isinstance(lhs, Constant):
                return (rhs, lhs.value)
        elif index.opcode is Opcode.SUB and isinstance(rhs, Constant):
            return (lhs, -rhs.value)
    return (index, 0)


def decompose_pointer(pointer: Value) -> Optional[AddressInfo]:
    """Address info for a pointer value, or None when unanalyzable."""
    if isinstance(pointer, GepInst):
        split = _split_index(pointer.index)
        if split is None:
            return None
        symbol, offset = split
        element = pointer.type.pointee
        return AddressInfo(pointer.base, symbol, offset, element.byte_width)
    if pointer.type.is_pointer:
        # A bare pointer (argument or global) addresses element 0.
        element = pointer.type.pointee
        return AddressInfo(pointer, None, 0, element.byte_width)
    return None


def address_of(inst: Instruction) -> Optional[AddressInfo]:
    """Address info for a load or store instruction."""
    if isinstance(inst, LoadInst):
        return decompose_pointer(inst.pointer)
    if isinstance(inst, StoreInst):
        return decompose_pointer(inst.pointer)
    return None


def may_alias(a: AddressInfo, b: AddressInfo) -> bool:
    """Conservative alias check between two analyzed addresses.

    Distinct global buffers never alias.  Same base with the same symbolic
    index aliases iff the constant offsets coincide.  Everything else is
    assumed to alias.
    """
    from .values import GlobalBuffer

    if (
        isinstance(a.base, GlobalBuffer)
        and isinstance(b.base, GlobalBuffer)
        and a.base is not b.base
    ):
        return False
    if a.same_base_and_symbol(b):
        return a.offset == b.offset
    return True


def memory_instructions_between(
    first: Instruction, last: Instruction
) -> List[Instruction]:
    """Memory-touching instructions strictly between two positions.

    Both instructions must live in the same block; ``first`` must come
    before ``last``.  Used by scheduling legality: a bundle of loads can be
    vectorized at the position of its last member only if no intervening
    store may clobber the earlier members.
    """
    block = first.parent
    if block is None or block is not last.parent:
        raise ValueError("instructions must share a block")
    lo = block.index_of(first)
    hi = block.index_of(last)
    if lo > hi:
        lo, hi = hi, lo
    return [
        inst
        for inst in block.instructions[lo + 1 : hi]
        if inst.is_memory
    ]


def sort_by_offset(infos: Sequence[AddressInfo]) -> List[int]:
    """Indices of ``infos`` sorted by constant offset (stable)."""
    return sorted(range(len(infos)), key=lambda i: infos[i].offset)
