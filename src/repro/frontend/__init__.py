"""Mini-C kernel language frontend: lexer, parser, sema, lowering."""

from .errors import (
    FrontendError,
    LexError,
    SemanticError,
    SourceLocation,
    SyntaxErrorKL,
)
from .lexer import Token, tokenize
from .parser import parse_source
from .sema import SemaResult, analyze
from .lower import compile_source, lower_program

__all__ = [
    "FrontendError",
    "LexError",
    "SyntaxErrorKL",
    "SemanticError",
    "SourceLocation",
    "Token",
    "tokenize",
    "parse_source",
    "analyze",
    "SemaResult",
    "lower_program",
    "compile_source",
]
