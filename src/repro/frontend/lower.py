"""Lowering: kernel-language AST -> repro IR.

The lowering is deliberately literal: the IR mirrors the source's
expression trees exactly (no reassociation, no CSE beyond index
arithmetic) so the vectorizer sees the same shapes clang's -O3 pipeline
leaves for LLVM's SLP pass in the paper's examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import CmpPredicate, Opcode
from ..ir.module import Module
from ..ir.types import I64, Type, VOID
from ..ir.values import Constant, Value
from ..ir.verifier import verify_module
from .errors import SemanticError
from .sema import ELEMENT_TYPE_MAP, SemaResult, analyze
from .parser import parse_source
from .syntax import (
    ArrayRef,
    Assign,
    Binary,
    Call,
    Compare,
    Expr,
    FloatLiteral,
    ForLoop,
    IntLiteral,
    KernelDecl,
    Stmt,
    Ternary,
    Unary,
    VarRef,
)

#: source operator -> (integer opcode, float opcode)
_BINOP_MAP: Dict[str, Tuple[Opcode, Opcode]] = {
    "+": (Opcode.ADD, Opcode.FADD),
    "-": (Opcode.SUB, Opcode.FSUB),
    "*": (Opcode.MUL, Opcode.FMUL),
    "/": (Opcode.SDIV, Opcode.FDIV),
}

_COMPOUND_TO_BINOP = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}

#: source relational operator -> IR comparison predicate
_CMP_MAP: Dict[str, CmpPredicate] = {
    "==": CmpPredicate.EQ,
    "!=": CmpPredicate.NE,
    "<": CmpPredicate.LT,
    "<=": CmpPredicate.LE,
    ">": CmpPredicate.GT,
    ">=": CmpPredicate.GE,
}


class _LoweringContext:
    """Per-kernel lowering state."""

    def __init__(self, sema: SemaResult, builder: IRBuilder) -> None:
        self.sema = sema
        self.builder = builder
        self.env: Dict[str, Value] = {}
        #: index-expression cache, reset per basic block (CSE for gep math)
        self.index_cache: Dict[Tuple, Value] = {}

    def child(self) -> "_LoweringContext":
        ctx = _LoweringContext(self.sema, self.builder)
        ctx.env = dict(self.env)
        return ctx


def lower_program(sema: SemaResult, module_name: str = "kernelmod") -> Module:
    """Lower a checked program into a fresh module."""
    module = Module(module_name)
    for decl in sema.arrays.values():
        module.add_global(decl.name, ELEMENT_TYPE_MAP[decl.element_type], decl.size)
    for kernel in sema.program.kernels:
        _lower_kernel(sema, module, kernel)
    verify_module(module)
    return module


def compile_source(source: str, module_name: str = "kernelmod") -> Module:
    """Front door: kernel-language source -> verified IR module."""
    program = parse_source(source)
    sema = analyze(program)
    return lower_program(sema, module_name)


# -- kernel lowering ------------------------------------------------------------------

def _lower_kernel(sema: SemaResult, module: Module, kernel: KernelDecl) -> None:
    function = Function(
        kernel.name, [(kernel.param, I64)], VOID, fast_math=kernel.fast_math
    )
    module.add_function(function)
    entry = function.add_block("entry")
    builder = IRBuilder(entry)
    context = _LoweringContext(sema, builder)
    context.env[kernel.param] = function.arguments[0]

    for statement in kernel.body:
        if isinstance(statement, ForLoop):
            _lower_loop(context, function, statement)
        else:
            _lower_assign(context, statement)
    builder.ret()


def _lower_loop(
    context: _LoweringContext, function: Function, loop: ForLoop
) -> None:
    builder = context.builder
    preheader = builder.block
    header = function.add_block("header")
    body = function.add_block("body")
    exit_block = function.add_block("exit")

    start_value = _lower_expr(context, loop.start)
    builder.br(header)

    builder.position_at_end(header)
    induction = builder.phi(I64, loop.var)
    bound = _lower_expr(context, loop.bound)
    in_range = builder.icmp(CmpPredicate.LT, induction, bound)
    builder.condbr(in_range, body, exit_block)

    builder.position_at_end(body)
    inner = context.child()
    inner.index_cache = {}
    inner.env[loop.var] = induction
    for statement in loop.body:
        if isinstance(statement, ForLoop):  # pragma: no cover - sema rejects
            raise SemanticError("nested loop reached lowering", statement.location)
        _lower_assign(inner, statement)
    next_value = builder.add(induction, builder.const_i64(loop.step), f"{loop.var}.next")
    builder.br(header)

    induction.add_incoming(start_value, preheader)
    induction.add_incoming(next_value, body)

    builder.position_at_end(exit_block)
    context.index_cache = {}


def _lower_assign(context: _LoweringContext, assign: Assign) -> None:
    builder = context.builder
    target = assign.target
    if isinstance(target, ArrayRef):
        pointer = _lower_array_pointer(context, target)
        element = context.sema.type_of(target)
        if assign.op == "=":
            value = _lower_expr(context, assign.value)
        else:
            current = builder.load(pointer)
            rhs = _lower_expr(context, assign.value)
            opcode = _opcode_for(_COMPOUND_TO_BINOP[assign.op], element)
            value = builder.binop(opcode, current, rhs)
        builder.store(value, pointer)
        return
    # scalar variable
    if assign.op == "=":
        context.env[target.name] = _lower_expr(context, assign.value)
        return
    current = context.env[target.name]
    rhs = _lower_expr(context, assign.value)
    opcode = _opcode_for(_COMPOUND_TO_BINOP[assign.op], current.type)
    context.env[target.name] = builder.binop(opcode, current, rhs)


# -- expression lowering -----------------------------------------------------------------

def _opcode_for(op: str, type_: Type) -> Opcode:
    int_op, float_op = _BINOP_MAP[op]
    return float_op if type_.is_float else int_op


def _lower_array_pointer(context: _LoweringContext, ref: ArrayRef) -> Value:
    index = _lower_index(context, ref.index)
    return context.builder.gep(_global(context, ref.array), index)


def _global(context: _LoweringContext, name: str):
    # the builder's block -> function -> module
    function = context.builder.block.parent
    assert function is not None and function.parent is not None
    return function.parent.global_named(name)


def _lower_index(context: _LoweringContext, index: Expr) -> Value:
    """Lower an index expression with per-block CSE.

    Caching ``i + k`` per block mirrors what clang's pipeline leaves after
    GVN and keeps the addressing IR identical across lanes, which is what
    the vectorizer's address analysis expects.
    """
    key = _index_key(context, index)
    if key is not None:
        cached = context.index_cache.get(key)
        if cached is not None:
            return cached
    value = _lower_expr(context, index)
    if key is not None:
        context.index_cache[key] = value
    return value


def _index_key(context: _LoweringContext, index: Expr) -> Optional[Tuple]:
    if isinstance(index, IntLiteral):
        return ("const", index.value)
    if isinstance(index, VarRef):
        bound = context.env.get(index.name)
        return ("var", id(bound)) if bound is not None else None
    if isinstance(index, Binary):
        lhs = _index_key(context, index.lhs)
        rhs = _index_key(context, index.rhs)
        if lhs is not None and rhs is not None:
            return ("bin", index.op, lhs, rhs)
    return None


def _lower_expr(context: _LoweringContext, expr: Expr) -> Value:
    builder = context.builder
    sema = context.sema
    type_ = sema.type_of(expr)

    if isinstance(expr, IntLiteral):
        if type_.is_float:
            return Constant(type_, float(expr.value))
        return Constant(type_, expr.value)
    if isinstance(expr, FloatLiteral):
        return Constant(type_, expr.value)
    if isinstance(expr, VarRef):
        return context.env[expr.name]
    if isinstance(expr, ArrayRef):
        return builder.load(_lower_array_pointer(context, expr))
    if isinstance(expr, Unary):
        operand = _lower_expr(context, expr.operand)
        zero = Constant(type_, 0.0 if type_.is_float else 0)
        opcode = Opcode.FSUB if type_.is_float else Opcode.SUB
        return builder.binop(opcode, zero, operand)
    if isinstance(expr, Binary):
        lhs = _lower_expr(context, expr.lhs)
        rhs = _lower_expr(context, expr.rhs)
        return builder.binop(_opcode_for(expr.op, type_), lhs, rhs)
    if isinstance(expr, Call):
        args = [_lower_expr(context, arg) for arg in expr.args]
        return builder.call(expr.callee, args)
    if isinstance(expr, Compare):
        lhs = _lower_expr(context, expr.lhs)
        rhs = _lower_expr(context, expr.rhs)
        predicate = _CMP_MAP[expr.op]
        if lhs.type.is_float:
            return builder.fcmp(predicate, lhs, rhs)
        return builder.icmp(predicate, lhs, rhs)
    if isinstance(expr, Ternary):
        cond = _lower_expr(context, expr.cond)
        then = _lower_expr(context, expr.then)
        otherwise = _lower_expr(context, expr.otherwise)
        return builder.select(cond, then, otherwise)
    raise SemanticError("unsupported expression reached lowering", expr.location)
