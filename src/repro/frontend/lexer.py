"""Lexer for the kernel language.

The kernel language is the C subset the paper's examples are written in:
global array declarations, one induction-variable ``for`` loop per kernel,
and straight-line arithmetic assignments over array elements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError, SourceLocation

KEYWORDS = frozenset(
    {
        "kernel",
        "for",
        "double",
        "float",
        "long",
        "int",
        "nofastmath",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<newline>\n)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\+=|-=|\*=|/=|==|!=|<=|>=|[-+*/=<>;,(){}\[\]?:])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'int', 'float', 'ident', 'keyword', 'op', 'eof'
    text: str
    location: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, {self.location})"


def tokenize(source: str) -> List[Token]:
    """Split kernel-language source into tokens (comments stripped)."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            location = SourceLocation(line, pos - line_start + 1)
            raise LexError(f"unexpected character {source[pos]!r}", location)
        kind = match.lastgroup
        text = match.group()
        location = SourceLocation(line, pos - line_start + 1)
        if kind == "newline":
            line += 1
            line_start = match.end()
        elif kind == "comment":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rfind("\n") + 1
        elif kind == "ws":
            pass
        elif kind == "ident" and text in KEYWORDS:
            tokens.append(Token("keyword", text, location))
        else:
            assert kind is not None
            tokens.append(Token(kind, text, location))
        pos = match.end()
    tokens.append(Token("eof", "", SourceLocation(line, pos - line_start + 1)))
    return tokens
