"""Recursive-descent parser for the kernel language.

Grammar (EBNF)::

    program   := (array_decl | kernel)*
    array_decl:= type IDENT '[' INT ']' ';'
    type      := 'double' | 'float' | 'long' | 'int'
    kernel    := 'kernel' IDENT '(' IDENT ')' ['nofastmath'] block
    block     := '{' stmt* '}'
    stmt      := for_loop | assign ';' | ';'
    for_loop  := 'for' '(' IDENT '=' expr ';' IDENT '<' expr ';'
                 IDENT '+=' INT ')' block
    assign    := lvalue ('=' | '+=' | '-=' | '*=' | '/=') expr
    lvalue    := IDENT '[' expr ']' | IDENT
    expr      := compare ['?' expr ':' expr]
    compare   := additive [('<'|'<='|'>'|'>='|'=='|'!=') additive]
    additive  := term (('+' | '-') term)*
    term      := unary (('*' | '/') unary)*
    unary     := '-' unary | primary
    primary   := INT | FLOAT | IDENT ['[' expr ']' | '(' args ')']
               | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Union

from .errors import SyntaxErrorKL
from .lexer import Token, tokenize
from .syntax import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Binary,
    Call,
    Compare,
    Expr,
    FloatLiteral,
    ForLoop,
    IntLiteral,
    KernelDecl,
    Program,
    Stmt,
    Ternary,
    Unary,
    VarRef,
)

ELEMENT_TYPES = ("double", "float", "long", "int")
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


class KernelParser:
    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing --------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise SyntaxErrorKL(
                f"expected {want!r}, got {token.text!r}", token.location
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    # -- top level ----------------------------------------------------------------------

    def parse_program(self) -> Program:
        start = self._peek().location
        declarations: List[ArrayDecl] = []
        kernels: List[KernelDecl] = []
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.kind == "keyword" and token.text in ELEMENT_TYPES:
                declarations.append(self._parse_array_decl())
            elif token.kind == "keyword" and token.text == "kernel":
                kernels.append(self._parse_kernel())
            else:
                raise SyntaxErrorKL(
                    f"expected declaration or kernel, got {token.text!r}",
                    token.location,
                )
        if not kernels:
            raise SyntaxErrorKL("program declares no kernels", start)
        return Program(start, declarations, kernels)

    def _parse_array_decl(self) -> ArrayDecl:
        type_tok = self._expect("keyword")
        name = self._expect("ident")
        self._expect("op", "[")
        size = int(self._expect("int").text)
        self._expect("op", "]")
        self._expect("op", ";")
        return ArrayDecl(type_tok.location, type_tok.text, name.text, size)

    def _parse_kernel(self) -> KernelDecl:
        start = self._expect("keyword", "kernel")
        name = self._expect("ident")
        self._expect("op", "(")
        param = self._expect("ident")
        self._expect("op", ")")
        fast_math = not self._accept("keyword", "nofastmath")
        body = self._parse_block()
        return KernelDecl(start.location, name.text, param.text, body, fast_math)

    # -- statements --------------------------------------------------------------------------

    def _parse_block(self) -> List[Stmt]:
        self._expect("op", "{")
        body: List[Stmt] = []
        while not self._accept("op", "}"):
            statement = self._parse_stmt()
            if statement is not None:
                body.append(statement)
        return body

    def _parse_stmt(self) -> Optional[Stmt]:
        token = self._peek()
        if token.kind == "op" and token.text == ";":
            self._next()
            return None
        if token.kind == "keyword" and token.text == "for":
            return self._parse_for()
        return self._parse_assign()

    def _parse_for(self) -> ForLoop:
        start = self._expect("keyword", "for")
        self._expect("op", "(")
        var = self._expect("ident").text
        self._expect("op", "=")
        init = self._parse_additive()
        self._expect("op", ";")
        cond_var = self._expect("ident").text
        if cond_var != var:
            raise SyntaxErrorKL(
                f"loop condition tests {cond_var!r}, expected {var!r}",
                start.location,
            )
        self._expect("op", "<")
        bound = self._parse_additive()
        self._expect("op", ";")
        step_var = self._expect("ident").text
        if step_var != var:
            raise SyntaxErrorKL(
                f"loop increments {step_var!r}, expected {var!r}", start.location
            )
        self._expect("op", "+=")
        step = int(self._expect("int").text)
        if step < 1:
            raise SyntaxErrorKL("loop step must be positive", start.location)
        self._expect("op", ")")
        body = self._parse_block()
        return ForLoop(start.location, var, init, bound, step, body)

    def _parse_assign(self) -> Assign:
        target = self._parse_lvalue()
        op_tok = self._next()
        if op_tok.kind != "op" or op_tok.text not in ASSIGN_OPS:
            raise SyntaxErrorKL(
                f"expected assignment operator, got {op_tok.text!r}",
                op_tok.location,
            )
        value = self._parse_expr()
        self._expect("op", ";")
        return Assign(op_tok.location, target, op_tok.text, value)

    def _parse_lvalue(self) -> Union[ArrayRef, VarRef]:
        name = self._expect("ident")
        if self._accept("op", "["):
            index = self._parse_expr()
            self._expect("op", "]")
            return ArrayRef(name.location, name.text, index)
        return VarRef(name.location, name.text)

    # -- expressions --------------------------------------------------------------------------

    #: relational operators (non-associative: `a < b < c` is rejected)
    RELOPS = ("==", "!=", "<=", ">=", "<", ">")

    def _parse_expr(self) -> Expr:
        """Full expression: ternary over an optional single comparison."""
        condition = self._parse_compare()
        question = self._accept("op", "?")
        if question is None:
            return condition
        then = self._parse_expr()
        self._expect("op", ":")
        otherwise = self._parse_expr()
        return Ternary(question.location, condition, then, otherwise)

    def _parse_compare(self) -> Expr:
        lhs = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in self.RELOPS:
            self._next()
            rhs = self._parse_additive()
            follow = self._peek()
            if follow.kind == "op" and follow.text in self.RELOPS:
                raise SyntaxErrorKL(
                    "comparisons do not chain; parenthesize", follow.location
                )
            return Compare(token.location, token.text, lhs, rhs)
        return lhs

    def _parse_additive(self) -> Expr:
        lhs = self._parse_term()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._next()
                rhs = self._parse_term()
                lhs = Binary(token.location, token.text, lhs, rhs)
            else:
                return lhs

    def _parse_term(self) -> Expr:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/"):
                self._next()
                rhs = self._parse_unary()
                lhs = Binary(token.location, token.text, lhs, rhs)
            else:
                return lhs

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind == "op" and token.text == "-":
            self._next()
            return Unary(token.location, "-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._next()
        if token.kind == "int":
            return IntLiteral(token.location, int(token.text))
        if token.kind == "float":
            return FloatLiteral(token.location, float(token.text))
        if token.kind == "ident":
            if self._accept("op", "["):
                index = self._parse_expr()
                self._expect("op", "]")
                return ArrayRef(token.location, token.text, index)
            if self._accept("op", "("):
                args: List[Expr] = []
                while not self._accept("op", ")"):
                    args.append(self._parse_expr())
                    self._accept("op", ",")
                return Call(token.location, token.text, args)
            return VarRef(token.location, token.text)
        if token.kind == "op" and token.text == "(":
            inner = self._parse_expr()
            self._expect("op", ")")
            return inner
        raise SyntaxErrorKL(f"expected expression, got {token.text!r}", token.location)


def parse_source(source: str) -> Program:
    """Parse kernel-language source into an AST."""
    return KernelParser(source).parse_program()
