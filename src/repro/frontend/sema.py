"""Semantic analysis for the kernel language.

Checks bindings and types, and annotates every expression node with its
IR type so lowering is a mechanical walk.  Rules:

* array element types: ``double``/``float``/``long``/``int`` map to
  f64/f32/i64/i32; array indexes are i64 expressions;
* the kernel parameter and loop induction variables are i64;
* scalar temporaries take the type of their first assignment; compound
  assignment requires an existing binding;
* both operands of an arithmetic operator must have the same type, except
  that integer literals adapt to a float context (like C constants);
* loops may not nest (SLP operates on the straight-line bodies) and loop
  bodies may not rebind the induction variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..ir.instructions import INTRINSICS
from ..ir.types import F32, F64, I1, I32, I64, Type
from .errors import SemanticError
from .syntax import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Binary,
    Call,
    Compare,
    Expr,
    FloatLiteral,
    ForLoop,
    IntLiteral,
    KernelDecl,
    Program,
    Stmt,
    Ternary,
    Unary,
    VarRef,
)

ELEMENT_TYPE_MAP: Dict[str, Type] = {
    "double": F64,
    "float": F32,
    "long": I64,
    "int": I32,
}

#: intrinsics exposed to kernel source (all operate on floats)
FLOAT_INTRINSICS = ("sqrt", "fabs", "fmin", "fmax")


@dataclass
class SemaResult:
    """Binding and type information consumed by lowering."""

    program: Program
    arrays: Dict[str, ArrayDecl]
    #: IR type of every expression node, keyed by id(node)
    expr_types: Dict[int, Type] = field(default_factory=dict)

    def type_of(self, node: Expr) -> Type:
        return self.expr_types[id(node)]

    def array_element_type(self, name: str) -> Type:
        return ELEMENT_TYPE_MAP[self.arrays[name].element_type]


class _KernelScope:
    """Scalar bindings visible at a point in a kernel."""

    def __init__(self, parent: Optional["_KernelScope"] = None) -> None:
        self.parent = parent
        self.bindings: Dict[str, Type] = {}

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_KernelScope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def bind(self, name: str, type_: Type) -> None:
        self.bindings[name] = type_


class SemanticAnalyzer:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.result = SemaResult(program=program, arrays={})

    def analyze(self) -> SemaResult:
        for decl in self.program.declarations:
            if decl.name in self.result.arrays:
                raise SemanticError(f"duplicate array {decl.name!r}", decl.location)
            if decl.element_type not in ELEMENT_TYPE_MAP:
                raise SemanticError(
                    f"unknown element type {decl.element_type!r}", decl.location
                )
            if decl.size < 1:
                raise SemanticError(
                    f"array {decl.name!r} has non-positive size", decl.location
                )
            self.result.arrays[decl.name] = decl
        seen_kernels = set()
        for kernel in self.program.kernels:
            if kernel.name in seen_kernels:
                raise SemanticError(
                    f"duplicate kernel {kernel.name!r}", kernel.location
                )
            seen_kernels.add(kernel.name)
            self._check_kernel(kernel)
        return self.result

    # -- kernels ---------------------------------------------------------------------

    def _check_kernel(self, kernel: KernelDecl) -> None:
        scope = _KernelScope()
        scope.bind(kernel.param, I64)
        self._check_body(kernel.body, scope, in_loop=False)

    def _check_body(
        self, body: List[Stmt], scope: _KernelScope, in_loop: bool
    ) -> None:
        for statement in body:
            if isinstance(statement, ForLoop):
                if in_loop:
                    raise SemanticError(
                        "nested loops are not supported (SLP vectorizes the "
                        "straight-line loop body)",
                        statement.location,
                    )
                self._check_loop(statement, scope)
            elif isinstance(statement, Assign):
                self._check_assign(statement, scope)
            else:  # pragma: no cover - parser produces no other kinds
                raise SemanticError("unsupported statement", statement.location)

    def _check_loop(self, loop: ForLoop, scope: _KernelScope) -> None:
        if scope.lookup(loop.var) is not None:
            raise SemanticError(
                f"loop variable {loop.var!r} shadows an existing binding",
                loop.location,
            )
        self._check_expr(loop.start, scope, expected=I64)
        self._check_expr(loop.bound, scope, expected=I64)
        inner = _KernelScope(scope)
        inner.bind(loop.var, I64)
        self._check_body(loop.body, inner, in_loop=True)

    def _check_assign(self, assign: Assign, scope: _KernelScope) -> None:
        target = assign.target
        if isinstance(target, ArrayRef):
            element = self._array_ref_type(target, scope)
            self._check_expr(assign.value, scope, expected=element)
            return
        # scalar target
        existing = scope.lookup(target.name)
        if assign.op != "=":
            if existing is None:
                raise SemanticError(
                    f"compound assignment to unbound variable {target.name!r}",
                    assign.location,
                )
            self._check_expr(assign.value, scope, expected=existing)
            return
        value_type = self._check_expr(assign.value, scope, expected=existing)
        if existing is None:
            scope.bind(target.name, value_type)
        elif existing is not value_type:
            raise SemanticError(
                f"variable {target.name!r} rebound at {value_type}, "
                f"previously {existing}",
                assign.location,
            )

    # -- expressions -------------------------------------------------------------------

    def _array_ref_type(self, ref: ArrayRef, scope: _KernelScope) -> Type:
        if ref.array not in self.result.arrays:
            raise SemanticError(f"unknown array {ref.array!r}", ref.location)
        self._check_expr(ref.index, scope, expected=I64)
        element = self.result.array_element_type(ref.array)
        self.result.expr_types[id(ref)] = element
        return element

    def _check_expr(
        self, expr: Expr, scope: _KernelScope, expected: Optional[Type] = None
    ) -> Type:
        type_ = self._infer(expr, scope, expected)
        if expected is not None and type_ is not expected:
            raise SemanticError(
                f"expected {expected}, got {type_}", expr.location
            )
        self.result.expr_types[id(expr)] = type_
        return type_

    def _infer(
        self, expr: Expr, scope: _KernelScope, expected: Optional[Type]
    ) -> Type:
        if isinstance(expr, IntLiteral):
            # Integer literals adapt to float contexts, like C constants.
            if expected is not None:
                return expected
            return I64
        if isinstance(expr, FloatLiteral):
            if expected is not None and expected.is_float:
                return expected
            if expected is not None:
                raise SemanticError(
                    f"float literal in {expected} context", expr.location
                )
            return F64
        if isinstance(expr, VarRef):
            bound = scope.lookup(expr.name)
            if bound is None:
                raise SemanticError(f"unbound variable {expr.name!r}", expr.location)
            return bound
        if isinstance(expr, ArrayRef):
            return self._array_ref_type(expr, scope)
        if isinstance(expr, Unary):
            return self._check_expr(expr.operand, scope, expected)
        if isinstance(expr, Binary):
            # Infer a concrete side first so literals can adapt.
            hint = expected
            if hint is None:
                hint = self._probe_type(expr.lhs, scope) or self._probe_type(
                    expr.rhs, scope
                )
            lhs = self._check_expr(expr.lhs, scope, hint)
            rhs = self._check_expr(expr.rhs, scope, lhs)
            return lhs if lhs is rhs else lhs
        if isinstance(expr, Compare):
            hint = self._probe_type(expr.lhs, scope) or self._probe_type(
                expr.rhs, scope
            )
            if hint is None:
                raise SemanticError(
                    "cannot infer comparison operand type", expr.location
                )
            self._check_expr(expr.lhs, scope, hint)
            self._check_expr(expr.rhs, scope, hint)
            return I1
        if isinstance(expr, Ternary):
            self._check_expr(expr.cond, scope, I1)
            arm_hint = expected
            if arm_hint is None:
                arm_hint = self._probe_type(expr.then, scope) or self._probe_type(
                    expr.otherwise, scope
                )
            then_type = self._check_expr(expr.then, scope, arm_hint)
            self._check_expr(expr.otherwise, scope, then_type)
            return then_type
        if isinstance(expr, Call):
            if expr.callee not in FLOAT_INTRINSICS:
                raise SemanticError(
                    f"unknown intrinsic {expr.callee!r} "
                    f"(available: {', '.join(FLOAT_INTRINSICS)})",
                    expr.location,
                )
            arity = INTRINSICS[expr.callee]
            if len(expr.args) != arity:
                raise SemanticError(
                    f"{expr.callee} expects {arity} argument(s), "
                    f"got {len(expr.args)}",
                    expr.location,
                )
            hint = expected if expected is not None and expected.is_float else None
            if hint is None:
                for arg in expr.args:
                    hint = self._probe_type(arg, scope)
                    if hint is not None:
                        break
            if hint is None or not hint.is_float:
                raise SemanticError(
                    f"cannot infer float type for {expr.callee} call",
                    expr.location,
                )
            for arg in expr.args:
                self._check_expr(arg, scope, hint)
            return hint
        raise SemanticError("unsupported expression", expr.location)

    def _probe_type(self, expr: Expr, scope: _KernelScope) -> Optional[Type]:
        """Non-committal type probe used to resolve literal contexts."""
        if isinstance(expr, VarRef):
            return scope.lookup(expr.name)
        if isinstance(expr, ArrayRef):
            if expr.array in self.result.arrays:
                return self.result.array_element_type(expr.array)
            return None
        if isinstance(expr, FloatLiteral):
            return F64
        if isinstance(expr, Unary):
            return self._probe_type(expr.operand, scope)
        if isinstance(expr, Binary):
            return self._probe_type(expr.lhs, scope) or self._probe_type(
                expr.rhs, scope
            )
        if isinstance(expr, Compare):
            hint = self._probe_type(expr.lhs, scope) or self._probe_type(
                expr.rhs, scope
            )
            if hint is None:
                raise SemanticError(
                    "cannot infer comparison operand type", expr.location
                )
            self._check_expr(expr.lhs, scope, hint)
            self._check_expr(expr.rhs, scope, hint)
            return I1
        if isinstance(expr, Ternary):
            self._check_expr(expr.cond, scope, I1)
            arm_hint = expected
            if arm_hint is None:
                arm_hint = self._probe_type(expr.then, scope) or self._probe_type(
                    expr.otherwise, scope
                )
            then_type = self._check_expr(expr.then, scope, arm_hint)
            self._check_expr(expr.otherwise, scope, then_type)
            return then_type
        if isinstance(expr, Call):
            for arg in expr.args:
                probed = self._probe_type(arg, scope)
                if probed is not None:
                    return probed
        if isinstance(expr, Compare):
            return I1
        if isinstance(expr, Ternary):
            return self._probe_type(expr.then, scope) or self._probe_type(
                expr.otherwise, scope
            )
        return None


def analyze(program: Program) -> SemaResult:
    """Run semantic analysis; raises SemanticError on the first problem."""
    return SemanticAnalyzer(program).analyze()
