"""AST node definitions for the kernel language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .errors import SourceLocation


@dataclass
class Node:
    location: SourceLocation


# -- expressions -----------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class VarRef(Expr):
    """A scalar variable reference (parameter, induction var or temp)."""

    name: str


@dataclass
class ArrayRef(Expr):
    """``A[index]``"""

    array: str
    index: Expr


@dataclass
class Unary(Expr):
    """Unary minus."""

    op: str  # '-'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # '+', '-', '*', '/'
    lhs: Expr
    rhs: Expr


@dataclass
class Call(Expr):
    """Intrinsic call: sqrt, fabs, fmin, fmax."""

    callee: str
    args: List[Expr]


@dataclass
class Compare(Expr):
    """Relational expression: ``a < b`` (result type i1)."""

    op: str  # '<', '<=', '>', '>=', '==', '!='
    lhs: Expr
    rhs: Expr


@dataclass
class Ternary(Expr):
    """C conditional expression: ``cond ? then : otherwise`` -> select."""

    cond: Expr
    then: Expr
    otherwise: Expr


# -- statements ------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Assign(Stmt):
    """``A[i+0] = expr;`` or ``t = expr;`` (with optional '+='/'-=')."""

    target: Union[ArrayRef, VarRef]
    op: str  # '=', '+=', '-=', '*=', '/='
    value: Expr


@dataclass
class ForLoop(Stmt):
    """``for (i = start; i < bound; i += step) { body }``"""

    var: str
    start: Expr
    bound: Expr
    step: int
    body: List[Stmt] = field(default_factory=list)


# -- top level --------------------------------------------------------------------

@dataclass
class ArrayDecl(Node):
    """``double A[1024];``"""

    element_type: str  # 'double' | 'float' | 'long' | 'int'
    name: str
    size: int


@dataclass
class KernelDecl(Node):
    """``kernel name(n) { ... }`` — optionally marked ``nofastmath``."""

    name: str
    param: str
    body: List[Stmt]
    fast_math: bool = True


@dataclass
class Program(Node):
    declarations: List[ArrayDecl]
    kernels: List[KernelDecl]
