"""Frontend diagnostics."""

from __future__ import annotations

from typing import Optional


class SourceLocation:
    """Line/column position in kernel source."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SourceLocation({self.line}, {self.column})"


class FrontendError(Exception):
    """Base class for all frontend diagnostics."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None) -> None:
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)
        self.location = location


class LexError(FrontendError):
    """Malformed token."""


class SyntaxErrorKL(FrontendError):
    """Parse error (named to avoid shadowing the builtin SyntaxError)."""


class SemanticError(FrontendError):
    """Type or binding error."""
