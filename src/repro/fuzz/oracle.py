"""Differential equivalence oracle: scalar semantics vs every pipeline.

For one program the oracle

1. interprets the *unoptimized* module — the reference semantics;
2. compiles the module under every configuration (O3 / SLP / LSLP /
   SN-SLP), which includes the IR verifier on the post-vectorization
   module;
3. simulates each compiled module on the same deterministic inputs and
   compares every output buffer against the reference with ULP-aware
   float comparison (integers compare exactly);
4. cross-checks the simulator's cycle accounting (finite, positive).

Divergences are classified so campaigns can bucket them:

========== =========================================================
status      meaning
========== =========================================================
ok          outputs match, verifier passed, cycle counts sane
mismatch    outputs differ, or one side trapped and the other did not
trap        the *reference* run trapped (program rejected, not a bug)
verifier    the compiled module failed IR verification
interp-gap  the interpreter lacks support for an emitted opcode
crash       the compiler raised while compiling the module
budget      the compiled module blew the step watchdog (runaway loop)
========== =========================================================

The fast-math pipeline may legitimately reassociate float chains, so
float comparison allows a small ULP distance (reassociation error) while
still catching sign errors, lane swaps and dropped terms, all of which
perturb results by many orders of magnitude more.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp import (
    BudgetExceededError,
    TrapError,
    UnsupportedOpcodeError,
    make_interpreter,
)
from ..ir.module import Module
from ..ir.types import FloatType
from ..ir.verifier import VerificationError
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe.session import current_session, use_session
from ..sim import simulate
from ..vectorizer import ALL_CONFIGS, SLPConfig, compile_module
from .genprog import FuzzProgram, make_inputs

#: default ULP budget for float comparison: generous enough to absorb
#: fast-math reassociation over deep chains, still ~2e-13 relative —
#: 12 orders of magnitude tighter than any APO sign error
DEFAULT_MAX_ULPS = 4096


def ulp_distance(a: float, b: float) -> int:
    """Distance between two doubles in units of last place.

    Implemented on the lexicographically-ordered integer view of IEEE-754
    doubles (sign-magnitude folded to two's complement), so the distance
    is exact and well-defined across the zero boundary.  NaNs and
    mismatched infinities are infinitely far apart.
    """
    if math.isnan(a) or math.isnan(b):
        return 0 if (math.isnan(a) and math.isnan(b)) else (1 << 62)
    if math.isinf(a) or math.isinf(b):
        return 0 if a == b else (1 << 62)

    def ordered(x: float) -> int:
        bits = struct.unpack("<q", struct.pack("<d", x))[0]
        return bits if bits >= 0 else -(bits & 0x7FFFFFFFFFFFFFFF)

    return abs(ordered(a) - ordered(b))


def values_close(
    a,
    b,
    is_float: bool,
    max_ulps: int = DEFAULT_MAX_ULPS,
    abs_tol: float = 1e-9,
) -> bool:
    """ULP-aware scalar comparison (exact for integers)."""
    if not is_float:
        return a == b
    if a == b:
        return True
    if math.isclose(a, b, rel_tol=0.0, abs_tol=abs_tol):
        return True
    return ulp_distance(a, b) <= max_ulps


@dataclass
class ConfigOutcome:
    """The oracle's verdict for one configuration."""

    config: str
    status: str  # ok | mismatch | trap | verifier | interp-gap | crash
    detail: str = ""
    vectorized_graphs: int = 0
    cycles: float = 0.0
    #: this configuration's compile + simulation counter snapshot
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class OracleReport:
    """All configuration outcomes for one program."""

    program: FuzzProgram
    input_seed: int
    reference_trapped: bool = False
    outcomes: List[ConfigOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.reference_trapped and all(o.ok for o in self.outcomes)

    @property
    def vectorized(self) -> bool:
        return any(o.vectorized_graphs > 0 for o in self.outcomes)

    def to_json(self) -> Dict[str, object]:
        return {
            "program": self.program.describe(),
            "input_seed": self.input_seed,
            "reference_trapped": self.reference_trapped,
            "outcomes": [
                {
                    "config": o.config,
                    "status": o.status,
                    "detail": o.detail,
                    "vectorized_graphs": o.vectorized_graphs,
                    "cycles": o.cycles,
                    "counters": o.counters,
                }
                for o in self.outcomes
            ],
        }


def failure_signature(report: OracleReport) -> Tuple[Tuple[str, str], ...]:
    """The (config, status) pairs that failed — the reducer's predicate
    compares signatures so a shrink cannot morph one bug into another."""
    return tuple(
        (o.config, o.status) for o in report.outcomes if not o.ok
    )


def _interpret_reference(
    module: Module,
    kernel: str,
    args: Sequence,
    inputs: Dict[str, List],
    engine: Optional[str] = None,
) -> Dict[str, List]:
    # A throwaway derived session so engine bookkeeping (plan-cache
    # counters) never lands in the caller's stats — campaign counters must
    # stay identical between serial and parallel drivers.
    scratch = current_session().derive(name="oracle-reference")
    with use_session(scratch):
        interp = make_interpreter(module, engine)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run(kernel, args)
        return {name: interp.read_global(name) for name in module.globals}


def run_oracle(
    program: FuzzProgram,
    input_seed: int = 1,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    max_ulps: int = DEFAULT_MAX_ULPS,
    engine: Optional[str] = None,
) -> OracleReport:
    """Differentially test ``program`` under every configuration.

    ``engine`` selects the execution engine for both the reference
    interpretation and every per-config simulation (``None`` = process
    default); verdicts are engine-independent by the identity guarantee.
    """
    module = program.module
    inputs = make_inputs(module, input_seed)
    report = OracleReport(program=program, input_seed=input_seed)

    try:
        reference = _interpret_reference(
            module, program.kernel, program.args, inputs, engine
        )
    except TrapError as exc:
        # The scalar program itself traps: not a miscompile, just a
        # program the input convention failed to keep trap-free.
        report.reference_trapped = True
        report.outcomes.append(
            ConfigOutcome("reference", "trap", detail=str(exc))
        )
        return report
    except BudgetExceededError as exc:
        # The scalar program outruns the watchdog: reject it like a trap
        # (the generator produced a runaway, not the compiler).
        report.reference_trapped = True
        report.outcomes.append(
            ConfigOutcome("reference", "budget", detail=str(exc))
        )
        return report

    for config in configs:
        report.outcomes.append(
            _check_config(
                program, config, target, inputs, reference, max_ulps, engine
            )
        )
    return report


def _check_config(
    program: FuzzProgram,
    config: SLPConfig,
    target: TargetMachine,
    inputs: Dict[str, List],
    reference: Dict[str, List],
    max_ulps: int,
    engine: Optional[str] = None,
) -> ConfigOutcome:
    # A private session per configuration check: the outcome carries its
    # own compile + simulation counter snapshot (replay reports print it).
    session = current_session().derive(name=f"oracle:{config.name}")
    module = program.module
    try:
        compiled = compile_module(module, config, target, session=session)
    except VerificationError as exc:
        return ConfigOutcome(config.name, "verifier", detail=str(exc))
    except Exception as exc:  # noqa: BLE001 - any compiler crash is a finding
        return ConfigOutcome(
            config.name, "crash", detail=f"{type(exc).__name__}: {exc}"
        )
    vectorized = len(compiled.report.vectorized_graphs())

    try:
        result = simulate(
            compiled.module,
            program.kernel,
            target,
            program.args,
            inputs=inputs,
            session=session,
            engine=engine,
        )
    except UnsupportedOpcodeError as exc:
        return ConfigOutcome(
            config.name,
            "interp-gap",
            detail=str(exc),
            vectorized_graphs=vectorized,
            counters=session.stats.snapshot(),
        )
    except BudgetExceededError as exc:
        # The reference finished within budget, so a compiled module that
        # does not is a semantics change (e.g. a mangled loop latch).
        return ConfigOutcome(
            config.name,
            "budget",
            detail=str(exc),
            vectorized_graphs=vectorized,
            counters=session.stats.snapshot(),
        )
    except TrapError as exc:
        # The reference did not trap, so a trapping compiled module is a
        # semantics change (e.g. a division hoisted past its guard).
        return ConfigOutcome(
            config.name,
            "mismatch",
            detail=f"compiled module trapped: {exc}",
            vectorized_graphs=vectorized,
            counters=session.stats.snapshot(),
        )

    counters = session.stats.snapshot()
    if not (math.isfinite(result.cycles) and result.cycles > 0):
        return ConfigOutcome(
            config.name,
            "mismatch",
            detail=f"implausible cycle count {result.cycles!r}",
            vectorized_graphs=vectorized,
            counters=counters,
        )

    # Compare every global, not just the declared outputs: a vectorized
    # module scribbling over an *input* buffer is just as much a bug.
    for name in module.globals:
        is_float = isinstance(module.globals[name].element, FloatType)
        got = result.globals_after[name]
        want = reference[name]
        for index, (x, y) in enumerate(zip(want, got)):
            if not values_close(y, x, is_float, max_ulps=max_ulps):
                return ConfigOutcome(
                    config.name,
                    "mismatch",
                    detail=(
                        f"@{name}[{index}]: reference {x!r} vs "
                        f"{config.name} {y!r}"
                    ),
                    vectorized_graphs=vectorized,
                    cycles=result.cycles,
                    counters=counters,
                )
    return ConfigOutcome(
        config.name,
        "ok",
        vectorized_graphs=vectorized,
        cycles=result.cycles,
        counters=counters,
    )
