"""Seeded random-program generator for the differential fuzzer.

Where :mod:`repro.kernels.generator` produces clean Super-Node-shaped
benchmark kernels, this generator produces *stress* programs: the shapes
the paper's transform must survive rather than the shapes it is shown off
on.  Every program is a straight-line kernel (the form SLP actually sees
after unrolling) built through the ordinary :class:`IRBuilder`, so the
whole frontend-free construction path is exercised too.

Shapes (one per :data:`FUZZ_SHAPES` entry):

* ``addsub``   — deep fadd/fsub chains, per-lane shuffled term order and
  random sub-tree grouping (``a - (b + c)`` style parenthesization);
* ``muldiv``   — the multiplicative family, with every divisor loaded
  from a ``DEN*`` array so inputs can keep it away from zero;
* ``mixed``    — additive chains over multiplicative sub-expressions
  (signed sums of products: the dot-product-with-signs stress);
* ``int-addsub`` — the integer add/sub family (wrapping semantics,
  compared exactly);
* ``overlap``  — every lane reads one array through overlapping/adjacent
  windows (``A[i+lane+j]``), stressing load-bundle legality;
* ``shared``   — lanes reuse the *same* load instructions (cross-lane
  common subexpressions, stressing external-use accounting);
* ``constants`` — chains whose leaves mix loads with literal constants;
* ``reduction`` — a single horizontal signed reduction into ``OUT[i]``;
* ``minmax``   — per-lane ``fmin``/``fmax`` call chains.

Determinism: all randomness flows from the spec's
:class:`~repro.kernels.seeding.SeededSpec` streams; the same spec yields
a byte-identical module on every run.

Input-safety convention: a global whose name starts with ``DEN`` is a
denominator buffer and must be seeded with values bounded away from zero.
The convention is name-based so it survives the textual ``.ir``
round-trip that reproducers take (see :func:`is_nonzero_global`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import F64, I64, FloatType, IntType
from ..ir.values import Constant, Value
from ..kernels.seeding import SeededSpec
from ..kernels.util import ArrayEnv, finish_module, make_straightline_kernel

#: every generator shape, in the order the campaign cycles through them
FUZZ_SHAPES = (
    "addsub",
    "muldiv",
    "mixed",
    "int-addsub",
    "overlap",
    "shared",
    "constants",
    "reduction",
    "minmax",
)

#: element count of every generated buffer (small: programs touch a
#: window of at most ``lanes + terms`` elements from the base index)
_BUFFER_LEN = 64

#: prefix marking denominator buffers (inputs must stay nonzero)
_NONZERO_PREFIX = "DEN"


def is_nonzero_global(name: str) -> bool:
    """True when ``name`` is a denominator buffer by naming convention."""
    return name.startswith(_NONZERO_PREFIX)


@dataclass(frozen=True)
class FuzzSpec(SeededSpec):
    """Shape parameters for one fuzz program.

    ``terms`` is the leaf count per lane (chain shapes) or the chain
    length (reduction shapes); ``lanes`` the number of adjacent stores.
    """

    shape: str = "addsub"
    lanes: int = 2
    terms: int = 4

    def __post_init__(self) -> None:
        if self.shape not in FUZZ_SHAPES:
            raise ValueError(f"unknown fuzz shape {self.shape!r}")
        if self.lanes < 2:
            raise ValueError("need at least 2 lanes")
        if self.terms < 3:
            raise ValueError("need at least 3 terms (2 trunks per lane)")


@dataclass
class FuzzProgram:
    """One program plus the metadata the oracle needs.

    ``spec`` is ``None`` for programs that did not come from the
    generator (replayed reproducers, reducer candidates).
    """

    spec: Optional[FuzzSpec]
    module: Module
    kernel: str = "kernel"
    #: argument vector the kernel is invoked with (the base index)
    args: Tuple[int, ...] = (0,)

    def describe(self) -> Dict[str, object]:
        description: Dict[str, object] = {
            "module": self.module.name,
            "kernel": self.kernel,
        }
        if self.spec is not None:
            description.update(
                shape=self.spec.shape,
                lanes=self.spec.lanes,
                terms=self.spec.terms,
                seed=self.spec.seed,
            )
        return description


def random_spec(seed: int) -> FuzzSpec:
    """The campaign's program distribution: spec for campaign seed ``seed``."""
    rng = random.Random(seed)
    return FuzzSpec(
        seed=seed,
        shape=rng.choice(FUZZ_SHAPES),
        lanes=rng.choice((2, 2, 4)),
        terms=rng.randint(3, 8),
    )


def make_inputs(module: Module, input_seed: int) -> Dict[str, List]:
    """Deterministic input contents for every global buffer of ``module``.

    Denominator buffers (``DEN*``) stay in ``[0.5, 4.0]`` so division
    never traps; everything else is signed and small enough that chains
    stay well away from overflow/cancellation extremes.
    """
    rng = random.Random(input_seed)
    inputs: Dict[str, List] = {}
    for name, buffer in module.globals.items():
        if isinstance(buffer.element, IntType):
            inputs[name] = [rng.randint(-64, 64) for _ in range(buffer.count)]
        elif is_nonzero_global(name):
            inputs[name] = [rng.uniform(0.5, 4.0) for _ in range(buffer.count)]
        else:
            inputs[name] = [rng.uniform(-4.0, 4.0) for _ in range(buffer.count)]
    return inputs


# ---------------------------------------------------------------------------
# signed-chain emission
# ---------------------------------------------------------------------------

def _fold_signed_chain(
    builder: IRBuilder,
    leaves: List[Tuple[bool, Value]],
    plus_op: str,
    minus_op: str,
    rng: random.Random,
    group_prob: float = 0.25,
) -> Value:
    """Fold ``leaves`` (sign, value) into one expression tree.

    Mostly a left spine (anchored on a '+' leaf), but with probability
    ``group_prob`` a run of same-signed leaves is folded into a nested
    sub-tree first (``x - (a + b)`` distributes the signs), producing the
    non-spine tree shapes the Super-Node chain builder must handle.
    """
    work = list(leaves)
    anchor_index = next(i for i, (minus, _) in enumerate(work) if not minus)
    expr = work.pop(anchor_index)[1]
    while work:
        # Maybe group the next run of same-signed leaves into a sub-tree.
        if len(work) >= 2 and rng.random() < group_prob:
            sign = work[0][0]
            run = 0
            while run < min(3, len(work)) and work[run][0] == sign:
                run += 1
            if run >= 2:
                inner = work[0][1]
                for _, value in work[1:run]:
                    inner = getattr(builder, plus_op)(inner, value)
                del work[:run]
                op = minus_op if sign else plus_op
                expr = getattr(builder, op)(expr, inner)
                continue
        minus, value = work.pop(0)
        expr = getattr(builder, minus_op if minus else plus_op)(expr, value)
    return expr


def _signed_multiset(
    terms: int, rng: random.Random, min_minus: int = 1
) -> List[bool]:
    """Random sign per term with at least one '+' (the anchor) and at
    least ``min_minus`` '-' (so the inverse operator actually appears)."""
    minus_count = rng.randint(min_minus, terms - 1)
    signs = [True] * minus_count + [False] * (terms - minus_count)
    rng.shuffle(signs)
    return signs


# ---------------------------------------------------------------------------
# shape emitters
# ---------------------------------------------------------------------------

def _emit_chain_program(spec: FuzzSpec, rng: random.Random) -> Module:
    """The chain-shaped family: addsub / muldiv / int-addsub / overlap /
    shared / constants, all sharing one emitter with different knobs."""
    shape = spec.shape
    int_mode = shape == "int-addsub"
    mul_mode = shape == "muldiv"
    overlap = shape == "overlap"
    shared_prob = 0.6 if shape == "shared" else 0.15
    const_prob = 0.4 if shape == "constants" else (0.0 if mul_mode else 0.1)

    elem = I64 if int_mode else F64
    if mul_mode:
        plus_op, minus_op = "fmul", "fdiv"
    elif int_mode:
        plus_op, minus_op = "add", "sub"
    else:
        plus_op, minus_op = "fadd", "fsub"

    module = Module(f"fuzz_{shape.replace('-', '_')}_s{spec.seed}")
    module.add_global("OUT", elem, _BUFFER_LEN)
    signs = _signed_multiset(spec.terms, rng)
    arrays: List[str] = []
    if overlap:
        module.add_global("IN0", elem, _BUFFER_LEN)
        arrays = ["IN0"] * spec.terms
    else:
        for j, minus in enumerate(signs):
            # divisors load from DEN* buffers so inputs keep them nonzero
            name = f"{_NONZERO_PREFIX}{j}" if (mul_mode and minus) else f"IN{j}"
            module.add_global(name, elem, _BUFFER_LEN)
            arrays.append(name)

    #: term indexes every lane reads at offset 0 (cross-lane reuse)
    shared_terms = {
        j for j in range(spec.terms) if rng.random() < shared_prob
    }
    #: term indexes replaced by literal constants (never divisors)
    const_terms = {
        j
        for j in range(spec.terms)
        if j not in shared_terms
        and not (mul_mode and signs[j])
        and rng.random() < const_prob
    }

    def body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
        shared_loads: Dict[int, Value] = {}
        for j in sorted(shared_terms):
            shared_loads[j] = env.load(arrays[j], i, 0)
        for lane in range(spec.lanes):
            leaves: List[Tuple[bool, Value]] = []
            for j in range(spec.terms):
                if j in const_terms:
                    payload = rng.randint(1, 7) if int_mode else round(
                        rng.uniform(0.5, 3.5), 3
                    )
                    leaves.append((signs[j], Constant(elem, payload)))
                elif j in shared_loads:
                    leaves.append((signs[j], shared_loads[j]))
                else:
                    offset = lane + j if overlap else lane
                    leaves.append((signs[j], env.load(arrays[j], i, offset)))
            rng.shuffle(leaves)
            expr = _fold_signed_chain(b, leaves, plus_op, minus_op, rng)
            env.store(expr, "OUT", i, lane)

    make_straightline_kernel(module, "kernel", body, fast_math=True)
    return module


def _emit_mixed_program(spec: FuzzSpec, rng: random.Random) -> Module:
    """Signed sums whose leaves are products: ``±A*B ±C*D ...`` per lane.

    The additive chain is the Super-Node; the products underneath are the
    multiplicative sub-expressions the look-ahead scorer has to rank.
    """
    module = Module(f"fuzz_mixed_s{spec.seed}")
    module.add_global("OUT", F64, _BUFFER_LEN)
    signs = _signed_multiset(spec.terms, rng)
    for j in range(spec.terms):
        module.add_global(f"IN{j}", F64, _BUFFER_LEN)
        module.add_global(f"W{j}", F64, _BUFFER_LEN)

    def body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
        for lane in range(spec.lanes):
            leaves: List[Tuple[bool, Value]] = []
            for j in range(spec.terms):
                product = b.fmul(
                    env.load(f"IN{j}", i, lane), env.load(f"W{j}", i, lane)
                )
                leaves.append((signs[j], product))
            rng.shuffle(leaves)
            expr = _fold_signed_chain(b, leaves, "fadd", "fsub", rng)
            env.store(expr, "OUT", i, lane)

    make_straightline_kernel(module, "kernel", body, fast_math=True)
    return module


def _emit_reduction_program(spec: FuzzSpec, rng: random.Random) -> Module:
    """A single horizontal signed reduction: ``OUT[i] = ±t0 ±t1 ...``."""
    module = Module(f"fuzz_reduction_s{spec.seed}")
    module.add_global("OUT", F64, _BUFFER_LEN)
    module.add_global("IN0", F64, _BUFFER_LEN)
    module.add_global("W0", F64, _BUFFER_LEN)
    signs = _signed_multiset(spec.terms, rng)
    with_products = rng.random() < 0.5

    def body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
        leaves: List[Tuple[bool, Value]] = []
        for j in range(spec.terms):
            value = env.load("IN0", i, j)
            if with_products:
                value = b.fmul(value, env.load("W0", i, j))
            leaves.append((signs[j], value))
        expr = _fold_signed_chain(b, leaves, "fadd", "fsub", rng, group_prob=0.0)
        env.store(expr, "OUT", i, 0)

    make_straightline_kernel(module, "kernel", body, fast_math=True)
    return module


def _emit_minmax_program(spec: FuzzSpec, rng: random.Random) -> Module:
    """Per-lane ``fmin``/``fmax`` call chains over adjacent loads."""
    module = Module(f"fuzz_minmax_s{spec.seed}")
    module.add_global("OUT", F64, _BUFFER_LEN)
    for j in range(spec.terms):
        module.add_global(f"IN{j}", F64, _BUFFER_LEN)
    callee = rng.choice(("fmin", "fmax"))

    def body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
        for lane in range(spec.lanes):
            order = list(range(spec.terms))
            rng.shuffle(order)
            expr = env.load(f"IN{order[0]}", i, lane)
            for j in order[1:]:
                expr = b.call(callee, [expr, env.load(f"IN{j}", i, lane)])
            env.store(expr, "OUT", i, lane)

    make_straightline_kernel(module, "kernel", body, fast_math=True)
    return module


_EMITTERS = {
    "addsub": _emit_chain_program,
    "muldiv": _emit_chain_program,
    "int-addsub": _emit_chain_program,
    "overlap": _emit_chain_program,
    "shared": _emit_chain_program,
    "constants": _emit_chain_program,
    "mixed": _emit_mixed_program,
    "reduction": _emit_reduction_program,
    "minmax": _emit_minmax_program,
}


def generate_program(spec: FuzzSpec) -> FuzzProgram:
    """Build the (verified) program for ``spec``."""
    rng = spec.rng("genprog")
    module = _EMITTERS[spec.shape](spec, rng)
    finish_module(module)
    return FuzzProgram(spec=spec, module=module)
