"""Delta-debugging reducer: shrink a failing module to a minimal reproducer.

Given a module and a *predicate* ("the oracle still fails on this module
the same way"), the reducer repeatedly proposes smaller candidate
modules and keeps any candidate the predicate accepts.  Each candidate is
built on a fresh structural clone (the printer/parser round-trip), edited
by coordinates, cleaned up (simplify + DCE) and *verified* — the IR
verifier's use-before-def and lane-bounds checks are what reject shrink
candidates that cut a value out from under its users.

Shrinking edit kinds, tried in decreasing expected payoff:

* ``drop-store``   — delete a store (its now-dead chain is swept by DCE);
  this is also how lane counts narrow, one store at a time;
* ``use-operand``  — replace a binary/call result with one of its
  operands (chain shortening);
* ``const-leaf``   — replace a load with a small literal constant;
* ``zero-arg``     — replace a function argument with ``0`` (collapses
  index arithmetic once simplify folds it);
* ``gep-base``     — address a load/store directly through the global
  buffer instead of a ``gep``.

Delta debugging does not need candidates to be *semantics-preserving* —
only predicate-preserving; both the reference interpretation and the
compiled runs see the same edited module, so the oracle stays meaningful
on every candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..ir.dce import eliminate_dead_code_in_module
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    GepInst,
    LoadInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.printer import print_module
from ..ir.types import FloatType, IntType
from ..ir.values import Constant
from ..ir.verifier import verify_module
from ..passes import simplify_module
from ..vectorizer import clone_module

#: predicate(module) -> True when the module still reproduces the failure
Predicate = Callable[[Module], bool]

#: an edit is (kind, function name, block index, instruction index, arg)
Edit = Tuple[str, str, int, int, int]


def count_instructions(module: Module) -> int:
    """Total instruction count across all functions (the reproducer-size
    metric the campaign reports)."""
    return sum(
        len(block.instructions)
        for function in module.functions.values()
        for block in function.blocks
    )


@dataclass
class ReductionResult:
    """Outcome of one reduction run."""

    module: Module
    instructions_before: int
    instructions_after: int
    edits_applied: int
    candidates_tried: int


def _candidate_edits(module: Module) -> Iterator[Edit]:
    """Every applicable edit on ``module``, best-payoff kinds first."""
    kinds: List[List[Edit]] = [[], [], [], [], []]
    for function in module.functions.values():
        for bi, block in enumerate(function.blocks):
            for ii, inst in enumerate(block.instructions):
                if isinstance(inst, StoreInst):
                    kinds[0].append(("drop-store", function.name, bi, ii, 0))
                elif isinstance(inst, (BinaryInst, CallInst)):
                    for op_index, op in enumerate(inst.operands):
                        if op.type is inst.type:
                            kinds[1].append(
                                ("use-operand", function.name, bi, ii, op_index)
                            )
                elif isinstance(inst, LoadInst) and isinstance(
                    inst.type, (FloatType, IntType)
                ):
                    kinds[2].append(("const-leaf", function.name, bi, ii, 0))
                elif isinstance(inst, GepInst):
                    kinds[4].append(("gep-base", function.name, bi, ii, 0))
        for arg_index, arg in enumerate(function.arguments):
            if arg.num_uses:
                kinds[3].append(("zero-arg", function.name, 0, 0, arg_index))
    for bucket in kinds:
        yield from bucket


def _apply_edit(module: Module, edit: Edit) -> bool:
    """Apply ``edit`` to ``module`` in place; False when inapplicable."""
    kind, fn_name, bi, ii, arg = edit
    function = module.functions.get(fn_name)
    if function is None:
        return False
    if kind == "zero-arg":
        if arg >= len(function.arguments):
            return False
        formal = function.arguments[arg]
        if not isinstance(formal.type, IntType) or not formal.num_uses:
            return False
        formal.replace_all_uses_with(Constant(formal.type, 0))
        return True
    if bi >= len(function.blocks):
        return False
    block = function.blocks[bi]
    if ii >= len(block.instructions):
        return False
    inst = block.instructions[ii]
    if kind == "drop-store":
        if not isinstance(inst, StoreInst):
            return False
        inst.erase_from_parent()
        return True
    if kind == "use-operand":
        if not isinstance(inst, (BinaryInst, CallInst)):
            return False
        if arg >= inst.num_operands:
            return False
        replacement = inst.operand(arg)
        if replacement.type is not inst.type:
            return False
        inst.replace_all_uses_with(replacement)
        inst.erase_from_parent()
        return True
    if kind == "const-leaf":
        if not isinstance(inst, LoadInst):
            return False
        if isinstance(inst.type, FloatType):
            replacement = Constant(inst.type, 1.5)
        elif isinstance(inst.type, IntType):
            replacement = Constant(inst.type, 2)
        else:
            return False
        inst.replace_all_uses_with(replacement)
        inst.erase_from_parent()
        return True
    if kind == "gep-base":
        if not isinstance(inst, GepInst):
            return False
        if inst.base.type is not inst.type:
            return False
        inst.replace_all_uses_with(inst.base)
        inst.erase_from_parent()
        return True
    return False


def _cleanup(module: Module) -> bool:
    """Simplify, sweep dead code and verify; False when the candidate is
    malformed (the verifier rejected it)."""
    try:
        simplify_module(module)
        eliminate_dead_code_in_module(module)
        verify_module(module)
    except Exception:  # noqa: BLE001 - any malformation rejects the candidate
        return False
    return True


def _drop_unused_globals(module: Module) -> None:
    for name in [n for n, buf in module.globals.items() if not buf.num_uses]:
        del module.globals[name]


def reduce_module(
    module: Module,
    predicate: Predicate,
    max_rounds: int = 50,
) -> ReductionResult:
    """Greedily shrink ``module`` while ``predicate`` keeps holding.

    One round enumerates every edit on the current module and restarts
    after the first accepted candidate; the loop ends at a fixpoint (a
    full round with no accepted edit) or after ``max_rounds``.
    """
    current = clone_module(module)
    before = count_instructions(current)
    applied = 0
    tried = 0
    for _ in range(max_rounds):
        accepted = False
        for edit in list(_candidate_edits(current)):
            candidate = clone_module(current)
            if not _apply_edit(candidate, edit):
                continue
            if not _cleanup(candidate):
                continue
            if count_instructions(candidate) >= count_instructions(current):
                continue
            tried += 1
            if predicate(candidate):
                current = candidate
                applied += 1
                accepted = True
                break
        if not accepted:
            break
    _drop_unused_globals(current)
    return ReductionResult(
        module=current,
        instructions_before=before,
        instructions_after=count_instructions(current),
        edits_applied=applied,
        candidates_tried=tried,
    )


def write_reproducer(module: Module, path: str) -> None:
    """Write ``module`` as a textual ``.ir`` reproducer file."""
    with open(path, "w") as handle:
        handle.write(print_module(module))
