"""Budgeted fuzzing campaigns and reproducer replay.

A campaign is a deterministic loop: program seeds derive from the
campaign seed and the program index, so ``--budget 200 --seed 0`` visits
the exact same 200 programs (and produces identical bucket statistics)
on every run.  Time budgets (``30s``, ``2m``) trade that determinism for
wall-clock control — bucket *rates* stay stable, totals depend on the
machine.

Bucket statistics live in a campaign-private
:class:`~repro.observe.stats.StatsRegistry` rather than the process-wide
``STATS``: ``compile_module`` resets the global registry on every
compilation, which would wipe campaign counters mid-flight.

Failures become artifact directories::

    <out>/failure-0000/
        original.ir     the generated program that failed
        reduced.ir      the delta-debugged minimal reproducer
        report.json     oracle outcomes for original and reduced modules
        remarks.jsonl   optimization remarks for the failing config

Replay a saved reproducer with ``repro fuzz --replay failure-0000/reduced.ir``.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.verifier import verify_module
from ..kernels.seeding import derive_seed
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe import REMARKS, StatsRegistry
from ..vectorizer import ALL_CONFIGS, SLPConfig, compile_module
from .genprog import FuzzProgram, generate_program, random_spec
from .oracle import (
    DEFAULT_MAX_ULPS,
    OracleReport,
    failure_signature,
    run_oracle,
)
from .reduce import ReductionResult, count_instructions, reduce_module, write_reproducer

#: campaign-private counter registry (see module docstring)
FUZZ_STATS = StatsRegistry()

_PROGRAMS = FUZZ_STATS.stat("fuzz.programs-generated", "programs generated")
_VECTORIZED = FUZZ_STATS.stat(
    "fuzz.programs-vectorized", "programs vectorized by at least one config"
)
_OK = FUZZ_STATS.stat("fuzz.programs-ok", "programs with all configs equivalent")
_MISMATCHES = FUZZ_STATS.stat("fuzz.mismatches", "scalar/vector output mismatches")
_TRAPS = FUZZ_STATS.stat("fuzz.traps", "programs whose reference run trapped")
_VERIFIER = FUZZ_STATS.stat(
    "fuzz.verifier-failures", "post-vectorization IR verifier failures"
)
_GAPS = FUZZ_STATS.stat("fuzz.interp-gaps", "interpreter gaps (unsupported opcodes)")
_CRASHES = FUZZ_STATS.stat("fuzz.crashes", "compiler crashes")


def parse_budget(text: str) -> Tuple[str, float]:
    """Parse a budget: a bare integer is a program count, a number with
    an ``s``/``m``/``h`` suffix is a wall-clock duration."""
    match = re.fullmatch(r"\s*(\d+)\s*([smh]?)\s*", str(text))
    if not match:
        raise ValueError(
            f"bad budget {text!r}: expected e.g. '200' (programs) or '30s'"
        )
    amount, unit = int(match.group(1)), match.group(2)
    if not unit:
        return ("count", float(amount))
    scale = {"s": 1.0, "m": 60.0, "h": 3600.0}[unit]
    return ("time", amount * scale)


@dataclass
class FailureArtifact:
    """One failing program and (when reduction ran) its reproducer."""

    index: int
    report: OracleReport
    directory: Optional[str] = None
    reduction: Optional[ReductionResult] = None


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    programs: int
    elapsed_seconds: float
    stats: Dict[str, float]
    failures: List[FailureArtifact] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: {self.programs} program(s) in "
            f"{self.elapsed_seconds:.1f}s, {len(self.failures)} failure(s)"
        ]
        for name, value in sorted(self.stats.items()):
            lines.append(f"  {name:28s} {value:g}")
        for failure in self.failures:
            where = failure.directory or "(not saved)"
            sig = ", ".join(
                f"{cfg}:{status}"
                for cfg, status in failure_signature(failure.report)
            )
            lines.append(f"  failure #{failure.index}: {sig} -> {where}")
        return "\n".join(lines)


def _bucket(report: OracleReport) -> None:
    """Bump the campaign counters for one oracle report."""
    _PROGRAMS.add()
    if report.reference_trapped:
        _TRAPS.add()
        return
    if report.vectorized:
        _VECTORIZED.add()
    if report.ok:
        _OK.add()
        return
    statuses = {outcome.status for outcome in report.outcomes}
    if "mismatch" in statuses:
        _MISMATCHES.add()
    if "verifier" in statuses:
        _VERIFIER.add()
    if "interp-gap" in statuses:
        _GAPS.add()
    if "crash" in statuses:
        _CRASHES.add()


def _reduction_predicate(
    signature: Sequence[Tuple[str, str]],
    kernel: str,
    args: Tuple[int, ...],
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    input_seed: int,
    max_ulps: int,
) -> Callable[[Module], bool]:
    """Build the reducer predicate: the candidate must reproduce at least
    one of the original (config, status) failure pairs."""
    wanted = set(signature)

    def predicate(module: Module) -> bool:
        program = FuzzProgram(spec=None, module=module, kernel=kernel, args=args)
        report = run_oracle(
            program,
            input_seed=input_seed,
            configs=configs,
            target=target,
            max_ulps=max_ulps,
        )
        return bool(wanted & set(failure_signature(report)))

    return predicate


def _write_failure_remarks(
    module: Module,
    config_name: str,
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    path: str,
) -> None:
    """Compile the reproducer under its failing config with the remark
    collector armed, dumping PR 1's observability JSONL next to it."""
    config = next((c for c in configs if c.name == config_name), None)
    if config is None:
        return
    was_enabled = REMARKS.enabled
    REMARKS.clear()
    REMARKS.enable()
    try:
        compile_module(module, config, target)
    except Exception:  # noqa: BLE001 - remarks of a crash are still useful
        pass
    finally:
        REMARKS.write_jsonl(path)
        REMARKS.clear()
        if not was_enabled:
            REMARKS.disable()


def _save_failure(
    artifact: FailureArtifact,
    out_dir: str,
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    input_seed: int,
    max_ulps: int,
    reduce_failures: bool,
) -> None:
    directory = os.path.join(out_dir, f"failure-{artifact.index:04d}")
    os.makedirs(directory, exist_ok=True)
    artifact.directory = directory
    program = artifact.report.program
    write_reproducer(program.module, os.path.join(directory, "original.ir"))

    signature = failure_signature(artifact.report)
    document: Dict[str, object] = {"original": artifact.report.to_json()}
    reproducer = program.module
    if reduce_failures and signature:
        predicate = _reduction_predicate(
            signature,
            program.kernel,
            program.args,
            configs,
            target,
            input_seed,
            max_ulps,
        )
        artifact.reduction = reduce_module(program.module, predicate)
        reproducer = artifact.reduction.module
        write_reproducer(reproducer, os.path.join(directory, "reduced.ir"))
        document["reduction"] = {
            "instructions_before": artifact.reduction.instructions_before,
            "instructions_after": artifact.reduction.instructions_after,
            "edits_applied": artifact.reduction.edits_applied,
            "candidates_tried": artifact.reduction.candidates_tried,
        }
    if signature:
        _write_failure_remarks(
            reproducer,
            signature[0][0],
            configs,
            target,
            os.path.join(directory, "remarks.jsonl"),
        )
    with open(os.path.join(directory, "report.json"), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def run_campaign(
    budget: str = "30s",
    seed: int = 0,
    out_dir: Optional[str] = None,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    input_seed: int = 1,
    max_ulps: int = DEFAULT_MAX_ULPS,
    reduce_failures: bool = True,
    max_failures: int = 25,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run one fuzzing campaign within ``budget``.

    The campaign stops early once ``max_failures`` distinct failing
    programs have been collected (reduction dominates runtime by then).
    """
    kind, amount = parse_budget(budget)
    FUZZ_STATS.reset()
    failures: List[FailureArtifact] = []
    started = time.perf_counter()
    index = 0
    while True:
        if kind == "count" and index >= amount:
            break
        if kind == "time" and time.perf_counter() - started >= amount:
            break
        if len(failures) >= max_failures:
            break
        spec = random_spec(derive_seed(seed, f"campaign-program/{index}"))
        program = generate_program(spec)
        report = run_oracle(
            program,
            input_seed=input_seed,
            configs=configs,
            target=target,
            max_ulps=max_ulps,
        )
        _bucket(report)
        if not report.ok and not report.reference_trapped:
            artifact = FailureArtifact(index=index, report=report)
            failures.append(artifact)
            if out_dir is not None:
                _save_failure(
                    artifact,
                    out_dir,
                    configs,
                    target,
                    input_seed,
                    max_ulps,
                    reduce_failures,
                )
            if progress is not None:
                progress(
                    f"failure #{index} ({spec.shape}, seed {spec.seed}): "
                    + "; ".join(
                        f"{cfg}:{status}"
                        for cfg, status in failure_signature(report)
                    )
                )
        index += 1
    return CampaignResult(
        programs=index,
        elapsed_seconds=time.perf_counter() - started,
        stats=FUZZ_STATS.snapshot(),
        failures=failures,
    )


def replay_file(
    path: str,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    input_seed: int = 1,
    max_ulps: int = DEFAULT_MAX_ULPS,
) -> OracleReport:
    """Re-run the oracle on a saved ``.ir`` reproducer."""
    with open(path) as handle:
        module = parse_module(handle.read())
    verify_module(module)
    names = list(module.functions)
    if len(names) != 1:
        raise ValueError(
            f"{path}: expected exactly one kernel, found {names}"
        )
    kernel = names[0]
    args = tuple(0 for _ in module.functions[kernel].arguments)
    program = FuzzProgram(spec=None, module=module, kernel=kernel, args=args)
    return run_oracle(
        program,
        input_seed=input_seed,
        configs=configs,
        target=target,
        max_ulps=max_ulps,
    )
