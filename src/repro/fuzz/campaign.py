"""Budgeted fuzzing campaigns and reproducer replay.

A campaign is a deterministic loop: program seeds derive from the
campaign seed and the program index, so ``--budget 200 --seed 0`` visits
the exact same 200 programs (and produces identical bucket statistics)
on every run.  Time budgets (``30s``, ``2m``) trade that determinism for
wall-clock control — bucket *rates* stay stable, totals depend on the
machine.

Bucket statistics accumulate in a campaign-private
:class:`~repro.observe.session.CompilerSession`: each oracle check runs
in its own derived session, so per-compilation counters never mix with
the campaign's ``fuzz.*`` buckets, and ``CampaignResult.stats`` is the
campaign session's snapshot.

``jobs > 1`` shards a *count* budget across worker processes in chunks
of consecutive indices; summaries merge in index order, so the result —
programs visited, bucket statistics, failure set — is bit-identical to
the serial run.  Time budgets stay serial (their stopping point is
wall-clock dependent either way).

Failures become artifact directories::

    <out>/failure-0000/
        original.ir     the generated program that failed
        reduced.ir      the delta-debugged minimal reproducer
        report.json     oracle outcomes for original and reduced modules
        remarks.jsonl   optimization remarks for the failing config

Replay a saved reproducer with ``repro fuzz --replay failure-0000/reduced.ir``.

``repro fuzz --inject`` runs the *injection* campaign instead: every
generated program is compiled through :func:`repro.robust.guard.
guarded_compile` with one deterministic fault armed (cycling through
every (site, mode) combination the registry declares), and the guarded
result must still match the scalar reference.  A fault that produces a
wrong answer **escaped** the guard; one that kills the driver is
**fatal** — either fails the campaign.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..interp import BudgetExceededError, TrapError, resolve_engine
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.types import FloatType
from ..ir.verifier import verify_module
from ..kernels.seeding import derive_seed
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe import STAT
from ..observe.session import CompilerSession, current_session, use_session
from ..robust.faults import COMPILE_SITES, FAULT_SITES, current_faults
from ..sim import simulate
from ..vectorizer import ALL_CONFIGS, SLPConfig, compile_module
from ..vectorizer.slp import SNSLP_CONFIG
from .genprog import FuzzProgram, generate_program, make_inputs, random_spec
from .oracle import (
    DEFAULT_MAX_ULPS,
    OracleReport,
    _interpret_reference,
    failure_signature,
    run_oracle,
    values_close,
)
from .reduce import ReductionResult, count_instructions, reduce_module, write_reproducer

# Campaign bucket counters: lazy proxies that resolve into the running
# campaign's session (see module docstring).
_PROGRAMS = STAT("fuzz.programs-generated", "programs generated")
_VECTORIZED = STAT(
    "fuzz.programs-vectorized", "programs vectorized by at least one config"
)
_OK = STAT("fuzz.programs-ok", "programs with all configs equivalent")
_MISMATCHES = STAT("fuzz.mismatches", "scalar/vector output mismatches")
_TRAPS = STAT("fuzz.traps", "programs whose reference run trapped")
_VERIFIER = STAT(
    "fuzz.verifier-failures", "post-vectorization IR verifier failures"
)
_GAPS = STAT("fuzz.interp-gaps", "interpreter gaps (unsupported opcodes)")
_CRASHES = STAT("fuzz.crashes", "compiler crashes")
_BUDGET_BLOWS = STAT(
    "fuzz.budget-exceeded", "compiled modules that blew the step watchdog"
)
_INJECTIONS = STAT("fuzz.injections", "deterministic faults armed")
_INJ_RECOVERED = STAT(
    "fuzz.injected-recovered", "injected faults the guarded driver recovered from"
)
_INJ_UNREACHED = STAT(
    "fuzz.injected-unreached", "armed faults whose site the compile never reached"
)
_INJ_ESCAPED = STAT(
    "fuzz.injected-escaped", "injected faults that corrupted the guarded output"
)
_INJ_FATAL = STAT(
    "fuzz.injected-fatal", "injected faults that killed the guarded driver"
)


def parse_budget(text: str) -> Tuple[str, float]:
    """Parse a budget: a bare integer is a program count, a number with
    an ``s``/``m``/``h`` suffix is a wall-clock duration."""
    match = re.fullmatch(r"\s*(\d+)\s*([smh]?)\s*", str(text))
    if not match:
        raise ValueError(
            f"bad budget {text!r}: expected e.g. '200' (programs) or '30s'"
        )
    amount, unit = int(match.group(1)), match.group(2)
    if not unit:
        return ("count", float(amount))
    scale = {"s": 1.0, "m": 60.0, "h": 3600.0}[unit]
    return ("time", amount * scale)


@dataclass
class FailureArtifact:
    """One failing program and (when reduction ran) its reproducer."""

    index: int
    report: OracleReport
    directory: Optional[str] = None
    reduction: Optional[ReductionResult] = None


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    programs: int
    elapsed_seconds: float
    stats: Dict[str, float]
    failures: List[FailureArtifact] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: {self.programs} program(s) in "
            f"{self.elapsed_seconds:.1f}s, {len(self.failures)} failure(s)"
        ]
        for name, value in sorted(self.stats.items()):
            lines.append(f"  {name:28s} {value:g}")
        for failure in self.failures:
            where = failure.directory or "(not saved)"
            sig = ", ".join(
                f"{cfg}:{status}"
                for cfg, status in failure_signature(failure.report)
            )
            lines.append(f"  failure #{failure.index}: {sig} -> {where}")
        return "\n".join(lines)


def _bucket(report: OracleReport) -> None:
    """Bump the campaign counters for one oracle report."""
    _PROGRAMS.add()
    if report.reference_trapped:
        _TRAPS.add()
        return
    if report.vectorized:
        _VECTORIZED.add()
    if report.ok:
        _OK.add()
        return
    statuses = {outcome.status for outcome in report.outcomes}
    if "mismatch" in statuses:
        _MISMATCHES.add()
    if "verifier" in statuses:
        _VERIFIER.add()
    if "interp-gap" in statuses:
        _GAPS.add()
    if "crash" in statuses:
        _CRASHES.add()
    if "budget" in statuses:
        _BUDGET_BLOWS.add()


def _reduction_predicate(
    signature: Sequence[Tuple[str, str]],
    kernel: str,
    args: Tuple[int, ...],
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    input_seed: int,
    max_ulps: int,
    engine: Optional[str] = None,
) -> Callable[[Module], bool]:
    """Build the reducer predicate: the candidate must reproduce at least
    one of the original (config, status) failure pairs."""
    wanted = set(signature)

    def predicate(module: Module) -> bool:
        program = FuzzProgram(spec=None, module=module, kernel=kernel, args=args)
        report = run_oracle(
            program,
            input_seed=input_seed,
            configs=configs,
            target=target,
            max_ulps=max_ulps,
            engine=engine,
        )
        return bool(wanted & set(failure_signature(report)))

    return predicate


def _write_failure_remarks(
    module: Module,
    config_name: str,
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    path: str,
) -> None:
    """Compile the reproducer under its failing config with the remark
    collector armed, dumping PR 1's observability JSONL next to it."""
    config = next((c for c in configs if c.name == config_name), None)
    if config is None:
        return
    session = current_session().derive(name="failure-remarks", fresh_remarks=True)
    session.remarks.enable()
    try:
        compile_module(module, config, target, session=session.derive())
    except Exception:  # noqa: BLE001 - remarks of a crash are still useful
        pass
    session.remarks.write_jsonl(path)


def _save_failure(
    artifact: FailureArtifact,
    out_dir: str,
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    input_seed: int,
    max_ulps: int,
    reduce_failures: bool,
    engine: Optional[str] = None,
) -> None:
    directory = os.path.join(out_dir, f"failure-{artifact.index:04d}")
    os.makedirs(directory, exist_ok=True)
    artifact.directory = directory
    program = artifact.report.program
    write_reproducer(program.module, os.path.join(directory, "original.ir"))

    signature = failure_signature(artifact.report)
    document: Dict[str, object] = {"original": artifact.report.to_json()}
    reproducer = program.module
    if reduce_failures and signature:
        predicate = _reduction_predicate(
            signature,
            program.kernel,
            program.args,
            configs,
            target,
            input_seed,
            max_ulps,
            engine,
        )
        artifact.reduction = reduce_module(program.module, predicate)
        reproducer = artifact.reduction.module
        write_reproducer(reproducer, os.path.join(directory, "reduced.ir"))
        document["reduction"] = {
            "instructions_before": artifact.reduction.instructions_before,
            "instructions_after": artifact.reduction.instructions_after,
            "edits_applied": artifact.reduction.edits_applied,
            "candidates_tried": artifact.reduction.candidates_tried,
        }
    if signature:
        _write_failure_remarks(
            reproducer,
            signature[0][0],
            configs,
            target,
            os.path.join(directory, "remarks.jsonl"),
        )
    with open(os.path.join(directory, "report.json"), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


#: how many consecutive program indices one parallel worker task covers
CHUNK_SIZE = 8


def _campaign_chunk_worker(
    payload: Tuple[Tuple[int, ...], int, Tuple[str, ...], str, int, int, str],
) -> List[Tuple[int, Dict[str, float], bool]]:
    """Run one chunk of campaign indices in a worker process.

    Returns compact per-index summaries ``(index, bucket_counters,
    failed)``; the parent merges counters in index order and re-runs
    failing indices serially to build artifacts, so workers never touch
    the filesystem and everything crossing the process boundary is plain
    data.
    """
    from ..machine.targets import target_named
    from ..vectorizer.slp import config_named

    (
        indices, seed, config_names, target_name, input_seed, max_ulps, engine,
    ) = payload
    configs = [config_named(name) for name in config_names]
    target = target_named(target_name)
    summaries: List[Tuple[int, Dict[str, float], bool]] = []
    for index in indices:
        session = CompilerSession(name=f"fuzz-worker/{index}")
        with use_session(session):
            spec = random_spec(derive_seed(seed, f"campaign-program/{index}"))
            program = generate_program(spec)
            report = run_oracle(
                program,
                input_seed=input_seed,
                configs=configs,
                target=target,
                max_ulps=max_ulps,
                engine=engine,
            )
            _bucket(report)
        failed = not report.ok and not report.reference_trapped
        summaries.append((index, session.stats.snapshot(), failed))
    return summaries


def _rerun_index(
    index: int,
    seed: int,
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    input_seed: int,
    max_ulps: int,
    engine: Optional[str] = None,
) -> Tuple[OracleReport, object]:
    """Regenerate program ``index`` and re-run the oracle (deterministic:
    identical to what the worker saw).  Does NOT bucket — the worker
    already counted this program."""
    spec = random_spec(derive_seed(seed, f"campaign-program/{index}"))
    program = generate_program(spec)
    report = run_oracle(
        program,
        input_seed=input_seed,
        configs=configs,
        target=target,
        max_ulps=max_ulps,
        engine=engine,
    )
    return report, spec


def run_campaign(
    budget: str = "30s",
    seed: int = 0,
    out_dir: Optional[str] = None,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    input_seed: int = 1,
    max_ulps: int = DEFAULT_MAX_ULPS,
    reduce_failures: bool = True,
    max_failures: int = 25,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
    session: Optional[CompilerSession] = None,
    service=None,
    resilience=None,
    engine: Optional[str] = None,
) -> CampaignResult:
    """Run one fuzzing campaign within ``budget``.

    The campaign stops early once ``max_failures`` distinct failing
    programs have been collected (reduction dominates runtime by then).

    ``jobs > 1`` (or a running compile ``service=``) parallelizes
    *count* budgets across worker processes; the merged result is
    bit-identical to the serial run (see the module docstring).  Time
    budgets always run serial.

    ``resilience=`` (a :class:`~repro.serve.resilience.ResiliencePolicy`)
    routes service traffic through a
    :class:`~repro.serve.resilience.ResilientExecutor`, so the campaign
    completes with identical results even when the service fails mid-run
    (chunks retry, then degrade to local execution).

    ``engine`` picks the execution engine for every oracle check
    (``scalar`` | ``batched``; ``None`` = process default).  Verdicts,
    bucket statistics and failure sets are engine-independent.
    """
    kind, amount = parse_budget(budget)
    campaign = session if session is not None else current_session().derive(
        name="fuzz-campaign"
    )
    parallel = (jobs is not None and jobs > 1) or service is not None
    if parallel and kind == "count":
        return _run_campaign_parallel(
            campaign,
            int(amount),
            seed,
            out_dir,
            configs,
            target,
            input_seed,
            max_ulps,
            reduce_failures,
            max_failures,
            progress,
            jobs if jobs is not None else 2,
            service=service,
            resilience=resilience,
            engine=engine,
        )
    failures: List[FailureArtifact] = []
    started = time.perf_counter()
    index = 0
    with use_session(campaign):
        while True:
            if kind == "count" and index >= amount:
                break
            if kind == "time" and time.perf_counter() - started >= amount:
                break
            if len(failures) >= max_failures:
                break
            with campaign.metrics.timer(
                "fuzz.program.seconds",
                "generate + oracle wall seconds per fuzzed program",
            ):
                spec = random_spec(
                    derive_seed(seed, f"campaign-program/{index}")
                )
                program = generate_program(spec)
                report = run_oracle(
                    program,
                    input_seed=input_seed,
                    configs=configs,
                    target=target,
                    max_ulps=max_ulps,
                    engine=engine,
                )
            _bucket(report)
            if not report.ok and not report.reference_trapped:
                artifact = FailureArtifact(index=index, report=report)
                failures.append(artifact)
                if out_dir is not None:
                    _save_failure(
                        artifact,
                        out_dir,
                        configs,
                        target,
                        input_seed,
                        max_ulps,
                        reduce_failures,
                        engine,
                    )
                if progress is not None:
                    progress(
                        f"failure #{index} ({spec.shape}, seed {spec.seed}): "
                        + "; ".join(
                            f"{cfg}:{status}"
                            for cfg, status in failure_signature(report)
                        )
                    )
            index += 1
    elapsed = time.perf_counter() - started
    _gauge_throughput(campaign, index, elapsed)
    return CampaignResult(
        programs=index,
        elapsed_seconds=elapsed,
        stats=campaign.stats.snapshot(),
        failures=failures,
    )


def _gauge_throughput(
    campaign: CompilerSession, programs: int, elapsed: float
) -> None:
    """Record the campaign's programs/second gauge (metrics-armed only)."""
    if campaign.metrics.enabled and elapsed > 0:
        campaign.metrics.gauge(
            "fuzz.programs_per_sec", programs / elapsed,
            description="fuzzed programs per wall second",
        )


def _run_campaign_parallel(
    campaign: CompilerSession,
    count: int,
    seed: int,
    out_dir: Optional[str],
    configs: Sequence[SLPConfig],
    target: TargetMachine,
    input_seed: int,
    max_ulps: int,
    reduce_failures: bool,
    max_failures: int,
    progress: Optional[Callable[[str], None]],
    jobs: int,
    service=None,
    resilience=None,
    engine: Optional[str] = None,
) -> CampaignResult:
    """Sharded count-budget campaign, merged to match the serial run.

    Chunks of :data:`CHUNK_SIZE` consecutive indices are submitted to
    the compile service (an ephemeral warm pool unless the caller passed
    a running ``service=``); per-index summaries are then replayed *in
    index order* through the same stop conditions the serial loop uses,
    so the visited-program count, bucket statistics and failure set are
    bit-identical regardless of ``jobs`` (indices computed beyond the
    serial stopping point are simply discarded).  Once ``max_failures``
    is reached, not-yet-dispatched chunks are *cancelled* through the
    service instead of computed and thrown away.  Failing indices are
    re-run serially in the parent to build reduction artifacts.
    """
    from ..serve.service import CompileService

    started = time.perf_counter()
    config_names = tuple(config.name for config in configs)
    # resolve once in the parent: workers must not re-read the env default
    engine_name = resolve_engine(engine)
    chunks = [
        tuple(range(base, min(base + CHUNK_SIZE, count)))
        for base in range(0, count, CHUNK_SIZE)
    ]
    owns_service = service is None
    if owns_service:
        service = CompileService(
            workers=jobs, session=campaign, name="fuzz-pool"
        )
        service.start()
    campaign.log.emit(
        "info", "fuzz-dispatch", "sharded fuzz campaign dispatched",
        chunks=len(chunks), programs=count, jobs=jobs,
        resilient=resilience is not None, owns_service=owns_service,
    )
    summaries: List[Tuple[int, Dict[str, float], bool]] = []
    try:
        if resilience is not None:
            from ..serve.resilience import ResilientExecutor

            # Resilient path: every chunk completes (possibly retried or
            # degraded to local execution); the accounting pass below
            # replays the stop conditions, so computing past the serial
            # stopping point costs time but never changes the result.
            tasks = [
                (
                    "fuzz-chunk",
                    (
                        chunk, seed, config_names,
                        target.name, input_seed, max_ulps, engine_name,
                    ),
                    None,
                    float(len(chunk) * len(config_names)),
                )
                for chunk in chunks
            ]
            with ResilientExecutor(
                service, policy=resilience, session=campaign
            ) as executor:
                for chunk_summaries in executor.run_batch(tasks):
                    summaries.extend(chunk_summaries)
        else:
            futures = [
                service.submit(
                    "fuzz-chunk",
                    (
                        chunk, seed, config_names,
                        target.name, input_seed, max_ulps, engine_name,
                    ),
                    weight=float(len(chunk) * len(config_names)),
                )
                for chunk in chunks
            ]
            failure_count = 0
            for future in futures:
                if failure_count >= max_failures:
                    if service.cancel(future):
                        campaign.log.emit(
                            "info", "fuzz-cancel",
                            "chunk cancelled after failure budget",
                            failures=failure_count,
                        )
                    continue
                summaries.extend(future.result())
                # Replay the serial stop condition over what we have so
                # far: once max_failures is reached, later chunks are
                # dead weight.
                failure_count = sum(
                    1 for _, _, failed in summaries if failed
                )
    finally:
        if owns_service:
            service.close()

    # Serial-equivalent accounting pass, strictly in index order.
    failures: List[FailureArtifact] = []
    programs = 0
    for index, counters, failed in summaries:
        if len(failures) >= max_failures:
            break
        for name, value in counters.items():
            campaign.stats.stat(name).add(value)
        programs = index + 1
        if not failed:
            continue
        with use_session(campaign):
            report, spec = _rerun_index(
                index, seed, configs, target, input_seed, max_ulps,
                engine_name,
            )
            artifact = FailureArtifact(index=index, report=report)
            failures.append(artifact)
            if out_dir is not None:
                _save_failure(
                    artifact,
                    out_dir,
                    configs,
                    target,
                    input_seed,
                    max_ulps,
                    reduce_failures,
                    engine_name,
                )
        if progress is not None:
            progress(
                f"failure #{index} ({spec.shape}, seed {spec.seed}): "
                + "; ".join(
                    f"{cfg}:{status}"
                    for cfg, status in failure_signature(report)
                )
            )
    elapsed = time.perf_counter() - started
    _gauge_throughput(campaign, programs, elapsed)
    return CampaignResult(
        programs=programs,
        elapsed_seconds=elapsed,
        stats=campaign.stats.snapshot(),
        failures=failures,
    )


def injection_combos() -> List[Tuple[str, str]]:
    """Every (site, mode) combination reachable from ``compile_module``,
    in registry order — the deterministic cycle the campaign walks."""
    return [
        (name, mode)
        for name in COMPILE_SITES
        for mode in FAULT_SITES[name].modes
    ]


@dataclass
class InjectionOutcome:
    """The verdict for one (program, site, mode) injection."""

    index: int
    site: str
    mode: str
    status: str  # recovered | unreached | escaped | fatal
    detail: str = ""
    recoveries: int = 0
    config_used: str = ""


@dataclass
class InjectionResult:
    """Everything one injection campaign produced."""

    programs: int
    elapsed_seconds: float
    stats: Dict[str, float]
    outcomes: List[InjectionOutcome] = field(default_factory=list)

    @property
    def escapes(self) -> List[InjectionOutcome]:
        return [o for o in self.outcomes if o.status in ("escaped", "fatal")]

    @property
    def ok(self) -> bool:
        return not self.escapes

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        lines = [
            f"injection campaign: {self.programs} program(s) in "
            f"{self.elapsed_seconds:.1f}s, {len(self.escapes)} escape(s)"
        ]
        for status in ("recovered", "unreached", "escaped", "fatal"):
            if status in counts:
                lines.append(f"  {status:10s} {counts[status]}")
        for outcome in self.escapes:
            lines.append(
                f"  escape #{outcome.index}: {outcome.site}:{outcome.mode} "
                f"[{outcome.status}] {outcome.detail}"
            )
        return "\n".join(lines)


def _compare_guarded(
    guarded,
    program: FuzzProgram,
    target: TargetMachine,
    inputs: Dict[str, List],
    reference: Dict[str, List],
    max_ulps: int,
    engine: Optional[str] = None,
) -> Optional[str]:
    """Run the guarded module and diff it against the scalar reference;
    returns a human-readable divergence, or None when equivalent."""
    try:
        result = simulate(
            guarded.result.module,
            program.kernel,
            target,
            program.args,
            inputs=inputs,
            engine=engine,
        )
    except Exception as exc:  # noqa: BLE001 - any run failure is an escape
        return f"guarded module failed to run: {type(exc).__name__}: {exc}"
    for name in program.module.globals:
        is_float = isinstance(program.module.globals[name].element, FloatType)
        got = result.globals_after[name]
        for index, (want, have) in enumerate(zip(reference[name], got)):
            if not values_close(have, want, is_float, max_ulps=max_ulps):
                return f"@{name}[{index}]: reference {want!r} vs guarded {have!r}"
    return None


def _inject_one(
    program: FuzzProgram,
    site: str,
    mode: str,
    target: TargetMachine,
    inputs: Dict[str, List],
    reference: Dict[str, List],
    max_ulps: int,
    phase_budget_seconds: float,
    index: int,
    engine: Optional[str] = None,
) -> InjectionOutcome:
    """Arm one fault, compile through the guarded driver, and classify."""
    from ..robust.guard import guarded_compile

    _INJECTIONS.add()
    faults = current_faults()
    plan = faults.arm(site, mode, once=True)
    guarded = None
    fatal_detail = ""
    try:
        guarded = guarded_compile(
            program.module,
            SNSLP_CONFIG,
            target,
            phase_budget_seconds=phase_budget_seconds,
        )
    except Exception as exc:  # noqa: BLE001 - the guard must never raise
        fatal_detail = f"{type(exc).__name__}: {exc}"
    finally:
        fired = plan.fired
        faults.disarm_all()

    if guarded is None:
        _INJ_FATAL.add()
        return InjectionOutcome(index, site, mode, "fatal", fatal_detail)
    if fired == 0:
        # The compile never visited the site (e.g. nothing was profitable
        # to vectorize); nothing to recover from, nothing to check.
        _INJ_UNREACHED.add()
        return InjectionOutcome(
            index, site, mode, "unreached",
            recoveries=len(guarded.recoveries),
            config_used=guarded.config_used,
        )
    divergence = _compare_guarded(
        guarded, program, target, inputs, reference, max_ulps, engine
    )
    if divergence is None and not guarded.recoveries:
        # Output is fine but the guard never noticed the fault firing —
        # a detection gap (e.g. a stall that slipped under the budget).
        divergence = "fault fired but no recovery was recorded"
    if divergence is not None:
        _INJ_ESCAPED.add()
        return InjectionOutcome(
            index, site, mode, "escaped", divergence,
            recoveries=len(guarded.recoveries),
            config_used=guarded.config_used,
        )
    _INJ_RECOVERED.add()
    return InjectionOutcome(
        index, site, mode, "recovered",
        recoveries=len(guarded.recoveries),
        config_used=guarded.config_used,
    )


def run_injection_campaign(
    budget: str = "15s",
    seed: int = 0,
    target: TargetMachine = DEFAULT_TARGET,
    input_seed: int = 1,
    max_ulps: int = DEFAULT_MAX_ULPS,
    phase_budget_seconds: float = 0.2,
    progress: Optional[Callable[[str], None]] = None,
    session: Optional[CompilerSession] = None,
    engine: Optional[str] = None,
) -> InjectionResult:
    """Fault-injection campaign: prove the guarded driver absorbs every
    registered compile-time fault without corrupting results.

    Program ``index`` arms combination ``index % len(combos)``, so a
    count budget of ``len(injection_combos())`` (currently 8) covers
    every (site, mode) pair exactly once per cycle.  Always serial:
    arming a fault mutates the session's injector, which parallel shards
    would race on.
    """
    kind, amount = parse_budget(budget)
    campaign = session if session is not None else current_session().derive(
        name="inject-campaign"
    )
    combos = injection_combos()
    outcomes: List[InjectionOutcome] = []
    started = time.perf_counter()
    index = 0
    with use_session(campaign):
        while True:
            if kind == "count" and index >= amount:
                break
            if kind == "time" and time.perf_counter() - started >= amount:
                break
            spec = random_spec(derive_seed(seed, f"inject-program/{index}"))
            program = generate_program(spec)
            site, mode = combos[index % len(combos)]
            index += 1
            _PROGRAMS.add()
            inputs = make_inputs(program.module, input_seed)
            current_faults().disarm_all()  # the reference must run clean
            try:
                reference = _interpret_reference(
                    program.module, program.kernel, program.args, inputs,
                    engine,
                )
            except (TrapError, BudgetExceededError):
                _TRAPS.add()
                continue
            with campaign.metrics.timer(
                "fuzz.injection.seconds",
                "guarded compile + diff wall seconds per injection",
            ):
                outcome = _inject_one(
                    program,
                    site,
                    mode,
                    target,
                    inputs,
                    reference,
                    max_ulps,
                    phase_budget_seconds,
                    index - 1,
                    engine,
                )
            outcomes.append(outcome)
            if progress is not None and outcome.status in ("escaped", "fatal"):
                progress(
                    f"escape #{outcome.index} ({site}:{mode}): {outcome.detail}"
                )
    return InjectionResult(
        programs=index,
        elapsed_seconds=time.perf_counter() - started,
        stats=campaign.stats.snapshot(),
        outcomes=outcomes,
    )


def replay_file(
    path: str,
    configs: Sequence[SLPConfig] = ALL_CONFIGS,
    target: TargetMachine = DEFAULT_TARGET,
    input_seed: int = 1,
    max_ulps: int = DEFAULT_MAX_ULPS,
    engine: Optional[str] = None,
) -> OracleReport:
    """Re-run the oracle on a saved ``.ir`` reproducer."""
    with open(path) as handle:
        module = parse_module(handle.read())
    verify_module(module)
    names = list(module.functions)
    if len(names) != 1:
        raise ValueError(
            f"{path}: expected exactly one kernel, found {names}"
        )
    kernel = names[0]
    args = tuple(0 for _ in module.functions[kernel].arguments)
    program = FuzzProgram(spec=None, module=module, kernel=kernel, args=args)
    return run_oracle(
        program,
        input_seed=input_seed,
        configs=configs,
        target=target,
        max_ulps=max_ulps,
        engine=engine,
    )
