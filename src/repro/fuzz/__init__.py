"""Differential-testing and fuzzing subsystem.

The correctness layer over the whole stack: :mod:`genprog` generates
adversarial inverse-operator programs, :mod:`oracle` checks that every
vectorizer configuration preserves the scalar semantics, :mod:`reduce`
shrinks failures to minimal reproducers, and :mod:`campaign` runs
budgeted campaigns behind the ``repro fuzz`` CLI command.
"""

from .genprog import (
    FUZZ_SHAPES,
    FuzzProgram,
    FuzzSpec,
    generate_program,
    is_nonzero_global,
    make_inputs,
    random_spec,
)
from .oracle import (
    ConfigOutcome,
    OracleReport,
    failure_signature,
    run_oracle,
    ulp_distance,
    values_close,
)
from .reduce import count_instructions, reduce_module, write_reproducer
from .campaign import (
    CampaignResult,
    FailureArtifact,
    InjectionOutcome,
    InjectionResult,
    injection_combos,
    parse_budget,
    replay_file,
    run_campaign,
    run_injection_campaign,
)

__all__ = [
    "FUZZ_SHAPES",
    "FuzzProgram",
    "FuzzSpec",
    "generate_program",
    "is_nonzero_global",
    "make_inputs",
    "random_spec",
    "ConfigOutcome",
    "OracleReport",
    "failure_signature",
    "run_oracle",
    "ulp_distance",
    "values_close",
    "count_instructions",
    "reduce_module",
    "write_reproducer",
    "CampaignResult",
    "FailureArtifact",
    "InjectionOutcome",
    "InjectionResult",
    "injection_combos",
    "parse_budget",
    "replay_file",
    "run_campaign",
    "run_injection_campaign",
]
