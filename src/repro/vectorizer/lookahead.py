"""Look-ahead operand scoring, as introduced by LSLP (Porpodas et al.,
CGO 2018) and reused by Super-Node SLP's ``buildGroup`` (Listing 3).

``score_pair(a, b)`` estimates how profitable it is to place values ``a``
and ``b`` in adjacent lanes of the same vector.  The recursion looks
*through* same-opcode instructions up to ``depth`` levels, which is what
distinguishes look-ahead reordering from plain single-level operand
matching: two adds whose operands are consecutive loads score much higher
than two adds over unrelated values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.analysis import address_of
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    Instruction,
    LoadInst,
    base_opcode,
    is_commutative,
)
from ..ir.values import Constant, Value
from ..observe import STAT

_STAT_PAIR_SCORES = STAT(
    "lookahead.score-evaluations", "Pairwise look-ahead score evaluations"
)
_STAT_GROUP_SCORES = STAT(
    "lookahead.group-scores", "Whole-group look-ahead score evaluations"
)


@dataclass(frozen=True)
class ScoreTable:
    """Tunable score constants (defaults mirror LLVM's LookAheadHeuristics)."""

    consecutive_loads: int = 4
    reversed_loads: int = 2
    splat: int = 3
    constants: int = 2
    same_opcode: int = 2
    same_family: int = 1
    fail: int = 0


DEFAULT_SCORES = ScoreTable()


class LookAheadScorer:
    """Pairwise value scoring with bounded recursive look-ahead."""

    def __init__(self, depth: int = 2, table: ScoreTable = DEFAULT_SCORES) -> None:
        self.depth = depth
        self.table = table

    # -- public API ----------------------------------------------------------

    def score_pair(self, a: Value, b: Value) -> int:
        """Score of placing ``a`` and ``b`` in neighbouring vector lanes."""
        _STAT_PAIR_SCORES.add()
        return self._score(a, b, self.depth)

    def score_group(self, values) -> int:
        """Sum of consecutive pairwise scores across a whole lane group."""
        _STAT_GROUP_SCORES.add()
        values = list(values)
        return sum(
            self.score_pair(left, right)
            for left, right in zip(values, values[1:])
        )

    # -- recursion -------------------------------------------------------------

    def _score(self, a: Value, b: Value, depth: int) -> int:
        table = self.table
        if a is b:
            return table.splat
        if isinstance(a, Constant) and isinstance(b, Constant):
            return table.constants
        if isinstance(a, LoadInst) and isinstance(b, LoadInst):
            return self._score_loads(a, b)
        if isinstance(a, Instruction) and isinstance(b, Instruction):
            return self._score_instructions(a, b, depth)
        return table.fail

    def _score_loads(self, a: LoadInst, b: LoadInst) -> int:
        if a.type is not b.type:
            return self.table.fail
        addr_a = address_of(a)
        addr_b = address_of(b)
        if addr_a is None or addr_b is None:
            return self.table.fail
        distance = addr_a.distance_to(addr_b)
        if distance == 1:
            return self.table.consecutive_loads
        if distance == -1:
            return self.table.reversed_loads
        return self.table.fail

    def _score_instructions(self, a: Instruction, b: Instruction, depth: int) -> int:
        if a.type is not b.type:
            return self.table.fail
        if a.opcode is b.opcode:
            base = self.table.same_opcode
        elif base_opcode(a.opcode) == base_opcode(b.opcode):
            base = self.table.same_family
        else:
            return self.table.fail
        if isinstance(a, CallInst) and isinstance(b, CallInst):
            if a.callee != b.callee:
                return self.table.fail
        if depth <= 0 or not isinstance(a, BinaryInst) or not isinstance(b, BinaryInst):
            return base
        return base + self._best_operand_pairing(a, b, depth - 1)

    def _best_operand_pairing(self, a: BinaryInst, b: BinaryInst, depth: int) -> int:
        """Look ahead into operands; consider the swapped pairing when the
        second instruction is commutative."""
        straight = self._score(a.lhs, b.lhs, depth) + self._score(a.rhs, b.rhs, depth)
        if is_commutative(b.opcode):
            crossed = self._score(a.lhs, b.rhs, depth) + self._score(a.rhs, b.lhs, depth)
            return max(straight, crossed)
        return straight
