"""Vectorization reports: the statistics behind Figures 6, 7, 9 and 10.

The paper quantifies the effectiveness of the Multi-Node vs the Super-Node
by the *aggregate node size* (the summed per-lane depth of all nodes formed
in successfully vectorized code) and the *average node size*.  These
reports accumulate exactly those quantities while the vectorizer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .reorder import SuperNodeRecord


@dataclass
class GraphReport:
    """Summary of one SLP graph (one seed bundle)."""

    function: str
    block: str
    lanes: int
    cost: float
    vectorized: bool
    node_count: int
    gather_count: int
    supernodes: List[SuperNodeRecord] = field(default_factory=list)
    dump: str = ""
    #: "store" for adjacent-store seeded graphs, "reduction" for
    #: horizontal reductions (-slp-vectorize-hor)
    kind: str = "store"
    #: why gather nodes could not vectorize (optimization-remark style);
    #: normalized in ``__post_init__`` to a sorted, deduplicated list so
    #: remark output is deterministic and usable as a golden baseline
    gather_reasons: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # One entry per distinct reason: the histograms below count
        # *graphs affected*, not gather-node multiplicity, and the stable
        # order makes JSONL remark dumps byte-identical across runs.
        self.gather_reasons = sorted(set(self.gather_reasons))


@dataclass
class FunctionReport:
    """All graphs attempted within one function."""

    name: str
    graphs: List[GraphReport] = field(default_factory=list)

    @property
    def vectorized_graphs(self) -> List[GraphReport]:
        return [g for g in self.graphs if g.vectorized]


@dataclass
class VectorizationReport:
    """All functions processed under one configuration."""

    config_name: str
    functions: List[FunctionReport] = field(default_factory=list)

    # -- graph-level aggregates ------------------------------------------------------

    def all_graphs(self) -> List[GraphReport]:
        return [g for f in self.functions for g in f.graphs]

    def vectorized_graphs(self) -> List[GraphReport]:
        return [g for g in self.all_graphs() if g.vectorized]

    # -- Multi-/Super-Node statistics (Figures 6/7/9/10) ----------------------------------

    def formed_nodes(self, vectorized_only: bool = True) -> List[SuperNodeRecord]:
        """All Multi-/Super-Node records, optionally restricted to nodes in
        successfully vectorized graphs (the paper's "across all successfully
        vectorized code")."""
        graphs = self.vectorized_graphs() if vectorized_only else self.all_graphs()
        return [record for graph in graphs for record in graph.supernodes]

    def aggregate_node_size(self, vectorized_only: bool = True) -> int:
        """Figure 6/9: total aggregate node size (summed depth)."""
        return sum(r.size for r in self.formed_nodes(vectorized_only))

    def average_node_size(self, vectorized_only: bool = True) -> float:
        """Figure 7/10: average node size."""
        records = self.formed_nodes(vectorized_only)
        if not records:
            return 0.0
        return sum(r.size for r in records) / len(records)

    def node_count(self, vectorized_only: bool = True) -> int:
        return len(self.formed_nodes(vectorized_only))

    def missed_reasons(self, include_vectorized: bool = False) -> Dict[str, int]:
        """Histogram of gather reasons across non-vectorized graphs — the
        optimization-remark view of what blocked vectorization.  Counts
        are *graphs affected* per reason (``gather_reasons`` is
        deduplicated per graph), which keeps the output deterministic.

        ``include_vectorized=True`` also counts gather reasons from graphs
        that *did* vectorize: those partial gathers did not block the graph
        but still cost shuffles, and were previously silently dropped.
        """
        histogram: Dict[str, int] = {}
        for graph in self.all_graphs():
            if graph.vectorized and not include_vectorized:
                continue
            for reason in graph.gather_reasons:
                histogram[reason] = histogram.get(reason, 0) + 1
        return dict(
            sorted(histogram.items(), key=lambda pair: (-pair[1], pair[0]))
        )

    def partial_gather_reasons(self) -> Dict[str, int]:
        """Histogram of gather reasons inside *vectorized* graphs only
        (graphs affected per reason): bundles that were gathered even
        though the graph was profitable."""
        histogram: Dict[str, int] = {}
        for graph in self.vectorized_graphs():
            for reason in graph.gather_reasons:
                histogram[reason] = histogram.get(reason, 0) + 1
        return dict(
            sorted(histogram.items(), key=lambda pair: (-pair[1], pair[0]))
        )

    def to_remarks(self):
        """Re-derive structured remarks from the recorded graphs.

        Unlike the live :data:`repro.observe.REMARKS` stream (which must be
        enabled before compilation), this works after the fact from the
        report alone: one passed/missed remark per graph plus one analysis
        remark per gather reason.
        """
        from ..observe import Remark

        remarks: List = []
        for graph in self.all_graphs():
            kind = "passed" if graph.vectorized else "missed"
            verb = "vectorized" if graph.vectorized else "not profitable"
            remarks.append(
                Remark(
                    kind=kind,
                    pass_name="slp",
                    message=f"{graph.lanes}-lane {graph.kind} graph {verb}",
                    function=graph.function,
                    block=graph.block,
                    seed=graph.kind,
                    args={"cost": graph.cost, "lanes": graph.lanes},
                )
            )
            for reason in graph.gather_reasons:
                remarks.append(
                    Remark(
                        kind="analysis",
                        pass_name="slp",
                        message=f"gather: {reason}",
                        function=graph.function,
                        block=graph.block,
                        seed=graph.kind,
                        args={"in_vectorized_graph": graph.vectorized},
                    )
                )
        return remarks

    def summary(self) -> str:
        graphs = self.all_graphs()
        vectorized = self.vectorized_graphs()
        lines = [
            f"config: {self.config_name}",
            f"graphs attempted: {len(graphs)}",
            f"graphs vectorized: {len(vectorized)}",
            f"multi/super nodes formed: {self.node_count(vectorized_only=False)}",
            f"aggregate node size (vectorized): {self.aggregate_node_size()}",
            f"average node size (vectorized): {self.average_node_size():.2f}",
        ]
        return "\n".join(lines)
