"""Compilation pipeline: clone a module, vectorize under a configuration.

The benchmark harness compiles *the same kernel* under each configuration;
since the vectorizer mutates IR in place, the pipeline deep-clones the
module first (structurally, via :meth:`repro.ir.module.Module.clone`; the
printer/parser round-trip survives behind ``via_text=True`` as an
integrity check on both components).

Observability: every phase runs inside a tracer span (`repro.observe`),
its wall time lands in ``CompilationResult.phase_seconds``, and counters
accumulate into a per-compilation :class:`~repro.observe.session.
CompilerSession` — each compile gets its own statistic registry, so
concurrent or interleaved compilations never bleed counters into each
other and no global reset is needed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe.session import (
    CompilerSession,
    current_metrics,
    current_session,
    current_tracer,
    use_session,
)
from .report import VectorizationReport
from .slp import SLPConfig, SLPVectorizer

#: phase names in pipeline order (unroll appears only when requested)
PIPELINE_PHASES = ("clone", "simplify", "unroll", "vectorize", "verify")


def clone_module(module: Module, via_text: bool = False) -> Module:
    """Structural deep copy of ``module``.

    The default path is :meth:`Module.clone` — a direct object-graph copy
    with no printing or reparsing on the compile hot path.  ``via_text=
    True`` selects the legacy printer→parser round-trip, kept because it
    doubles as an integrity check of the printer and parser against each
    other (the pipeline test suite exercises it).
    """
    if via_text:
        return parse_module(print_module(module))
    return module.clone()


@dataclass
class CompilationResult:
    """Outcome of compiling one module under one configuration."""

    module: Module
    report: VectorizationReport
    #: wall-clock seconds spent in the vectorizer + cleanup passes
    #: (kept for compatibility; equals the sum of ``phase_seconds``)
    compile_seconds: float
    #: per-phase wall seconds: clone, simplify, [unroll], vectorize, verify
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: non-zero statistic counters accumulated during this compilation
    counters: Dict[str, float] = field(default_factory=dict)


@contextmanager
def _phase(name: str, phases: Dict[str, float]) -> Iterator[None]:
    """Time one pipeline phase (always), trace it and feed its wall time
    into the session phase-time histogram (each when enabled)."""
    with current_tracer().span(f"phase:{name}"):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            phases[name] = phases.get(name, 0.0) + elapsed
            current_metrics().observe(
                f"phase.{name}.seconds", elapsed,
                description=f"wall seconds per '{name}' pipeline phase",
            )


#: a transform phase: mutates the module in place; the vectorize phase
#: returns its VectorizationReport, the others return None
PhaseFn = Callable[[Module], Optional[VectorizationReport]]


def pipeline_phases(
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    unroll_factor: int = 0,
) -> List[Tuple[str, PhaseFn]]:
    """The transform phases after clone, as (name, fn) pairs.

    This is the single definition of the pipeline's shape, shared by
    :func:`compile_module` and the guarded driver
    (:mod:`repro.robust.guard`), which wraps each phase in a
    checkpoint/rollback envelope.
    """
    from ..passes import simplify_module, unroll_module

    def _simplify(m: Module) -> None:
        simplify_module(m)

    def _unroll(m: Module) -> None:
        unroll_module(m, unroll_factor)

    phases: List[Tuple[str, PhaseFn]] = [("simplify", _simplify)]
    if unroll_factor > 1:
        phases.append(("unroll", _unroll))

    def _vectorize(m: Module) -> VectorizationReport:
        return SLPVectorizer(target, config).run_on_module(m)

    phases.append(("vectorize", _vectorize))
    return phases


def compile_module(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    verify: bool = True,
    unroll_factor: int = 0,
    session: Optional[CompilerSession] = None,
) -> CompilationResult:
    """Clone ``module`` and run the configured pipeline over the clone.

    The pipeline is simplify -> [unroll] -> SLP vectorizer -> DCE, run for
    *every* configuration (O3 differs only in the vectorizer being off),
    mirroring how the paper's configurations share the whole -O3 mid-end.
    ``unroll_factor`` > 1 unrolls canonical counted loops first, exposing
    straight-line lanes to SLP for sources written one element per
    iteration.

    Counter isolation: with ``session=None`` the compile runs in an
    ephemeral child of the ambient session (fresh statistic registry,
    shared tracer/remarks/faults), so ``CompilationResult.counters``
    holds exactly this compilation's counters and a crashing compile
    discards its partial counters with the child.  Passing an explicit
    ``session`` makes the compile record into it instead; the snapshot
    then reflects whatever else the caller ran in that session.

    ``compile_seconds`` covers the whole compilation — clone (the
    stand-in for the frontend/parsing work of a real compiler), passes,
    and verification — matching the paper's *wall* compile time protocol
    rather than timing the SLP pass in isolation.  It is derived as the
    sum of the per-phase spans in ``phase_seconds``, which attribute the
    same wall time to clone vs. simplify vs. SLP (Fig 11's protocol).
    """
    own = session if session is not None else current_session().derive(
        name=f"compile:{config.name}"
    )
    phases: Dict[str, float] = {}
    report: Optional[VectorizationReport] = None
    with use_session(own):
        with current_tracer().span(
            "compile", module=module.name, config=config.name
        ):
            with _phase("clone", phases):
                working = clone_module(module)
            for name, fn in pipeline_phases(config, target, unroll_factor):
                with _phase(name, phases):
                    out = fn(working)
                if name == "vectorize":
                    report = out
            if verify:
                with _phase("verify", phases):
                    verify_module(working)
    assert report is not None  # pipeline_phases always yields vectorize
    own.metrics.observe(
        "compile.seconds", sum(phases.values()),
        description="wall seconds per whole compilation",
    )
    return CompilationResult(
        module=working,
        report=report,
        compile_seconds=sum(phases.values()),
        phase_seconds=phases,
        counters=own.stats.snapshot(),
    )
