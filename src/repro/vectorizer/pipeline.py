"""Compilation pipeline: clone a module, vectorize under a configuration.

The benchmark harness compiles *the same kernel* under each configuration;
since the vectorizer mutates IR in place, the pipeline deep-clones the
module first (via the printer/parser round-trip, which is also a constant
integrity check on both components).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from .report import VectorizationReport
from .slp import SLPConfig, SLPVectorizer


def clone_module(module: Module) -> Module:
    """Structural deep copy through the textual round-trip."""
    return parse_module(print_module(module))


@dataclass
class CompilationResult:
    """Outcome of compiling one module under one configuration."""

    module: Module
    report: VectorizationReport
    #: wall-clock seconds spent in the vectorizer + cleanup passes
    compile_seconds: float


def compile_module(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    verify: bool = True,
    unroll_factor: int = 0,
) -> CompilationResult:
    """Clone ``module`` and run the configured pipeline over the clone.

    The pipeline is simplify -> [unroll] -> SLP vectorizer -> DCE, run for
    *every* configuration (O3 differs only in the vectorizer being off),
    mirroring how the paper's configurations share the whole -O3 mid-end.
    ``unroll_factor`` > 1 unrolls canonical counted loops first, exposing
    straight-line lanes to SLP for sources written one element per
    iteration.

    ``compile_seconds`` covers the whole compilation — clone (the
    stand-in for the frontend/parsing work of a real compiler), passes,
    and verification — matching the paper's *wall* compile time protocol
    rather than timing the SLP pass in isolation.
    """
    from ..passes import simplify_module, unroll_module

    start = time.perf_counter()
    working = clone_module(module)
    simplify_module(working)
    if unroll_factor > 1:
        unroll_module(working, unroll_factor)
    vectorizer = SLPVectorizer(target, config)
    report = vectorizer.run_on_module(working)
    if verify:
        verify_module(working)
    elapsed = time.perf_counter() - start
    return CompilationResult(
        module=working, report=report, compile_seconds=elapsed
    )
