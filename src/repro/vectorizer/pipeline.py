"""Compilation pipeline: clone a module, vectorize under a configuration.

The benchmark harness compiles *the same kernel* under each configuration;
since the vectorizer mutates IR in place, the pipeline deep-clones the
module first (via the printer/parser round-trip, which is also a constant
integrity check on both components).

Observability: every phase runs inside a tracer span (`repro.observe`),
its wall time lands in ``CompilationResult.phase_seconds``, and the
statistic counter registry is reset on entry / snapshotted on exit so each
compilation's counters are isolated from the previous one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe import STATS, TRACER
from .report import VectorizationReport
from .slp import SLPConfig, SLPVectorizer

#: phase names in pipeline order (unroll appears only when requested)
PIPELINE_PHASES = ("clone", "simplify", "unroll", "vectorize", "verify")


def clone_module(module: Module) -> Module:
    """Structural deep copy through the textual round-trip."""
    return parse_module(print_module(module))


@dataclass
class CompilationResult:
    """Outcome of compiling one module under one configuration."""

    module: Module
    report: VectorizationReport
    #: wall-clock seconds spent in the vectorizer + cleanup passes
    #: (kept for compatibility; equals the sum of ``phase_seconds``)
    compile_seconds: float
    #: per-phase wall seconds: clone, simplify, [unroll], vectorize, verify
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: non-zero statistic counters accumulated during this compilation
    counters: Dict[str, float] = field(default_factory=dict)


@contextmanager
def _phase(name: str, phases: Dict[str, float]) -> Iterator[None]:
    """Time one pipeline phase (always) and trace it (when enabled)."""
    with TRACER.span(f"phase:{name}"):
        start = time.perf_counter()
        try:
            yield
        finally:
            phases[name] = phases.get(name, 0.0) + time.perf_counter() - start


#: a transform phase: mutates the module in place; the vectorize phase
#: returns its VectorizationReport, the others return None
PhaseFn = Callable[[Module], Optional[VectorizationReport]]


def pipeline_phases(
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    unroll_factor: int = 0,
) -> List[Tuple[str, PhaseFn]]:
    """The transform phases after clone, as (name, fn) pairs.

    This is the single definition of the pipeline's shape, shared by
    :func:`compile_module` and the guarded driver
    (:mod:`repro.robust.guard`), which wraps each phase in a
    checkpoint/rollback envelope.
    """
    from ..passes import simplify_module, unroll_module

    def _simplify(m: Module) -> None:
        simplify_module(m)

    def _unroll(m: Module) -> None:
        unroll_module(m, unroll_factor)

    phases: List[Tuple[str, PhaseFn]] = [("simplify", _simplify)]
    if unroll_factor > 1:
        phases.append(("unroll", _unroll))

    def _vectorize(m: Module) -> VectorizationReport:
        return SLPVectorizer(target, config).run_on_module(m)

    phases.append(("vectorize", _vectorize))
    return phases


def compile_module(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    verify: bool = True,
    unroll_factor: int = 0,
) -> CompilationResult:
    """Clone ``module`` and run the configured pipeline over the clone.

    The pipeline is simplify -> [unroll] -> SLP vectorizer -> DCE, run for
    *every* configuration (O3 differs only in the vectorizer being off),
    mirroring how the paper's configurations share the whole -O3 mid-end.
    ``unroll_factor`` > 1 unrolls canonical counted loops first, exposing
    straight-line lanes to SLP for sources written one element per
    iteration.

    ``compile_seconds`` covers the whole compilation — clone (the
    stand-in for the frontend/parsing work of a real compiler), passes,
    and verification — matching the paper's *wall* compile time protocol
    rather than timing the SLP pass in isolation.  It is derived as the
    sum of the per-phase spans in ``phase_seconds``, which attribute the
    same wall time to clone vs. simplify vs. SLP (Fig 11's protocol).
    """
    STATS.reset()
    phases: Dict[str, float] = {}
    report: Optional[VectorizationReport] = None
    try:
        with TRACER.span("compile", module=module.name, config=config.name):
            with _phase("clone", phases):
                working = clone_module(module)
            for name, fn in pipeline_phases(config, target, unroll_factor):
                with _phase(name, phases):
                    out = fn(working)
                if name == "vectorize":
                    report = out
            if verify:
                with _phase("verify", phases):
                    verify_module(working)
    except BaseException:
        # A crashing phase must not poison the *next* compilation's
        # counter snapshot (fuzz campaigns snapshot after simulate, which
        # would otherwise see this compile's partial counters).
        STATS.reset()
        raise
    assert report is not None  # pipeline_phases always yields vectorize
    return CompilationResult(
        module=working,
        report=report,
        compile_seconds=sum(phases.values()),
        phase_seconds=phases,
        counters=STATS.snapshot(),
    )
