"""Bundle legality and scheduling checks.

The vectorizer emits all vector code at one *anchor* position — immediately
before the last member of the seed store bundle.  That implicitly moves
every vectorized load down to the anchor and every vectorized store down to
the anchor, so the checks here verify those motions cannot change any
memory dependence:

* a load may move down past an intervening store only if they cannot alias;
* a seed store may move down past an intervening load/store only if they
  cannot alias;
* loads that originally executed *after* an in-bundle store must not alias
  it (the vector load issues before the vector store).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..ir.analysis import AddressInfo, address_of, may_alias
from ..ir.block import BasicBlock
from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.values import Value


def _alias(a: Optional[AddressInfo], b: Optional[AddressInfo]) -> bool:
    """Conservative alias query: unanalyzable addresses alias everything."""
    if a is None or b is None:
        return True
    return may_alias(a, b)


def bundle_is_schedulable_stores(
    stores: Sequence[StoreInst], anchor: Instruction
) -> bool:
    """Can the seed store bundle legally execute at the anchor position?

    Every store is delayed to the anchor, so any intervening memory access
    that may alias it would observe the wrong order.
    """
    block = anchor.parent
    if block is None:
        return False
    anchor_pos = block.index_of(anchor)
    bundle_ids = {id(s) for s in stores}
    for store in stores:
        if store.parent is not block:
            return False
        info = address_of(store)
        pos = block.index_of(store)
        if pos > anchor_pos:
            return False
        for other in block.instructions[pos + 1 : anchor_pos + 1]:
            if not other.is_memory or id(other) in bundle_ids:
                continue
            if _alias(info, address_of(other)):
                return False
    return True


def bundle_is_schedulable_loads(
    loads: Sequence[LoadInst],
    anchor: Instruction,
    seed_stores: Sequence[StoreInst],
) -> bool:
    """Can a load bundle legally execute at the anchor position?

    Two hazards: (1) a store between the load's original position and the
    anchor (read would move past a write); (2) an in-bundle seed store
    positioned *before* the load (the original read saw that write; the
    vector load issues before the vector store and would read stale data).
    """
    block = anchor.parent
    if block is None:
        return False
    anchor_pos = block.index_of(anchor)
    seed_ids = {id(s) for s in seed_stores}
    for load in loads:
        if load.parent is not block:
            return False
        info = address_of(load)
        pos = block.index_of(load)
        if pos > anchor_pos:
            return False
        # Hazard (1): stores the load would move past.
        for other in block.instructions[pos + 1 : anchor_pos + 1]:
            if not isinstance(other, StoreInst) or id(other) in seed_ids:
                continue
            if _alias(info, address_of(other)):
                return False
        # Hazard (2): in-bundle stores the load originally read from,
        # plus non-seed aliasing stores located before the load but whose
        # delayed bundle-write the load depends on are covered by the seed
        # store check (the store side refuses to move past aliasing reads).
        for store in seed_stores:
            store_pos = block.index_of(store)
            if store_pos < pos and _alias(info, address_of(store)):
                return False
    return True


def lanes_form_valid_bundle(lanes: Sequence[Value]) -> Optional[str]:
    """Generic structural checks; returns a failure reason or None.

    All lanes must be distinct instructions of identical scalar type living
    in the same block.
    """
    first = lanes[0]
    if not all(isinstance(v, Instruction) for v in lanes):
        return "non-instruction lane"
    seen: Set[int] = set()
    for value in lanes:
        if id(value) in seen:
            return "repeated value across lanes"
        seen.add(id(value))
    if any(v.type is not first.type for v in lanes):
        return "mismatched lane types"
    if not first.type.is_scalar:
        return "non-scalar lanes"
    blocks = {id(v.parent) for v in lanes}  # type: ignore[union-attr]
    if len(blocks) != 1 or None in {v.parent for v in lanes}:  # type: ignore[union-attr]
        return "lanes span blocks"
    return None


def loads_are_consecutive(loads: Sequence[LoadInst]) -> bool:
    """True when the loads access strictly consecutive addresses in lane
    order (the only layout vectorizable without a shuffle)."""
    infos = [address_of(load) for load in loads]
    if any(info is None for info in infos):
        return False
    return all(a.is_consecutive_with(b) for a, b in zip(infos, infos[1:]))


def loads_are_reversed(loads: Sequence[LoadInst]) -> bool:
    """True when the loads address consecutive memory in *descending* lane
    order — vectorizable as one wide load plus a reversing shuffle."""
    infos = [address_of(load) for load in loads]
    if any(info is None for info in infos):
        return False
    return all(b.is_consecutive_with(a) for a, b in zip(infos, infos[1:]))
