"""The Super-Node: the paper's core data structure (Sections III-IV).

A *Super-Node* groups, per vector lane, a maximal chain of binary
instructions drawn from one commutative operator family **and its inverse**
(add/sub, fadd/fsub, fmul/fdiv).  LSLP's *Multi-Node* is the degenerate
case with the inverse disallowed — both are produced by
:func:`build_lane_chain` via the ``allow_inverse`` switch.

Per-lane model
--------------
Each lane is a :class:`LaneChain`: a binary tree of :class:`TrunkUnit`
positions.  A *position* is a structural slot in the tree; a *unit* is the
content occupying a position — the trunk opcode together with its attached
leaf operands.  The separation matters because the paper's *trunk
reordering* (Section IV-C3) moves units between positions while the tree
shape stays fixed.

APO (Accumulated Path Operation, Section IV-C1)
-----------------------------------------------
Every node is annotated with the parity of right-hand-side inverse-operator
edges on its path from the root: ``False`` = identity (``+`` / ``*``),
``True`` = inverse (``-`` / ``/``).  Legality rules:

* a **leaf swap** between two slots is legal iff the slots' APOs are equal
  (Section IV-C2);
* a **trunk swap** is legal iff afterwards *every* node's APO is unchanged
  (Section IV-C3) — leaves ride along with their trunk unit, which is
  exactly how a leaf can legally migrate to a slot whose static APO differs
  from the leaf's.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir.instructions import (
    BinaryInst,
    Instruction,
    Opcode,
    base_opcode,
    inverse_opcode,
    is_commutative,
)
from ..ir.values import Value
from ..observe import STAT
from ..robust.faults import current_faults

_STAT_CHAINS_GROWN = STAT(
    "supernode.lane-chains-grown", "Lane chains of >= 2 trunks grown"
)


#: APO values: False = identity operation ('+'/'*'), True = inverse ('-'/'/')
APO = bool
APO_PLUS: APO = False
APO_MINUS: APO = True


def apo_str(apo: APO, family: Opcode = Opcode.FADD) -> str:
    """Human-readable APO symbol for diagnostics."""
    if base_opcode(family) in (Opcode.FMUL, Opcode.MUL):
        return "/" if apo else "*"
    return "-" if apo else "+"


@dataclass
class Leaf:
    """A non-trunk operand hanging off the chain."""

    value: Value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Leaf({self.value.ref()})"


class TrunkUnit:
    """The movable content of one trunk position: opcode + leaf layout.

    ``children`` has exactly two entries (binary trunks); each entry is
    either another :class:`TrunkUnit` (a chain edge) or a :class:`Leaf`.
    ``inst`` remembers the original IR instruction the unit came from (for
    statistics; code generation builds fresh instructions).
    """

    __slots__ = ("opcode", "inst", "children")

    def __init__(
        self,
        opcode: Opcode,
        inst: Optional[BinaryInst],
        children: List[Union["TrunkUnit", Leaf]],
    ) -> None:
        if len(children) != 2:
            raise ValueError("trunk units are binary")
        self.opcode = opcode
        self.inst = inst
        self.children = children

    @property
    def is_inverse(self) -> bool:
        return self.opcode is not base_opcode(self.opcode)

    def chain_indexes(self) -> List[int]:
        return [i for i, c in enumerate(self.children) if isinstance(c, TrunkUnit)]

    def leaf_indexes(self) -> List[int]:
        return [i for i, c in enumerate(self.children) if isinstance(c, Leaf)]

    def leaves(self) -> List[Leaf]:
        return [c for c in self.children if isinstance(c, Leaf)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrunkUnit({self.opcode}, {self.children})"


@dataclass(frozen=True)
class Slot:
    """One operand slot of the Super-Node fat node (a leaf edge).

    Identified positionally: ``trunk_path`` is the chain-edge index path
    from the root to the owning trunk, ``child_index`` the operand index of
    the leaf within that trunk.  Positional identity is stable across trunk
    swaps (the structure doesn't change, only unit contents move).
    """

    trunk_path: Tuple[int, ...]
    child_index: int
    depth: int


class LaneChain:
    """The per-lane expression tree of a Multi-/Super-Node."""

    def __init__(self, root: TrunkUnit, family: Opcode) -> None:
        self.root = root
        self.family = family  # base (commutative) opcode of the family
        # Tree *shape* is invariant under every legal move (leaf swaps and
        # trunk swaps exchange unit contents, never chain edges), so the
        # traversal results are cached; only root replacement invalidates.
        self._trunks_cache: Optional[List[Tuple[Tuple[int, ...], TrunkUnit]]] = None
        self._slots_cache: Optional[List[Slot]] = None
        #: applied-move counters (observability for reports/ablations)
        self.leaf_swaps_applied = 0
        self.trunk_swaps_applied = 0

    def _invalidate_caches(self) -> None:
        self._trunks_cache = None
        self._slots_cache = None

    # -- construction -----------------------------------------------------------

    def clone(self) -> "LaneChain":
        def copy(unit: TrunkUnit) -> TrunkUnit:
            children: List[Union[TrunkUnit, Leaf]] = []
            for child in unit.children:
                if isinstance(child, TrunkUnit):
                    children.append(copy(child))
                else:
                    children.append(Leaf(child.value))
            return TrunkUnit(unit.opcode, unit.inst, children)

        twin = LaneChain(copy(self.root), self.family)
        twin.leaf_swaps_applied = self.leaf_swaps_applied
        twin.trunk_swaps_applied = self.trunk_swaps_applied
        return twin

    # -- traversal ----------------------------------------------------------------

    def trunks(self) -> List[Tuple[Tuple[int, ...], TrunkUnit]]:
        """(path, unit) pairs in pre-order (cached; shape-invariant)."""
        if self._trunks_cache is not None:
            return self._trunks_cache
        result: List[Tuple[Tuple[int, ...], TrunkUnit]] = []

        def walk(unit: TrunkUnit, path: Tuple[int, ...]) -> None:
            result.append((path, unit))
            for i, child in enumerate(unit.children):
                if isinstance(child, TrunkUnit):
                    walk(child, path + (i,))

        walk(self.root, ())
        self._trunks_cache = result
        return result

    def trunk_at(self, path: Sequence[int]) -> TrunkUnit:
        unit = self.root
        for index in path:
            child = unit.children[index]
            if not isinstance(child, TrunkUnit):
                raise KeyError(f"no trunk at path {tuple(path)}")
            unit = child
        return unit

    def size(self) -> int:
        """Number of trunk instructions (the paper's node size/depth)."""
        return len(self.trunks())

    def slots(self) -> List[Slot]:
        """All leaf slots ordered root-most first (Listing 2, line 5).

        Cached: slot positions depend only on the (invariant) tree shape.
        """
        if self._slots_cache is not None:
            return self._slots_cache
        found: List[Slot] = []
        for path, unit in self.trunks():
            for index in unit.leaf_indexes():
                found.append(Slot(path, index, depth=len(path)))
        found.sort(key=lambda s: (s.depth, s.trunk_path, s.child_index))
        self._slots_cache = found
        return found

    def leaf_at(self, slot: Slot) -> Leaf:
        child = self.trunk_at(slot.trunk_path).children[slot.child_index]
        if not isinstance(child, Leaf):
            raise KeyError(f"slot {slot} does not hold a leaf")
        return child

    def leaf_values(self) -> List[Value]:
        return [self.leaf_at(slot).value for slot in self.slots()]

    def slot_of_value(self, value: Value) -> Slot:
        for slot in self.slots():
            if self.leaf_at(slot).value is value:
                return slot
        raise KeyError(f"value {value.ref()} is not a leaf of this chain")

    # -- APO (Section IV-C1) --------------------------------------------------------

    def trunk_apos(self) -> Dict[Tuple[int, ...], APO]:
        """APO of every trunk *position*, keyed by path."""
        apos: Dict[Tuple[int, ...], APO] = {}

        def walk(unit: TrunkUnit, path: Tuple[int, ...], apo: APO) -> None:
            apos[path] = apo
            for i, child in enumerate(unit.children):
                if isinstance(child, TrunkUnit):
                    walk(child, path + (i,), apo ^ (unit.is_inverse and i == 1))

        walk(self.root, (), APO_PLUS)
        return apos

    def slot_apo(self, slot: Slot) -> APO:
        trunk_apo = self.trunk_apos()[slot.trunk_path]
        unit = self.trunk_at(slot.trunk_path)
        return trunk_apo ^ (unit.is_inverse and slot.child_index == 1)

    def slot_apos(self) -> Dict[Slot, APO]:
        """APO of every slot, computed in one walk (ordering of keys
        matches :meth:`slots`)."""
        apos: Dict[Slot, APO] = {}

        def walk(unit: TrunkUnit, path: Tuple[int, ...], apo: APO) -> None:
            inverse = unit.is_inverse
            for index, child in enumerate(unit.children):
                child_apo = apo ^ (inverse and index == 1)
                if isinstance(child, TrunkUnit):
                    walk(child, path + (index,), child_apo)
                else:
                    apos[Slot(path, index, depth=len(path))] = child_apo

        walk(self.root, (), APO_PLUS)
        return {slot: apos[slot] for slot in self.slots()}

    def value_apos(self) -> Dict[int, APO]:
        """APO of every leaf object (keyed by ``id``) and trunk position.

        This is the map trunk-swap legality compares before/after: the
        paper requires "the APO of all nodes remains the same".  Computed
        in a single tree walk (this is the hottest query in the reorder
        search).
        """
        apos: Dict[int, APO] = {}

        def walk(unit: TrunkUnit, apo: APO) -> None:
            apos[id(unit)] = apo
            inverse = unit.is_inverse
            for index, child in enumerate(unit.children):
                child_apo = apo ^ (inverse and index == 1)
                if isinstance(child, TrunkUnit):
                    walk(child, child_apo)
                else:
                    apos[id(child)] = child_apo

        walk(self.root, APO_PLUS)
        return apos

    def signed_terms(self) -> List[Tuple[APO, Value]]:
        """Flattened semantics: the lane equals the APO-signed fold of its
        leaves.  Used by tests as the semantic invariant."""
        return [(self.slot_apo(slot), self.leaf_at(slot).value) for slot in self.slots()]

    # -- moves (Sections IV-C2 / IV-C3) ------------------------------------------------

    def swap_leaves(self, a: Slot, b: Slot) -> None:
        """Unchecked leaf exchange between two slots."""
        unit_a = self.trunk_at(a.trunk_path)
        unit_b = self.trunk_at(b.trunk_path)
        unit_a.children[a.child_index], unit_b.children[b.child_index] = (
            unit_b.children[b.child_index],
            unit_a.children[a.child_index],
        )
        self.leaf_swaps_applied += 1

    def can_swap_leaves(self, a: Slot, b: Slot) -> bool:
        """Leaf-swap legality: equal slot APOs (Section IV-C2)."""
        return self.slot_apo(a) == self.slot_apo(b)

    def try_swap_trunks(
        self, path_a: Tuple[int, ...], path_b: Tuple[int, ...]
    ) -> bool:
        """Attempt the paper's trunk swap between two positions.

        The trunk *opcodes* exchange positions while chain edges stay put;
        the leaves attached to both positions are pooled and redistributed
        over the two positions' free slots.  This covers both shapes the
        paper uses: a plain exchange (each trunk carries its leaf along,
        Fig. 4b) and the terminal-trunk case where the bottom anchor leaf
        stays behind (Fig. 3d — the ``add`` moves up with ``D`` while ``B``
        stays at the bottom).

        A placement is applied only when afterwards *every* node's APO is
        unchanged — the paper's legality rule (Section IV-C3).  Returns
        False (state untouched) when no legal placement exists.
        """
        if path_a == path_b:
            return False
        # One path being a prefix of the other is fine (parent/child swap):
        # only opcodes and leaves move, so the tree shape is preserved.
        unit_a = self.trunk_at(path_a)
        unit_b = self.trunk_at(path_b)
        before = self.value_apos()
        original = (
            unit_a.opcode,
            list(unit_a.children),
            unit_b.opcode,
            list(unit_b.children),
        )
        free_a = unit_a.leaf_indexes()
        free_b = unit_b.leaf_indexes()
        pool = unit_a.leaves() + unit_b.leaves()

        for perm in itertools.permutations(pool):
            unit_a.opcode, unit_b.opcode = original[2], original[0]
            it = iter(perm)
            for index in free_a:
                unit_a.children[index] = next(it)
            for index in free_b:
                unit_b.children[index] = next(it)
            if self.value_apos() == before:
                self.trunk_swaps_applied += 1
                return True
        # No legal placement: revert.
        unit_a.opcode, unit_a.children = original[0], original[1]
        unit_b.opcode, unit_b.children = original[2], original[3]
        return False

    # -- high-level placement (used by Listings 2/3) ---------------------------------------

    def place_leaf(
        self,
        value: Value,
        target: Slot,
        locked: Optional[Dict[Slot, Value]] = None,
    ) -> bool:
        """Move the leaf holding ``value`` into slot ``target``.

        Tries, in order: no-op, direct leaf swap (equal APOs), then every
        legal trunk swap followed by a leaf swap if still needed.  ``locked``
        maps already-assigned slots to the value they must keep (Listing 2
        processes operand indexes in order and must not disturb earlier
        ones).  Returns True and mutates the chain on success; the chain is
        left unchanged on failure.
        """
        locked = locked or {}

        def locked_ok(chain: "LaneChain") -> bool:
            return all(
                chain.leaf_at(slot).value is want for slot, want in locked.items()
            )

        current = self.slot_of_value(value)
        if current == target:
            return True
        if self.can_swap_leaves(current, target):
            snapshot = self.clone()
            self.swap_leaves(current, target)
            if locked_ok(self):
                return True
            self._restore_from(snapshot)
            return False
        # Trunk-assisted movement: try each legal trunk swap, then see if the
        # leaf landed (it rides with its unit) or can now swap directly.
        paths = [path for path, _ in self.trunks()]
        for path_a, path_b in itertools.combinations(paths, 2):
            snapshot = self.clone()
            if not self.try_swap_trunks(path_a, path_b):
                continue
            where = self.slot_of_value(value)
            if where == target and locked_ok(self):
                return True
            if self.can_swap_leaves(where, target):
                self.swap_leaves(where, target)
                if locked_ok(self):
                    return True
            self._restore_from(snapshot)
        return False

    def can_place_leaf(
        self,
        value: Value,
        target: Slot,
        locked: Optional[Dict[Slot, Value]] = None,
    ) -> bool:
        """Non-mutating legality probe for :meth:`place_leaf`."""
        return self.clone().place_leaf(value, target, locked)

    def _restore_from(self, snapshot: "LaneChain") -> None:
        self.root = snapshot.root
        self.leaf_swaps_applied = snapshot.leaf_swaps_applied
        self.trunk_swaps_applied = snapshot.trunk_swaps_applied
        self._invalidate_caches()

    # -- evaluation (test oracle) ----------------------------------------------------------

    def evaluate(self, env: Dict[int, float]) -> float:
        """Numerically evaluate the chain with leaf values from ``env``
        (keyed by ``id`` of the leaf's IR value).  Test-only helper."""

        def walk(node: Union[TrunkUnit, Leaf]) -> float:
            if isinstance(node, Leaf):
                return env[id(node.value)]
            a = walk(node.children[0])
            b = walk(node.children[1])
            base = base_opcode(node.opcode)
            if base in (Opcode.ADD, Opcode.FADD):
                return a - b if node.is_inverse else a + b
            return a / b if node.is_inverse else a * b

        return walk(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        def fmt(node: Union[TrunkUnit, Leaf]) -> str:
            if isinstance(node, Leaf):
                return node.value.ref()
            sym = {
                Opcode.ADD: "+", Opcode.SUB: "-", Opcode.FADD: "+",
                Opcode.FSUB: "-", Opcode.MUL: "*", Opcode.FMUL: "*",
                Opcode.FDIV: "/", Opcode.SDIV: "/",
            }.get(node.opcode, str(node.opcode))
            return f"({fmt(node.children[0])} {sym} {fmt(node.children[1])})"

        return f"LaneChain{fmt(self.root)}"


#: operator families eligible for Multi-/Super-Nodes: base opcode -> needs fast-math
CHAIN_FAMILIES = {
    Opcode.ADD: False,
    Opcode.FADD: True,
    Opcode.MUL: False,
    Opcode.FMUL: True,
}


def chain_family_of(opcode: Opcode) -> Optional[Opcode]:
    """Base opcode of the chain family ``opcode`` belongs to, if any."""
    base = base_opcode(opcode)
    return base if base in CHAIN_FAMILIES else None


def build_lane_chain(
    root: Instruction,
    allow_inverse: bool,
    fast_math: bool,
    max_trunks: int = 16,
) -> Optional[LaneChain]:
    """Grow a Multi-/Super-Node lane chain rooted at ``root``.

    Returns ``None`` when no legal chain of at least two trunks exists.
    An operand joins the trunk when it is a single-use binary instruction
    of the same operator family in the same block; otherwise it becomes a
    leaf.  ``allow_inverse=False`` gives LSLP's Multi-Node (commutative
    opcodes only); ``True`` gives the Super-Node.
    """
    current_faults().fire("supernode.build-chain")
    if not isinstance(root, BinaryInst):
        return None
    family = chain_family_of(root.opcode)
    if family is None:
        return None
    if root.opcode is not family and not allow_inverse:
        return None  # root itself is an inverse op; Multi-Node cannot start here
    if CHAIN_FAMILIES[family] and not fast_math:
        return None  # float reassociation needs -ffast-math
    if not root.type.is_scalar:
        return None

    budget = [max_trunks]

    def eligible(value: Value) -> bool:
        if budget[0] <= 0:
            return False
        if not isinstance(value, BinaryInst):
            return False
        if value.type is not root.type:
            return False
        if chain_family_of(value.opcode) is not family:
            return False
        if value.opcode is not family and not allow_inverse:
            return False
        if value.parent is not root.parent:
            return False
        if value.num_uses != 1:
            return False
        return True

    def grow(inst: BinaryInst) -> TrunkUnit:
        budget[0] -= 1
        children: List[Union[TrunkUnit, Leaf]] = []
        for op in inst.operands:
            if eligible(op):
                children.append(grow(op))  # type: ignore[arg-type]
            else:
                children.append(Leaf(op))
        return TrunkUnit(inst.opcode, inst, children)

    chain = LaneChain(grow(root), family)
    if chain.size() < 2:
        return None
    _STAT_CHAINS_GROWN.add()
    return chain
