"""Vector code generation (Figure 1, step 6b).

Emits the vector form of a profitable SLP graph at its anchor (immediately
before the last seed store), wires external users through extractelement,
replaces the scalar seed stores with one wide store, and leaves the dead
scalar expression tree for DCE — the same strategy as LLVM's SLP pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.builder import IRBuilder
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    CmpInst,
    Instruction,
    LoadInst,
    Opcode,
    SelectInst,
    StoreInst,
)
from ..ir.types import VectorType
from ..ir.values import Constant, Value
from ..robust.faults import current_faults
from .graph import NodeKind, SLPGraph, SLPNode


class CodegenError(Exception):
    """Raised when a graph that claimed to be vectorizable cannot be
    emitted (indicates a builder bug, not a user error)."""


def emit_node_tree(
    node: SLPNode, builder: IRBuilder, memo: Optional[Dict[int, Value]] = None
) -> Value:
    """Emit the vector value for ``node`` (and, recursively, its operand
    nodes) at the builder's insertion point.  ``memo`` shares emitted
    vectors across multiple trees (nodes reached twice emit once)."""
    if memo is None:
        memo = {}

    def vector_of(inner: SLPNode) -> Value:
        cached = memo.get(id(inner))
        if cached is not None:
            return cached
        value = _emit_node(inner, builder, vector_of)
        memo[id(inner)] = value
        inner.vector_value = value
        return value

    return vector_of(node)


def emit_vector_code(graph: SLPGraph) -> Value:
    """Emit vector code for ``graph``; returns the root vector store."""
    builder = IRBuilder()
    builder.position_before(graph.anchor)
    internal = graph.internal_instruction_ids()
    memo: Dict[int, Value] = {}

    def vector_of(node: SLPNode) -> Value:
        return emit_node_tree(node, builder, memo)

    root = graph.root
    if root.kind is not NodeKind.STORE:
        raise CodegenError(f"graph root must be a store bundle, got {root.kind}")
    stored = vector_of(root.operands[0])
    first_store = root.lanes[0]
    assert isinstance(first_store, StoreInst)
    vec_store = builder.store(stored, first_store.pointer)
    root.vector_value = vec_store

    _emit_external_extracts(graph, builder, memo, internal)

    # The scalar seed stores are now redundant; erase them eagerly (they
    # have side effects, so DCE would never remove them).
    for lane in root.lanes:
        assert isinstance(lane, StoreInst)
        lane.erase_from_parent()
    # Injection point *after* emission: "raise" leaves half-rewritten IR
    # behind (the hardest rollback case) and "corrupt" produces a block
    # the post-phase verifier must reject (a missing terminator).
    current_faults().fire(
        "codegen.emit",
        corrupt=lambda: vec_store.parent.terminator.erase_from_parent(),
    )
    return vec_store


def _emit_node(node: SLPNode, builder: IRBuilder, vector_of) -> Value:
    first = node.lanes[0]
    vec_type = node.vec_type

    if node.kind is NodeKind.GATHER:
        return _emit_gather(node, builder)

    if node.kind is NodeKind.LOAD:
        if node.load_reversed:
            # lanes address memory in descending order: the run starts at
            # the last lane's pointer; reverse after the wide load
            last = node.lanes[-1]
            assert isinstance(last, LoadInst)
            wide = builder.load(last.pointer, vec_type)
            mask = list(range(vec_type.count - 1, -1, -1))
            return builder.shufflevector(wide, wide, mask)
        assert isinstance(first, LoadInst)
        return builder.load(first.pointer, vec_type)

    if node.kind is NodeKind.ALT:
        assert node.lane_opcodes is not None
        lhs = vector_of(node.operands[0])
        rhs = vector_of(node.operands[1])
        return builder.altbinop(node.lane_opcodes, lhs, rhs)

    if node.kind is NodeKind.CALL:
        assert isinstance(first, CallInst)
        args = [vector_of(operand) for operand in node.operands]
        return builder.call(first.callee, args)

    if node.kind is NodeKind.VECTOR:
        if isinstance(first, BinaryInst):
            lhs = vector_of(node.operands[0])
            rhs = vector_of(node.operands[1])
            return builder.binop(first.opcode, lhs, rhs)
        if isinstance(first, CmpInst):
            lhs = vector_of(node.operands[0])
            rhs = vector_of(node.operands[1])
            if first.opcode is Opcode.ICMP:
                return builder.icmp(first.predicate, lhs, rhs)
            return builder.fcmp(first.predicate, lhs, rhs)
        if isinstance(first, SelectInst):
            cond = vector_of(node.operands[0])
            a = vector_of(node.operands[1])
            b = vector_of(node.operands[2])
            return builder.select(cond, a, b)
        if isinstance(first, CastInst):
            value = vector_of(node.operands[0])
            from ..ir.types import vector_of as vec

            target = vec(first.type, node.num_lanes)
            return builder.cast(first.opcode, value, target)
        raise CodegenError(f"unhandled VECTOR lane kind: {type(first).__name__}")

    raise CodegenError(f"unhandled node kind: {node.kind}")


def _emit_gather(node: SLPNode, builder: IRBuilder) -> Value:
    """Materialize a vector from arbitrary scalars.

    All-constant bundles fold to a vector constant; splats use one insert
    plus a broadcast shuffle; anything else is a chain of inserts — the
    exact shapes the cost model priced.
    """
    vec_type = node.vec_type
    lanes = node.lanes
    if all(isinstance(v, Constant) for v in lanes):
        return Constant(vec_type, tuple(v.value for v in lanes))  # type: ignore[union-attr]
    zero = Constant(
        vec_type,
        tuple(
            0 if vec_type.element.is_integer else 0.0
            for _ in range(vec_type.count)
        ),
    )
    if all(v is lanes[0] for v in lanes):
        seeded = builder.insertelement(zero, lanes[0], 0)
        return builder.shufflevector(seeded, zero, [0] * vec_type.count)
    current: Value = zero
    for lane_index, value in enumerate(lanes):
        current = builder.insertelement(current, value, lane_index)
    return current


def _emit_external_extracts(
    graph: SLPGraph,
    builder: IRBuilder,
    memo: Dict[int, Value],
    internal: set,
) -> None:
    """Rewire external users of vectorized scalars to extractelement.

    Only uses that execute at-or-after the anchor can be rewired (the
    extract is emitted at the anchor); earlier users keep the scalar alive,
    which is safe — the scalar chain simply survives DCE.
    """
    anchor = graph.anchor
    block = graph.block
    anchor_pos = block.index_of(anchor)
    for node in graph.vectorizable_nodes():
        if node.kind is NodeKind.STORE or node.vector_value is None:
            continue
        for lane_index, scalar in enumerate(node.lanes):
            if not isinstance(scalar, Instruction):
                continue
            rewirable = []
            for use in list(scalar.uses):
                user = use.user
                if id(user) in internal:
                    continue
                if not isinstance(user, Instruction):
                    continue
                if user.parent is block:
                    if user.parent.index_of(user) < anchor_pos:
                        continue  # executes before the extract would exist
                rewirable.append(use)
            if not rewirable:
                continue
            extract = builder.extractelement(node.vector_value, lane_index)
            for use in rewirable:
                use.user.set_operand(use.index, extract)
