"""The SLP graph: bundles of isomorphic scalars and their relationships.

Mirrors LLVM's ``BoUpSLP`` tree: each :class:`SLPNode` is a group of
scalar values, one per vector lane.  Vectorizable kinds carry operand
nodes; ``GATHER`` nodes terminate exploration and pay the cost of building
the vector out of scalars (the red oval nodes of the paper's figures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from ..ir.instructions import Instruction, Opcode
from ..ir.types import VectorType
from ..ir.values import Value
from .reorder import SuperNodeRecord


class NodeKind(enum.Enum):
    VECTOR = "vector"  # same-opcode group (binary, cmp, select, cast)
    ALT = "alt"  # same-family mixed opcodes (add/sub alternation)
    LOAD = "load"  # consecutive loads
    STORE = "store"  # consecutive stores (always the graph root)
    CALL = "call"  # same-intrinsic calls
    GATHER = "gather"  # non-vectorizable group


@dataclass
class SLPNode:
    """One group of per-lane scalar values in the SLP graph."""

    kind: NodeKind
    lanes: Tuple[Value, ...]
    vec_type: VectorType
    operands: List["SLPNode"] = field(default_factory=list)
    #: per-lane opcodes for ALT nodes
    lane_opcodes: Optional[Tuple[Opcode, ...]] = None
    #: LOAD nodes whose lanes address memory in descending order: loaded
    #: as one wide load plus a reversing shuffle
    load_reversed: bool = False
    #: why a GATHER node could not vectorize (diagnostics)
    reason: str = ""
    #: cost contribution (negative = saving), filled by the cost phase
    cost: float = 0.0
    #: vector value produced by codegen
    vector_value: Optional[Value] = None
    #: lanes were re-emitted by a Multi-/Super-Node's generateCode (the
    #: DOT renderer draws these bundles inside the grouping box)
    from_supernode: bool = False

    @property
    def num_lanes(self) -> int:
        return len(self.lanes)

    @property
    def is_vectorizable(self) -> bool:
        return self.kind is not NodeKind.GATHER

    def instructions(self) -> List[Instruction]:
        return [v for v in self.lanes if isinstance(v, Instruction)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        refs = ", ".join(v.ref() for v in self.lanes)
        return f"<SLPNode {self.kind.value} [{refs}] cost={self.cost:+.1f}>"


@dataclass
class SLPGraph:
    """A full SLP graph grown from one seed bundle."""

    root: SLPNode
    nodes: List[SLPNode]
    block: BasicBlock
    #: scheduling anchor: vector code is emitted immediately before this
    #: instruction (the last member of the seed store bundle)
    anchor: Instruction
    #: Multi-/Super-Nodes formed while growing this graph
    supernodes: List[SuperNodeRecord] = field(default_factory=list)
    #: total cost (negative = profitable), filled by the cost phase
    total_cost: float = 0.0
    #: cost breakdown (total = vector - scalar + extract), filled by the
    #: cost phase for the decision journal and ``repro explain``
    scalar_cost: float = 0.0
    vector_cost: float = 0.0
    extract_cost: float = 0.0

    def vectorizable_nodes(self) -> List[SLPNode]:
        return [n for n in self.nodes if n.is_vectorizable]

    def gather_nodes(self) -> List[SLPNode]:
        return [n for n in self.nodes if not n.is_vectorizable]

    def internal_instruction_ids(self) -> set:
        """ids of scalar instructions in vectorizable bundles (the values
        that will be replaced by vector code)."""
        ids = set()
        for node in self.vectorizable_nodes():
            for inst in node.instructions():
                ids.add(id(inst))
        return ids

    def dump(self) -> str:
        """Multi-line description of the graph (diagnostics and docs)."""
        lines = [
            f"SLP graph in block {self.block.name} "
            f"(cost {self.total_cost:+.1f})"
        ]

        def walk(node: SLPNode, depth: int, seen: set) -> None:
            indent = "  " * depth
            refs = ", ".join(v.ref() for v in node.lanes)
            tag = node.kind.value
            if node.lane_opcodes:
                tag += "[" + "".join(
                    "+" if op in (Opcode.ADD, Opcode.FADD, Opcode.MUL, Opcode.FMUL)
                    else "-"
                    for op in node.lane_opcodes
                ) + "]"
            note = f"  ({node.reason})" if node.reason else ""
            lines.append(
                f"{indent}{tag:>10} cost={node.cost:+5.1f} [{refs}]{note}"
            )
            if id(node) in seen:
                return
            seen.add(id(node))
            for operand in node.operands:
                walk(operand, depth + 1, seen)

        walk(self.root, 1, set())
        return "\n".join(lines)
