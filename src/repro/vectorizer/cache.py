"""Content-addressed compile cache and the shared cross-worker store.

Compilation is pure given (module text, configuration, target, unroll
factor): the pipeline clones its input, the cost model is deterministic,
and PR 4's per-compilation sessions mean no hidden global state feeds the
result.  That makes the *printed module text* a sound cache key — two
modules that print identically compile identically.

The cache stores everything needed to rebuild a
:class:`~repro.vectorizer.pipeline.CompilationResult` without running a
single pass: the output module (as text, reparsed on hit), the
vectorization report, the counter snapshot, and the recorded wall times.
A cache hit therefore returns a result equal to a cold compile on every
deterministic field; ``compile_seconds``/``phase_seconds`` are replayed
from the original measurement (they describe the compile that produced
the artifact, not the lookup).

On-disk persistence is provided by :class:`SharedJsonStore`, a
file-locked, LRU-bounded JSON document store designed for *concurrent
writers*: all workers of a :mod:`repro.serve` pool (and successive
service runs) point at the same directory, so one worker's cold compile
becomes every other worker's hit.  Entries record the writing process's
pid, which lets a reader count ``cache.cross_worker_hits``.  Truncated
or garbage entries are deleted and treated as misses
(``cache.corrupt_entries``), never raised.  When the store holds more
than ``max_entries`` documents the least-recently-used ones are evicted
(``cache.evictions``); recency is tracked in a ``.index.json`` touched
under the lock on every hit.

Hits and misses are counted through the ambient
:class:`~repro.observe.session.CompilerSession` via ``cache.hits`` /
``cache.misses``.
"""

from __future__ import annotations

import json
import hashlib
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

try:  # file locking is POSIX-only; the no-op fallback keeps single-process use working
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe import STAT
from ..observe.session import CompilerSession, current_session, use_session
from .pipeline import CompilationResult, compile_module
from .report import FunctionReport, GraphReport, VectorizationReport
from .reorder import SuperNodeRecord
from .slp import SLPConfig

STAT_HITS = STAT("cache.hits", "compile cache hits")
STAT_MISSES = STAT("cache.misses", "compile cache misses")
STAT_EVICTIONS = STAT("cache.evictions", "LRU evictions from the shared store")
STAT_CORRUPT = STAT(
    "cache.corrupt_entries", "truncated/garbage on-disk entries treated as misses"
)
STAT_CROSS_WORKER = STAT(
    "cache.cross_worker_hits", "disk hits on entries written by another process"
)
STAT_INDEX_REBUILDS = STAT(
    "cache.index_rebuilds", "recency indexes found corrupt and rebuilt from mtimes"
)

#: bump when the serialized entry layout changes; stale-version entries
#: on disk are treated as misses rather than deserialization errors
CACHE_FORMAT = 2

_SOURCE_FINGERPRINT: Optional[str] = None


def repro_source_fingerprint(refresh: bool = False) -> str:
    """Content hash of every ``repro`` source module, cached per process.

    Folded into cache keys so a persistent cache directory survives a
    code change *safely*: entries written by an older checkout simply
    stop matching and recompile, instead of replaying counters/reports
    the current compiler would no longer produce.  The
    ``REPRO_SOURCE_FINGERPRINT`` environment variable overrides the
    computed value (tests use it to simulate a code change without
    editing files).
    """
    global _SOURCE_FINGERPRINT
    override = os.environ.get("REPRO_SOURCE_FINGERPRINT")
    if override:
        return override
    if _SOURCE_FINGERPRINT is None or refresh:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        hasher = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                relative = os.path.relpath(path, root)
                try:
                    with open(path, "rb") as handle:
                        body = handle.read()
                except OSError:
                    continue
                hasher.update(relative.encode("utf-8"))
                hasher.update(b"\x00")
                hasher.update(body)
                hasher.update(b"\x00")
        _SOURCE_FINGERPRINT = hasher.hexdigest()[:16]
    return _SOURCE_FINGERPRINT


def cache_key(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    unroll_factor: int = 0,
) -> str:
    """SHA-256 over the printed module text and the compile parameters."""
    hasher = hashlib.sha256()
    hasher.update(print_module(module).encode("utf-8"))
    hasher.update(f"\x00{config.name}\x00{target.name}\x00{unroll_factor}".encode())
    hasher.update(f"\x00{repro_source_fingerprint()}".encode())
    return hasher.hexdigest()


# -- (de)serialization --------------------------------------------------------------


def _record_to_json(record: SuperNodeRecord) -> Dict[str, object]:
    return {
        "kind": record.kind,
        "lanes": record.lanes,
        "size": record.size,
        "family": record.family.name,
        "contains_inverse": record.contains_inverse,
        "vectorized": record.vectorized,
        "leaf_swaps": record.leaf_swaps,
        "trunk_swaps": record.trunk_swaps,
    }


def _record_from_json(data: Dict[str, object]) -> SuperNodeRecord:
    return SuperNodeRecord(
        kind=data["kind"],
        lanes=data["lanes"],
        size=data["size"],
        family=Opcode[data["family"]],
        contains_inverse=data["contains_inverse"],
        vectorized=data["vectorized"],
        leaf_swaps=data["leaf_swaps"],
        trunk_swaps=data["trunk_swaps"],
    )


def _graph_to_json(graph: GraphReport) -> Dict[str, object]:
    return {
        "function": graph.function,
        "block": graph.block,
        "lanes": graph.lanes,
        "cost": graph.cost,
        "vectorized": graph.vectorized,
        "node_count": graph.node_count,
        "gather_count": graph.gather_count,
        "supernodes": [_record_to_json(r) for r in graph.supernodes],
        "dump": graph.dump,
        "kind": graph.kind,
        "gather_reasons": list(graph.gather_reasons),
    }


def _graph_from_json(data: Dict[str, object]) -> GraphReport:
    return GraphReport(
        function=data["function"],
        block=data["block"],
        lanes=data["lanes"],
        cost=data["cost"],
        vectorized=data["vectorized"],
        node_count=data["node_count"],
        gather_count=data["gather_count"],
        supernodes=[_record_from_json(r) for r in data["supernodes"]],
        dump=data["dump"],
        kind=data["kind"],
        gather_reasons=list(data["gather_reasons"]),
    )


def result_to_json(result: CompilationResult) -> Dict[str, object]:
    """Serialize a compilation result to a JSON-compatible document."""
    return {
        "format": CACHE_FORMAT,
        "module": print_module(result.module),
        "report": {
            "config_name": result.report.config_name,
            "functions": [
                {"name": fn.name, "graphs": [_graph_to_json(g) for g in fn.graphs]}
                for fn in result.report.functions
            ],
        },
        "compile_seconds": result.compile_seconds,
        "phase_seconds": dict(result.phase_seconds),
        "counters": dict(result.counters),
    }


def result_from_json(data: Dict[str, object]) -> CompilationResult:
    """Rebuild a compilation result from :func:`result_to_json` output."""
    report = VectorizationReport(
        config_name=data["report"]["config_name"],
        functions=[
            FunctionReport(
                name=fn["name"],
                graphs=[_graph_from_json(g) for g in fn["graphs"]],
            )
            for fn in data["report"]["functions"]
        ],
    )
    return CompilationResult(
        module=parse_module(data["module"]),
        report=report,
        compile_seconds=data["compile_seconds"],
        phase_seconds=dict(data["phase_seconds"]),
        counters=dict(data["counters"]),
    )


# -- the shared on-disk store -------------------------------------------------------


def _lock_file(handle) -> None:
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)


def _unlock_file(handle) -> None:
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class SharedJsonStore:
    """File-locked, LRU-bounded JSON document store shared across processes.

    One ``<key>.json`` file per document, written atomically
    (tmp + ``os.replace``) and wrapped as ``{"pid": writer, "doc": ...}``
    so readers can tell cross-process hits from own-process ones.  A
    ``.index.json`` recency map, mutated only under an ``flock`` on
    ``.lock``, drives least-recently-used eviction once the store exceeds
    ``max_entries``.  The index is advisory: if it is missing or corrupt
    it is rebuilt from directory mtimes, so deleting it never loses data.

    ``get`` never raises on bad entries — a truncated or garbage file is
    deleted, counted via ``cache.corrupt_entries``, and reported as a
    miss; ``last_get`` tells the caller why (``"hit"``/``"miss"``/
    ``"corrupt"``) so it can attach a remark.
    """

    def __init__(
        self,
        directory: str,
        namespace: str = "store",
        max_entries: Optional[int] = None,
    ) -> None:
        self.directory = os.path.join(directory, namespace)
        self.namespace = namespace
        self.max_entries = max_entries
        self.last_get: str = "miss"
        os.makedirs(self.directory, exist_ok=True)
        self._lock_path = os.path.join(self.directory, ".lock")
        self._index_path = os.path.join(self.directory, ".index.json")

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    @contextmanager
    def _locked(self) -> Iterator[None]:
        handle = open(self._lock_path, "a+", encoding="utf-8")
        try:
            _lock_file(handle)
            yield
        finally:
            _unlock_file(handle)
            handle.close()

    # -- recency index (call only under the lock) --

    def _read_index(self) -> Dict[str, float]:
        corrupt = False
        try:
            with open(self._index_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entries = data.get("entries") if isinstance(data, dict) else None
            if isinstance(entries, dict):
                return {str(key): float(stamp) for key, stamp in entries.items()}
            corrupt = True
        except FileNotFoundError:
            pass  # fresh store: no index yet, nothing to recover from
        except (OSError, ValueError, TypeError):
            corrupt = True
        if corrupt:
            session = current_session()
            STAT_INDEX_REBUILDS.resolve(session.stats).add()
            session.remarks.recovery(
                "cache",
                f"recency index for {self.namespace!r} store was corrupt; "
                f"rebuilt from entry mtimes (no documents lost)",
                namespace=self.namespace,
            )
        # Rebuild from directory mtimes: the index is a hint, not truth.
        entries: Dict[str, float] = {}
        for name in os.listdir(self.directory):
            if name.startswith(".") or not name.endswith(".json"):
                continue
            try:
                entries[name[:-5]] = os.path.getmtime(
                    os.path.join(self.directory, name)
                )
            except OSError:
                continue
        return entries

    def _write_index(self, entries: Dict[str, float]) -> None:
        tmp = f"{self._index_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"entries": entries}, handle)
        os.replace(tmp, self._index_path)

    def _touch(self, key: str) -> None:
        with self._locked():
            entries = self._read_index()
            entries[key] = time.time()
            self._write_index(entries)

    def _fire_index_fault(self) -> None:
        """``serve.cache.index`` fault hook: scribble garbage over the
        recency index so the next ``_read_index`` exercises the rebuild
        path.  One attribute check when nothing is armed."""
        faults = current_session().faults
        if faults is None or not getattr(faults, "armed", None):
            return

        def _scribble() -> None:
            with open(self._index_path, "w", encoding="utf-8") as handle:
                handle.write('{"entries": {truncated garbage')

        faults.fire("serve.cache.index", corrupt=_scribble)

    # -- public API --

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Stored document for ``key`` or None; never raises on bad data."""
        stats = current_session().stats
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                wrapper = json.load(handle)
            doc = wrapper["doc"]
            writer_pid = int(wrapper["pid"])
        except FileNotFoundError:
            self.last_get = "miss"
            return None
        except (OSError, ValueError, KeyError, TypeError):
            STAT_CORRUPT.resolve(stats).add()
            self.last_get = "corrupt"
            self.discard(key)
            return None
        if writer_pid != os.getpid():
            STAT_CROSS_WORKER.resolve(stats).add()
        self._touch(key)
        self.last_get = "hit"
        return doc

    def put(self, key: str, doc: Dict[str, object]) -> None:
        """Store ``doc`` under ``key``, evicting LRU entries over the cap."""
        stats = current_session().stats
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(), "doc": doc}, handle)
        os.replace(tmp, path)
        with self._locked():
            self._fire_index_fault()
            entries = self._read_index()
            entries[key] = time.time()
            if self.max_entries is not None:
                while len(entries) > self.max_entries:
                    oldest = min(entries, key=entries.get)
                    if oldest == key:  # never evict what we just wrote
                        break
                    entries.pop(oldest)
                    try:
                        os.remove(self._path(oldest))
                    except OSError:
                        pass
                    STAT_EVICTIONS.resolve(stats).add()
            self._write_index(entries)

    def discard(self, key: str) -> None:
        """Drop ``key`` (used for corrupt entries); missing keys are fine."""
        try:
            os.remove(self._path(key))
        except OSError:
            pass
        with self._locked():
            entries = self._read_index()
            if entries.pop(key, None) is not None:
                self._write_index(entries)

    def keys(self) -> list:
        return sorted(
            name[:-5]
            for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.keys())


# -- the cache ----------------------------------------------------------------------


class CompileCache:
    """In-memory compile cache with optional shared on-disk persistence.

    With ``directory=None`` entries live only in this process.  With a
    directory, entries are also written through a :class:`SharedJsonStore`
    (namespace ``compile``) and lookups fall back to disk on an in-memory
    miss, so a warm directory survives process boundaries and is safely
    shared by concurrent service workers (the CI warm/hit check relies on
    this).  ``max_entries`` bounds the *on-disk* store with LRU eviction;
    the in-memory layer mirrors only what this process touched.

    ``last_lookup`` reports how the most recent :meth:`lookup` resolved:
    ``"memory"``, ``"disk"``, ``"miss"``, ``"stale"`` (format-version
    mismatch) or ``"corrupt"`` (garbage on disk, deleted and treated as a
    miss).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self.directory = directory
        self.max_entries = max_entries
        self.last_lookup: str = "miss"
        self._entries: Dict[str, Dict[str, object]] = {}
        self._store: Optional[SharedJsonStore] = None
        if directory is not None:
            self._store = SharedJsonStore(
                directory, namespace="compile", max_entries=max_entries
            )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def shared_store(self) -> Optional[SharedJsonStore]:
        return self._store

    def lookup(self, key: str) -> Optional[CompilationResult]:
        """Return the cached result for ``key``, or None."""
        entry = self._entries.get(key)
        self.last_lookup = "memory"
        if entry is None and self._store is not None:
            candidate = self._store.get(key)
            self.last_lookup = self._store.last_get  # "hit"/"miss"/"corrupt"
            if candidate is not None:
                if candidate.get("format") == CACHE_FORMAT:
                    entry = candidate
                    self._entries[key] = entry
                    self.last_lookup = "disk"
                else:
                    self.last_lookup = "stale"
        if entry is None:
            if self.last_lookup in ("memory", "hit"):
                self.last_lookup = "miss"
            return None
        return result_from_json(entry)

    def store(self, key: str, result: CompilationResult) -> None:
        entry = result_to_json(result)
        self._entries[key] = entry
        if self._store is not None:
            self._store.put(key, entry)


def cached_compile_module(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    verify: bool = True,
    unroll_factor: int = 0,
    session: Optional[CompilerSession] = None,
    cache: Optional[CompileCache] = None,
) -> CompilationResult:
    """:func:`compile_module`, memoized through ``cache``.

    ``cache=None`` degrades to a plain compile.  On a hit the stored
    result is rehydrated, ``cache.hits`` is bumped, the stored counter
    snapshot is replayed into the target session (so a hit accumulates
    the same counters a compile into that session would have), and a
    ``cache_hit`` analysis remark records the key and snapshot — cached
    compiles are distinguishable from cold ones instead of silently
    skipping the pipeline.  On a miss the module is compiled normally
    (into ``session`` or an ephemeral child, exactly as
    ``compile_module`` would) and the result is stored before being
    returned.  A corrupt on-disk entry is a miss with a ``cache_corrupt``
    analysis remark, never an exception.
    """
    if cache is None:
        return compile_module(
            module, config, target,
            verify=verify, unroll_factor=unroll_factor, session=session,
        )
    target_session = session if session is not None else current_session()
    key = cache_key(module, config, target, unroll_factor)
    with target_session.metrics.timer(
        "cache.lookup.seconds", "wall seconds per compile-cache lookup"
    ):
        # The shared store records its own stats (corrupt entries,
        # cross-worker hits) into the ambient session; scope it to the
        # same session the hit/miss counters target.
        with use_session(target_session):
            cached = cache.lookup(key)
    if cache.last_lookup == "corrupt":
        target_session.remarks.analysis(
            "cache",
            f"cache_corrupt: discarded garbage entry {key[:12]} for "
            f"{config.name}/{target.name}; compiling cold",
            key=key,
            config=config.name,
            target=target.name,
        )
    if cached is not None:
        STAT_HITS.resolve(target_session.stats).add()
        _gauge_hit_rate(target_session)
        for name, value in sorted(cached.counters.items()):
            target_session.stats.stat(name).add(value)
        target_session.remarks.analysis(
            "cache",
            f"cache_hit: replayed {config.name}/{target.name} compile of "
            f"module {module.name} from key {key[:12]}",
            key=key,
            config=config.name,
            target=target.name,
            unroll=unroll_factor,
            counters=dict(cached.counters),
        )
        return cached
    STAT_MISSES.resolve(target_session.stats).add()
    _gauge_hit_rate(target_session)
    result = compile_module(
        module, config, target,
        verify=verify, unroll_factor=unroll_factor, session=session,
    )
    with use_session(target_session):  # eviction stats, as for lookup
        cache.store(key, result)
    return result


def _gauge_hit_rate(session: CompilerSession) -> None:
    """Keep the ``cache.hit_rate`` gauge current with the session's
    hit/miss counters (no-op while metrics are disabled)."""
    if not session.metrics.enabled:
        return
    hits = session.stats.value(STAT_HITS.name)
    misses = session.stats.value(STAT_MISSES.name)
    total = hits + misses
    if total:
        session.metrics.gauge(
            "cache.hit_rate", hits / total,
            description="compile-cache hits / lookups for this session",
        )
