"""Content-addressed compile cache.

Compilation is pure given (module text, configuration, target, unroll
factor): the pipeline clones its input, the cost model is deterministic,
and PR 4's per-compilation sessions mean no hidden global state feeds the
result.  That makes the *printed module text* a sound cache key — two
modules that print identically compile identically.

The cache stores everything needed to rebuild a
:class:`~repro.vectorizer.pipeline.CompilationResult` without running a
single pass: the output module (as text, reparsed on hit), the
vectorization report, the counter snapshot, and the recorded wall times.
A cache hit therefore returns a result equal to a cold compile on every
deterministic field; ``compile_seconds``/``phase_seconds`` are replayed
from the original measurement (they describe the compile that produced
the artifact, not the lookup).

Entries live in an in-memory dict and, when a directory is given, as one
JSON file per key so separate processes (or CI steps) can share warm
artifacts.  Hits and misses are counted through the ambient
:class:`~repro.observe.session.CompilerSession` via ``cache.hits`` /
``cache.misses``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe import STAT
from ..observe.session import CompilerSession, current_session
from .pipeline import CompilationResult, compile_module
from .report import FunctionReport, GraphReport, VectorizationReport
from .reorder import SuperNodeRecord
from .slp import SLPConfig

STAT_HITS = STAT("cache.hits", "compile cache hits")
STAT_MISSES = STAT("cache.misses", "compile cache misses")

#: bump when the serialized entry layout changes; stale-version entries
#: on disk are treated as misses rather than deserialization errors
CACHE_FORMAT = 1


def cache_key(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    unroll_factor: int = 0,
) -> str:
    """SHA-256 over the printed module text and the compile parameters."""
    hasher = hashlib.sha256()
    hasher.update(print_module(module).encode("utf-8"))
    hasher.update(f"\x00{config.name}\x00{target.name}\x00{unroll_factor}".encode())
    return hasher.hexdigest()


# -- (de)serialization --------------------------------------------------------------


def _record_to_json(record: SuperNodeRecord) -> Dict[str, object]:
    return {
        "kind": record.kind,
        "lanes": record.lanes,
        "size": record.size,
        "family": record.family.name,
        "contains_inverse": record.contains_inverse,
        "vectorized": record.vectorized,
        "leaf_swaps": record.leaf_swaps,
        "trunk_swaps": record.trunk_swaps,
    }


def _record_from_json(data: Dict[str, object]) -> SuperNodeRecord:
    return SuperNodeRecord(
        kind=data["kind"],
        lanes=data["lanes"],
        size=data["size"],
        family=Opcode[data["family"]],
        contains_inverse=data["contains_inverse"],
        vectorized=data["vectorized"],
        leaf_swaps=data["leaf_swaps"],
        trunk_swaps=data["trunk_swaps"],
    )


def _graph_to_json(graph: GraphReport) -> Dict[str, object]:
    return {
        "function": graph.function,
        "block": graph.block,
        "lanes": graph.lanes,
        "cost": graph.cost,
        "vectorized": graph.vectorized,
        "node_count": graph.node_count,
        "gather_count": graph.gather_count,
        "supernodes": [_record_to_json(r) for r in graph.supernodes],
        "dump": graph.dump,
        "kind": graph.kind,
        "gather_reasons": list(graph.gather_reasons),
    }


def _graph_from_json(data: Dict[str, object]) -> GraphReport:
    return GraphReport(
        function=data["function"],
        block=data["block"],
        lanes=data["lanes"],
        cost=data["cost"],
        vectorized=data["vectorized"],
        node_count=data["node_count"],
        gather_count=data["gather_count"],
        supernodes=[_record_from_json(r) for r in data["supernodes"]],
        dump=data["dump"],
        kind=data["kind"],
        gather_reasons=list(data["gather_reasons"]),
    )


def result_to_json(result: CompilationResult) -> Dict[str, object]:
    """Serialize a compilation result to a JSON-compatible document."""
    return {
        "format": CACHE_FORMAT,
        "module": print_module(result.module),
        "report": {
            "config_name": result.report.config_name,
            "functions": [
                {"name": fn.name, "graphs": [_graph_to_json(g) for g in fn.graphs]}
                for fn in result.report.functions
            ],
        },
        "compile_seconds": result.compile_seconds,
        "phase_seconds": dict(result.phase_seconds),
        "counters": dict(result.counters),
    }


def result_from_json(data: Dict[str, object]) -> CompilationResult:
    """Rebuild a compilation result from :func:`result_to_json` output."""
    report = VectorizationReport(
        config_name=data["report"]["config_name"],
        functions=[
            FunctionReport(
                name=fn["name"],
                graphs=[_graph_from_json(g) for g in fn["graphs"]],
            )
            for fn in data["report"]["functions"]
        ],
    )
    return CompilationResult(
        module=parse_module(data["module"]),
        report=report,
        compile_seconds=data["compile_seconds"],
        phase_seconds=dict(data["phase_seconds"]),
        counters=dict(data["counters"]),
    )


# -- the cache ----------------------------------------------------------------------


class CompileCache:
    """In-memory compile cache with optional on-disk persistence.

    With ``directory=None`` entries live only in this process.  With a
    directory, every entry is also written as ``<key>.json`` and lookups
    fall back to disk on an in-memory miss, so a warm directory survives
    process boundaries (the CI warm/hit check relies on this).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._entries: Dict[str, Dict[str, object]] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def lookup(self, key: str) -> Optional[CompilationResult]:
        """Return the cached result for ``key``, or None."""
        entry = self._entries.get(key)
        if entry is None and self.directory is not None:
            path = self._path(key)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    candidate = json.load(handle)
                if candidate.get("format") == CACHE_FORMAT:
                    entry = candidate
                    self._entries[key] = entry
        if entry is None:
            return None
        return result_from_json(entry)

    def store(self, key: str, result: CompilationResult) -> None:
        entry = result_to_json(result)
        self._entries[key] = entry
        if self.directory is not None:
            path = self._path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)


def cached_compile_module(
    module: Module,
    config: SLPConfig,
    target: TargetMachine = DEFAULT_TARGET,
    verify: bool = True,
    unroll_factor: int = 0,
    session: Optional[CompilerSession] = None,
    cache: Optional[CompileCache] = None,
) -> CompilationResult:
    """:func:`compile_module`, memoized through ``cache``.

    ``cache=None`` degrades to a plain compile.  On a hit the stored
    result is rehydrated, ``cache.hits`` is bumped, the stored counter
    snapshot is replayed into the target session (so a hit accumulates
    the same counters a compile into that session would have), and a
    ``cache_hit`` analysis remark records the key and snapshot — cached
    compiles are distinguishable from cold ones instead of silently
    skipping the pipeline.  On a miss the module is compiled normally
    (into ``session`` or an ephemeral child, exactly as
    ``compile_module`` would) and the result is stored before being
    returned.
    """
    if cache is None:
        return compile_module(
            module, config, target,
            verify=verify, unroll_factor=unroll_factor, session=session,
        )
    target_session = session if session is not None else current_session()
    key = cache_key(module, config, target, unroll_factor)
    with target_session.metrics.timer(
        "cache.lookup.seconds", "wall seconds per compile-cache lookup"
    ):
        cached = cache.lookup(key)
    if cached is not None:
        STAT_HITS.resolve(target_session.stats).add()
        _gauge_hit_rate(target_session)
        for name, value in sorted(cached.counters.items()):
            target_session.stats.stat(name).add(value)
        target_session.remarks.analysis(
            "cache",
            f"cache_hit: replayed {config.name}/{target.name} compile of "
            f"module {module.name} from key {key[:12]}",
            key=key,
            config=config.name,
            target=target.name,
            unroll=unroll_factor,
            counters=dict(cached.counters),
        )
        return cached
    STAT_MISSES.resolve(target_session.stats).add()
    _gauge_hit_rate(target_session)
    result = compile_module(
        module, config, target,
        verify=verify, unroll_factor=unroll_factor, session=session,
    )
    cache.store(key, result)
    return result


def _gauge_hit_rate(session: CompilerSession) -> None:
    """Keep the ``cache.hit_rate`` gauge current with the session's
    hit/miss counters (no-op while metrics are disabled)."""
    if not session.metrics.enabled:
        return
    hits = session.stats.value(STAT_HITS.name)
    misses = session.stats.value(STAT_MISSES.name)
    total = hits + misses
    if total:
        session.metrics.gauge(
            "cache.hit_rate", hits / total,
            description="compile-cache hits / lookups for this session",
        )
