"""Horizontal reduction vectorization (LLVM's ``-slp-vectorize-hor``).

The paper enables horizontal-reduction support for both the LSLP baseline
and SN-SLP (Section V).  A reduction is a chain of one commutative
operator — and, under SN-SLP, its inverse — folding many leaves into one
scalar, e.g. ``s = a0 + a1 - a2 + a3 ...``.  Vectorization:

1. grow the chain (the same :func:`build_lane_chain` machinery behind the
   Multi-/Super-Node) from a root whose value is consumed by non-chain
   code;
2. partition the leaves by APO: the '+' leaves sum into one vector
   accumulator, the '-' leaves into another (this is what makes inverse
   operators legal inside reductions — exactly the Super-Node insight);
3. bundle each APO group into vector-width chunks through the ordinary
   SLP tree builder (so dot-product-style ``sum(a[i]*b[i])`` chains get
   wide loads and wide multiplies for free);
4. combine chunk vectors, subtract the '-' accumulator, and fold the final
   vector to scalar with a log2 shuffle/add ladder;
5. fold any leftover (non-chunked) leaves in scalar form.

Cost follows the same convention as the SLP graph: negative = profitable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import (
    BinaryInst,
    Instruction,
    Opcode,
    base_opcode,
    inverse_opcode,
    same_operator_family,
)
from ..ir.types import vector_of
from ..ir.values import Constant, Value
from ..machine.costmodel import CostModel
from ..machine.isa import VectorISA
from ..observe import STAT
from .codegen import emit_node_tree
from .graph import NodeKind, SLPNode
from .reorder import SuperNodeRecord
from .supernode import APO_MINUS, APO_PLUS, LaneChain, build_lane_chain

#: chains eligible as reduction roots (min/max reductions are future work)
REDUCTION_FAMILIES = (Opcode.ADD, Opcode.FADD)

#: LLVM requires a minimum number of reduced values before trying
MIN_REDUCTION_LEAVES = 4

_STAT_CHAINS_FOUND = STAT(
    "reduction.chains-found", "Horizontal reduction chains detected"
)
_STAT_PLUS_LEAVES = STAT(
    "reduction.plus-leaves", "Reduction leaves in the '+' APO partition"
)
_STAT_MINUS_LEAVES = STAT(
    "reduction.minus-leaves", "Reduction leaves in the '-' APO partition"
)


@dataclass
class ReductionCandidate:
    """A detected horizontal reduction chain."""

    root: BinaryInst
    chain: LaneChain
    plus_leaves: List[Value]
    minus_leaves: List[Value]

    @property
    def leaf_count(self) -> int:
        return len(self.plus_leaves) + len(self.minus_leaves)

    @property
    def contains_inverse(self) -> bool:
        return bool(self.minus_leaves) or any(
            unit.is_inverse for _, unit in self.chain.trunks()
        )

    def record(self, kind: str) -> SuperNodeRecord:
        return SuperNodeRecord(
            kind=kind,
            lanes=1,
            size=self.chain.size(),
            family=self.chain.family,
            contains_inverse=self.contains_inverse,
        )


def _is_reduction_root(inst: Instruction, consumed_ids: set) -> bool:
    """The root's value must leave the chain: no same-family binary user."""
    if not isinstance(inst, BinaryInst):
        return False
    if base_opcode(inst.opcode) not in REDUCTION_FAMILIES:
        return False
    if not inst.type.is_scalar:
        return False
    if id(inst) in consumed_ids or inst.num_uses == 0:
        return False
    for user in inst.users():
        if isinstance(user, BinaryInst) and same_operator_family(
            user.opcode, inst.opcode
        ):
            return False
    return True


def find_reduction_candidates(
    block,
    allow_inverse: bool,
    fast_math: bool,
    consumed_ids: set,
    max_trunks: int = 32,
) -> List[ReductionCandidate]:
    """Scan a block for vectorizable reduction chains (seed kind 2)."""
    candidates: List[ReductionCandidate] = []
    for inst in block:
        if not _is_reduction_root(inst, consumed_ids):
            continue
        chain = build_lane_chain(
            inst, allow_inverse=allow_inverse, fast_math=fast_math,
            max_trunks=max_trunks,
        )
        if chain is None:
            continue
        if any(id(unit.inst) in consumed_ids for _, unit in chain.trunks()):
            continue
        plus: List[Value] = []
        minus: List[Value] = []
        for apo, value in chain.signed_terms():
            (minus if apo else plus).append(value)
        if len(plus) + len(minus) < MIN_REDUCTION_LEAVES:
            continue
        _STAT_CHAINS_FOUND.add()
        _STAT_PLUS_LEAVES.add(len(plus))
        _STAT_MINUS_LEAVES.add(len(minus))
        candidates.append(ReductionCandidate(inst, chain, plus, minus))
    return candidates


def _order_group(leaves: Sequence[Value], scorer) -> List[Value]:
    """Greedy look-ahead ordering of one APO group.

    Tries every leaf as the sequence start and extends by the
    highest-scoring next leaf (the same greedy shape as Listing 3's
    ``buildGroup``); returns the best-scoring full sequence.
    """
    leaves = list(leaves)
    if len(leaves) <= 2:
        return leaves
    best_sequence = leaves
    best_score = -1
    for start_index, start in enumerate(leaves):
        remaining = leaves[:start_index] + leaves[start_index + 1 :]
        sequence = [start]
        total = 0
        while remaining:
            scored = max(
                range(len(remaining)),
                key=lambda k: scorer.score_pair(sequence[-1], remaining[k]),
            )
            total += scorer.score_pair(sequence[-1], remaining[scored])
            sequence.append(remaining.pop(scored))
        if total > best_score:
            best_score = total
            best_sequence = sequence
    return best_sequence


@dataclass
class ReductionPlan:
    """Chunking decision and cost for one candidate."""

    candidate: ReductionCandidate
    #: (apo, chunk tree) pairs; every chunk is one vector's worth of leaves
    chunks: List[Tuple[bool, SLPNode]]
    #: (apo, value) leftovers folded in scalar form
    leftovers: List[Tuple[bool, Value]]
    vector_width: int
    total_cost: float = 0.0
    nodes: List[SLPNode] = field(default_factory=list)


def plan_reduction(
    candidate: ReductionCandidate,
    builder,  # _GraphBuilder from .slp (kept untyped to avoid a cycle)
    isa: VectorISA,
    model: CostModel,
) -> Optional[ReductionPlan]:
    """Chunk the candidate's leaves and cost the transformation."""
    element = candidate.root.type
    widths = isa.legal_lane_counts(element)
    if not widths:
        return None
    chunks: List[Tuple[bool, SLPNode]] = []
    leftovers: List[Tuple[bool, Value]] = []
    for apo, group in ((APO_PLUS, candidate.plus_leaves), (APO_MINUS, candidate.minus_leaves)):
        # A reduction is commutative within an APO group, so the leaves may
        # be bundled in *any* order: pick the look-ahead-best ordering
        # (which lines consecutive loads up in lane order).
        leaves = _order_group(group, builder.scorer)
        start = 0
        while len(leaves) - start >= 2:
            width = next((w for w in widths if w <= len(leaves) - start), None)
            if width is None:
                break
            chunk = tuple(leaves[start : start + width])
            chunks.append((apo, builder.build_value_bundle(chunk)))
            start += width
        leftovers.extend((apo, leaf) for leaf in leaves[start:])
    if not chunks:
        return None

    # Assign each chunk its subtree nodes and a marginal cost: keep a chunk
    # only when vectorizing its leaves beats folding them one by one in
    # scalar form (chunk subtree delta + one combining vector op vs
    # ``width`` scalar fold ops).  Unprofitable chunks — e.g. a group whose
    # loads are not adjacent and would all gather — demote to leftovers.
    from .cost import _gather_cost, _scalar_sum, _vector_cost  # local reuse

    base = base_opcode(candidate.root.opcode)
    scalar_op = model.scalar_op_cost(base, element)
    assigned: set = set()
    profitable_chunks: List[Tuple[bool, SLPNode, List[SLPNode], float]] = []
    for apo, node in chunks:
        subtree = _subtree_nodes(node, assigned)
        delta = 0.0
        for sub in subtree:
            if sub.kind is NodeKind.GATHER:
                sub.cost = _gather_cost(sub, model)
            else:
                sub.cost = _vector_cost(sub, model) - _scalar_sum(sub, model)
            delta += sub.cost
        vec_type = vector_of(element, node.vec_type.count)
        marginal = delta + model.vector_op_cost(base, vec_type)
        if marginal < node.vec_type.count * scalar_op:
            profitable_chunks.append((apo, node, subtree, delta))
        else:
            leftovers.extend((apo, value) for value in node.lanes)
    if not profitable_chunks:
        return None

    # All chunk vectors must share one width to combine (vector widening
    # is future work).  Keep the width covering the most leaves; demote
    # the rest to scalar leftovers.
    by_width: Dict[int, int] = {}
    for _, node, _, _ in profitable_chunks:
        width = node.vec_type.count
        by_width[width] = by_width.get(width, 0) + width
    main_width = max(by_width, key=lambda w: (by_width[w], w))
    kept: List[Tuple[bool, SLPNode]] = []
    kept_nodes: List[SLPNode] = []
    for apo, node, subtree, _ in profitable_chunks:
        if node.vec_type.count == main_width:
            kept.append((apo, node))
            kept_nodes.extend(subtree)
        else:
            leftovers.extend((apo, value) for value in node.lanes)
    if not kept:
        return None

    plan = ReductionPlan(
        candidate=candidate,
        chunks=kept,
        leftovers=leftovers,
        vector_width=main_width,
    )
    plan.nodes = kept_nodes
    plan.total_cost = _cost_plan(plan, model)
    return plan


def _subtree_nodes(root: SLPNode, assigned: set) -> List[SLPNode]:
    """Nodes reachable from ``root`` not yet assigned to an earlier chunk."""
    found: List[SLPNode] = []

    def walk(node: SLPNode) -> None:
        if id(node) in assigned:
            return
        assigned.add(id(node))
        found.append(node)
        for operand in node.operands:
            walk(operand)

    walk(root)
    return found


def _cost_plan(plan: ReductionPlan, model: CostModel) -> float:
    candidate = plan.candidate
    element = candidate.root.type
    base = base_opcode(candidate.root.opcode)
    vec_type = vector_of(element, plan.vector_width)
    scalar_op = model.scalar_op_cost(base, element)
    vector_op = model.vector_op_cost(base, vec_type)

    # Savings: the whole scalar chain disappears (size() trunk ops)...
    cost = -candidate.chain.size() * scalar_op
    # ...and the kept chunk subtrees contribute their (already computed)
    # per-node deltas.
    cost += sum(node.cost for node in plan.nodes)
    # Combining chunk vectors (plus group and minus group, then the cross
    # subtraction when both exist).
    num_combines = max(len(plan.chunks) - 1, 0)
    has_plus = any(not apo for apo, _ in plan.chunks)
    has_minus = any(apo for apo, _ in plan.chunks)
    cost += num_combines * vector_op
    # The shuffle ladder: log2(width) - 1 vector stages + the final scalar op.
    stages = max(int(math.log2(plan.vector_width)) - 1, 0)
    cost += stages * (model.shuffle_cost * 2 + vector_op)
    cost += 2 * model.extract_cost + scalar_op
    if has_minus and not has_plus:
        cost += scalar_op  # negation of the reduced '-' accumulator
    # Leftover leaves are folded with scalar ops (same count as before, so
    # they are cost-neutral relative to the removed chain ops — but the
    # chain saving above already assumed *all* ops vanish, so charge them).
    cost += len(plan.leftovers) * scalar_op
    return cost


def emit_reduction(plan: ReductionPlan) -> Value:
    """Emit the vectorized reduction immediately before the chain root and
    rewire the root's users to the new scalar; returns the scalar."""
    candidate = plan.candidate
    root = candidate.root
    base = base_opcode(root.opcode)
    inverse = inverse_opcode(base)
    assert inverse is not None
    builder = IRBuilder()
    builder.position_before(root)
    memo: Dict[int, Value] = {}

    accumulators: Dict[bool, Optional[Value]] = {APO_PLUS: None, APO_MINUS: None}
    for apo, node in plan.chunks:
        value = emit_node_tree(node, builder, memo)
        current = accumulators[apo]
        accumulators[apo] = (
            value if current is None else builder.binop(base, current, value)
        )

    plus_vec = accumulators[APO_PLUS]
    minus_vec = accumulators[APO_MINUS]
    negate_result = False
    if plus_vec is not None and minus_vec is not None:
        combined = builder.binop(inverse, plus_vec, minus_vec)
    elif plus_vec is not None:
        combined = plus_vec
    else:
        assert minus_vec is not None
        combined = minus_vec
        negate_result = True

    # log2 shuffle ladder down to 2 lanes, then extract + scalar op.
    width = combined.type.count  # type: ignore[union-attr]
    while width > 2:
        half = width // 2
        low = builder.shufflevector(combined, combined, list(range(half)))
        high = builder.shufflevector(combined, combined, list(range(half, width)))
        combined = builder.binop(base, low, high)
        width = half
    lane0 = builder.extractelement(combined, 0)
    lane1 = builder.extractelement(combined, 1)
    scalar: Value = builder.binop(base, lane0, lane1)
    if negate_result:
        zero = Constant(root.type, 0.0 if root.type.is_float else 0)
        scalar = builder.binop(inverse, zero, scalar)

    for apo, leaf in plan.leftovers:
        scalar = builder.binop(inverse if apo else base, scalar, leaf)

    root.replace_all_uses_with(scalar)
    return scalar
