"""SLP auto-vectorization: vanilla bottom-up SLP, LSLP (Multi-Node) and
Super-Node SLP — the paper's contribution."""

from .lookahead import DEFAULT_SCORES, LookAheadScorer, ScoreTable
from .supernode import (
    APO_MINUS,
    APO_PLUS,
    LaneChain,
    Leaf,
    Slot,
    TrunkUnit,
    build_lane_chain,
    chain_family_of,
)
from .reorder import SuperNode, SuperNodeRecord
from .graph import NodeKind, SLPGraph, SLPNode
from .seeds import collect_store_seeds
from .legality import (
    bundle_is_schedulable_loads,
    bundle_is_schedulable_stores,
    lanes_form_valid_bundle,
    loads_are_consecutive,
)
from .cost import compute_graph_cost, is_profitable
from .codegen import CodegenError, emit_node_tree, emit_vector_code
from .reduction import (
    ReductionCandidate,
    ReductionPlan,
    emit_reduction,
    find_reduction_candidates,
    plan_reduction,
)
from .report import FunctionReport, GraphReport, VectorizationReport
from .slp import (
    ALL_CONFIGS,
    LSLP_CONFIG,
    O3_CONFIG,
    SLP_CONFIG,
    SNSLP_CONFIG,
    SLPConfig,
    SLPVectorizer,
    config_named,
)
from .pipeline import CompilationResult, clone_module, compile_module
from .cache import CompileCache, cache_key, cached_compile_module

__all__ = [
    "LookAheadScorer", "ScoreTable", "DEFAULT_SCORES",
    "LaneChain", "TrunkUnit", "Leaf", "Slot", "build_lane_chain",
    "chain_family_of", "APO_PLUS", "APO_MINUS",
    "SuperNode", "SuperNodeRecord",
    "NodeKind", "SLPNode", "SLPGraph",
    "collect_store_seeds",
    "bundle_is_schedulable_loads", "bundle_is_schedulable_stores",
    "lanes_form_valid_bundle", "loads_are_consecutive",
    "compute_graph_cost", "is_profitable",
    "emit_vector_code", "emit_node_tree", "CodegenError",
    "ReductionCandidate", "ReductionPlan", "find_reduction_candidates",
    "plan_reduction", "emit_reduction",
    "FunctionReport", "GraphReport", "VectorizationReport",
    "SLPConfig", "SLPVectorizer", "config_named",
    "O3_CONFIG", "SLP_CONFIG", "LSLP_CONFIG", "SNSLP_CONFIG", "ALL_CONFIGS",
    "CompilationResult", "clone_module", "compile_module",
    "CompileCache", "cache_key", "cached_compile_module",
]
