"""The bottom-up SLP vectorizer driver (Figure 1 of the paper).

``SLPVectorizer.run_on_function`` implements the outer loop: collect seed
bundles, grow an SLP graph per seed (``buildGraph``, Listing 1), evaluate
its cost, and emit vector code when profitable.  The Multi-Node (LSLP) and
Super-Node (SN-SLP) extensions hook into graph construction exactly where
Listing 1 calls ``buildSuperNode``: when a bundle of same-family binary
instructions is encountered, the chain is formed, reordered
(Listings 2/3) and re-emitted before ordinary bundling resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.dce import eliminate_dead_code
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    CmpInst,
    Instruction,
    LoadInst,
    Opcode,
    SelectInst,
    StoreInst,
    base_opcode,
    is_commutative,
)
from ..ir.module import Module
from ..ir.types import VectorType, vector_of
from ..ir.values import Value
from ..machine.targets import TargetMachine
from ..observe import STAT, current_journal, current_remarks, current_tracer
from ..observe.dot import chains_to_dot, graph_to_dot
from ..robust.bisect import BISECT
from .codegen import emit_vector_code
from .cost import compute_graph_cost, is_profitable
from .graph import NodeKind, SLPGraph, SLPNode
from .legality import (
    bundle_is_schedulable_loads,
    bundle_is_schedulable_stores,
    lanes_form_valid_bundle,
    loads_are_consecutive,
)
from .lookahead import LookAheadScorer
from .reorder import SuperNode, SuperNodeRecord
from .seeds import collect_store_seeds
from .supernode import apo_str
from .report import FunctionReport, GraphReport, VectorizationReport


_STAT_GRAPHS_BUILT = STAT("slp.graphs-built", "SLP graphs grown from seed bundles")
_STAT_GRAPHS_VECTORIZED = STAT(
    "slp.graphs-vectorized", "graphs accepted and emitted as vector code"
)
_STAT_COST_REJECTS = STAT(
    "slp.graphs-rejected-cost", "graphs rejected by the profitability threshold"
)
_STAT_SEEDS_UNSCHEDULABLE = STAT(
    "slp.seeds-unschedulable", "seed store bundles that failed scheduling checks"
)
_STAT_GATHER_NODES = STAT("slp.gather-nodes", "gather nodes in built graphs")
_STAT_CHAIN_UNDOS = STAT(
    "supernode.undo-events", "chain massages reverted after an unprofitable graph"
)
_STAT_REDUCTIONS_VECTORIZED = STAT(
    "reduction.vectorized", "horizontal reductions emitted as vector code"
)
_STAT_REDUCTIONS_REJECTED = STAT(
    "reduction.rejected", "horizontal reduction candidates rejected (plan or cost)"
)
_STAT_MINMAX_VECTORIZED = STAT(
    "minmax.vectorized", "min/max reductions emitted as vector code"
)
_STAT_MINMAX_REJECTED = STAT(
    "minmax.rejected", "min/max reduction candidates rejected (plan or cost)"
)


@dataclass(frozen=True)
class SLPConfig:
    """One vectorizer configuration (the paper's O3 / LSLP / SN-SLP)."""

    name: str
    enable_vectorizer: bool = True
    #: LSLP Multi-Node: chains of one commutative opcode
    enable_multinode: bool = False
    #: Super-Node: chains including the inverse opcode
    enable_supernode: bool = False
    #: Super-Node trunk movement (ablation switch; Section IV-C3)
    enable_trunk_swaps: bool = True
    #: look-ahead recursion depth for operand scoring
    lookahead_depth: int = 2
    #: vanilla commutative operand alignment during bundling (footnote 2)
    commutative_reordering: bool = True
    #: operand visit order in Listing 2 (root-most first per the paper)
    visit_root_first: bool = True
    #: horizontal-reduction vectorization (clang's -slp-vectorize-hor,
    #: which the paper enables for both LLVM and SN-SLP)
    enable_reductions: bool = True
    max_trunks: int = 16
    max_depth: int = 14
    profitability_threshold: float = 0.0

    @property
    def chains_enabled(self) -> bool:
        return self.enable_multinode or self.enable_supernode


#: the paper's evaluated configurations
O3_CONFIG = SLPConfig("O3", enable_vectorizer=False)
SLP_CONFIG = SLPConfig("SLP")
LSLP_CONFIG = SLPConfig("LSLP", enable_multinode=True)
SNSLP_CONFIG = SLPConfig("SN-SLP", enable_multinode=True, enable_supernode=True)

ALL_CONFIGS = (O3_CONFIG, SLP_CONFIG, LSLP_CONFIG, SNSLP_CONFIG)


def config_named(name: str) -> SLPConfig:
    for config in ALL_CONFIGS:
        if config.name.lower() == name.lower():
            return config
    raise KeyError(f"unknown vectorizer config: {name}")


class _GraphBuilder:
    """Grows one SLP graph from a seed store bundle (Listing 1)."""

    def __init__(
        self,
        vectorizer: "SLPVectorizer",
        seed_stores: Sequence[StoreInst],
        function: Function,
        anchor: Optional[Instruction] = None,
    ) -> None:
        self.vectorizer = vectorizer
        self.config = vectorizer.config
        self.scorer = vectorizer.scorer
        self.function = function
        self.seed_stores = list(seed_stores)
        if anchor is not None:
            self.anchor = anchor
            self.block = anchor.parent
        else:
            self.block = seed_stores[0].parent
            assert self.block is not None
            self.anchor = max(self.seed_stores, key=self.block.index_of)
        assert self.block is not None
        self.nodes: List[SLPNode] = []
        self.claimed: Set[int] = set()
        self.supernodes: List[SuperNodeRecord] = []
        #: SuperNode objects formed while growing this graph, in formation
        #: order — undone in reverse when the graph is unprofitable
        self.formed_chains: List[SuperNode] = []
        #: bundle dedup: identical lane tuples map to one node, so shared
        #: subexpressions (e.g. a select reusing its cmp's operands) reuse
        #: the vectorized value instead of gathering the claimed scalars
        self._bundle_cache: Dict[Tuple[int, ...], SLPNode] = {}
        #: instructions emitted by a Super-Node's generateCode: inner
        #: bundles over them belong to an already-built node, so the
        #: massaging hook must not re-form a chain over them (Listing 1,
        #: line 26: "If already building a Super-Node, grow it").
        self.in_supernode: Set[int] = set()

    # -- entry point -----------------------------------------------------------------

    def build(self) -> Optional[SLPGraph]:
        if not bundle_is_schedulable_stores(self.seed_stores, self.anchor):
            return None
        lanes = tuple(self.seed_stores)
        vec_type = vector_of(self.seed_stores[0].value.type, len(lanes))
        for store in self.seed_stores:
            self.claimed.add(id(store))
        value_node = self._build_bundle(
            tuple(store.value for store in self.seed_stores), depth=1
        )
        root = SLPNode(
            kind=NodeKind.STORE,
            lanes=lanes,
            vec_type=vec_type,
            operands=[value_node],
        )
        self.nodes.append(root)
        return SLPGraph(
            root=root,
            nodes=self.nodes,
            block=self.block,
            anchor=self.anchor,
            supernodes=self.supernodes,
        )

    def build_value_bundle(self, lanes: Tuple[Value, ...]) -> SLPNode:
        """Grow a tree for an arbitrary value bundle (used by the
        horizontal-reduction vectorizer for leaf groups)."""
        return self._build_bundle(lanes, depth=1)

    # -- recursive bundling (buildGraph, Listing 1) ---------------------------------------

    def _gather(self, lanes: Tuple[Value, ...], reason: str) -> SLPNode:
        vec_type = vector_of(lanes[0].type, len(lanes))
        node = SLPNode(
            kind=NodeKind.GATHER, lanes=lanes, vec_type=vec_type, reason=reason
        )
        self.nodes.append(node)
        return node

    def _build_bundle(
        self, lanes: Tuple[Value, ...], depth: int, allow_chain: bool = True
    ) -> SLPNode:
        key = tuple(id(v) for v in lanes)
        cached = self._bundle_cache.get(key)
        if cached is not None:
            return cached
        node = self._build_bundle_uncached(lanes, depth, allow_chain)
        self._bundle_cache[tuple(id(v) for v in node.lanes)] = node
        self._bundle_cache[key] = node
        return node

    def _build_bundle_uncached(
        self, lanes: Tuple[Value, ...], depth: int, allow_chain: bool = True
    ) -> SLPNode:
        if depth > self.config.max_depth:
            return self._gather(lanes, "max depth")
        failure = lanes_form_valid_bundle(lanes)
        if failure is not None:
            return self._gather(lanes, failure)
        instrs: Tuple[Instruction, ...] = lanes  # type: ignore[assignment]
        if any(
            id(inst) in self.claimed or id(inst) in self.vectorizer.consumed_ids
            for inst in instrs
        ):
            return self._gather(lanes, "already in a vector bundle")
        # i1 (comparison results) vectorizes as a mask alongside the data
        # width; every other element type must be natively supported.
        if instrs[0].type.bit_width != 1 and not (
            self.vectorizer.target.isa.supports_element(instrs[0].type)
        ):
            return self._gather(lanes, "element type not vectorizable")
        if any(inst.parent is not self.block for inst in instrs):
            return self._gather(lanes, "lane outside seed block")

        # -- Super-Node / Multi-Node hook (buildSuperNode, Listing 1 line 12)
        if (
            allow_chain
            and self.config.chains_enabled
            and all(isinstance(inst, BinaryInst) for inst in instrs)
            and not any(id(inst) in self.in_supernode for inst in instrs)
        ):
            rewritten = self._try_chain_massage(instrs)
            if rewritten is not None:
                return self._build_bundle(rewritten, depth, allow_chain=False)

        node = self._classify(instrs, depth)
        return node

    def _classify(self, instrs: Tuple[Instruction, ...], depth: int) -> SLPNode:
        first = instrs[0]
        vec_type = vector_of(first.type, len(instrs))

        if isinstance(first, LoadInst):
            if not all(isinstance(i, LoadInst) for i in instrs):
                return self._gather(instrs, "mixed opcodes")
            from .legality import loads_are_reversed

            reversed_run = False
            if not loads_are_consecutive(instrs):  # type: ignore[arg-type]
                if loads_are_reversed(instrs):  # type: ignore[arg-type]
                    reversed_run = True
                else:
                    return self._gather(instrs, "non-consecutive loads")
            if not bundle_is_schedulable_loads(
                instrs, self.anchor, self.seed_stores  # type: ignore[arg-type]
            ):
                return self._gather(instrs, "unschedulable loads")
            node = self._make_node(NodeKind.LOAD, instrs, vec_type, [])
            node.load_reversed = reversed_run
            return node

        if isinstance(first, BinaryInst):
            if not all(isinstance(i, BinaryInst) for i in instrs):
                return self._gather(instrs, "mixed opcodes")
            opcodes = tuple(i.opcode for i in instrs)
            same = all(op is opcodes[0] for op in opcodes)
            same_family = all(
                base_opcode(op) is base_opcode(opcodes[0]) for op in opcodes
            )
            if not same_family:
                return self._gather(instrs, "mixed opcode families")
            left, right = self._aligned_operands(instrs)  # type: ignore[arg-type]
            kind = NodeKind.VECTOR if same else NodeKind.ALT
            operands = [
                self._build_bundle(tuple(left), depth + 1),
                self._build_bundle(tuple(right), depth + 1),
            ]
            return self._make_node(
                kind, instrs, vec_type, operands,
                lane_opcodes=None if same else opcodes,
            )

        if isinstance(first, CallInst):
            if not all(
                isinstance(i, CallInst) and i.callee == first.callee
                for i in instrs
            ):
                return self._gather(instrs, "mixed callees")
            operand_nodes = []
            for arg_index in range(first.num_operands):
                args = tuple(i.operand(arg_index) for i in instrs)
                operand_nodes.append(self._build_bundle(args, depth + 1))
            return self._make_node(NodeKind.CALL, instrs, vec_type, operand_nodes)

        if isinstance(first, CastInst):
            if not all(
                isinstance(i, CastInst) and i.opcode is first.opcode
                for i in instrs
            ):
                return self._gather(instrs, "mixed casts")
            sources = tuple(i.operand(0) for i in instrs)
            if any(s.type is not sources[0].type for s in sources):
                return self._gather(instrs, "mixed cast source types")
            operand = self._build_bundle(sources, depth + 1)
            return self._make_node(NodeKind.VECTOR, instrs, vec_type, [operand])

        if isinstance(first, SelectInst):
            if not all(isinstance(i, SelectInst) for i in instrs):
                return self._gather(instrs, "mixed opcodes")
            operands = [
                self._build_bundle(
                    tuple(i.operand(k) for i in instrs), depth + 1
                )
                for k in range(3)
            ]
            return self._make_node(NodeKind.VECTOR, instrs, vec_type, operands)

        if isinstance(first, CmpInst):
            if not all(
                isinstance(i, CmpInst)
                and i.opcode is first.opcode
                and i.predicate is first.predicate
                for i in instrs
            ):
                return self._gather(instrs, "mixed comparisons")
            operands = [
                self._build_bundle(
                    tuple(i.operand(k) for i in instrs), depth + 1
                )
                for k in range(2)
            ]
            return self._make_node(NodeKind.VECTOR, instrs, vec_type, operands)

        return self._gather(instrs, f"unsupported opcode {first.opcode}")

    def _make_node(
        self,
        kind: NodeKind,
        instrs: Tuple[Instruction, ...],
        vec_type: VectorType,
        operands: List[SLPNode],
        lane_opcodes: Optional[Tuple[Opcode, ...]] = None,
    ) -> SLPNode:
        for inst in instrs:
            self.claimed.add(id(inst))
        node = SLPNode(
            kind=kind,
            lanes=instrs,
            vec_type=vec_type,
            operands=operands,
            lane_opcodes=lane_opcodes,
            from_supernode=bool(instrs)
            and all(id(inst) in self.in_supernode for inst in instrs),
        )
        self.nodes.append(node)
        return node

    # -- commutative operand alignment (footnote 2) ----------------------------------------

    def _aligned_operands(
        self, instrs: Sequence[BinaryInst]
    ) -> Tuple[List[Value], List[Value]]:
        left: List[Value] = [instrs[0].lhs]
        right: List[Value] = [instrs[0].rhs]
        for inst in instrs[1:]:
            lhs, rhs = inst.lhs, inst.rhs
            if self.config.commutative_reordering and is_commutative(inst.opcode):
                straight = self.scorer.score_pair(left[-1], lhs) + self.scorer.score_pair(
                    right[-1], rhs
                )
                crossed = self.scorer.score_pair(left[-1], rhs) + self.scorer.score_pair(
                    right[-1], lhs
                )
                if crossed > straight:
                    lhs, rhs = rhs, lhs
            left.append(lhs)
            right.append(rhs)
        return left, right

    # -- Super-Node hook ---------------------------------------------------------------------

    def _try_chain_massage(
        self, instrs: Tuple[Instruction, ...]
    ) -> Optional[Tuple[Value, ...]]:
        """Form, reorder and re-emit a Multi-/Super-Node over ``instrs``.

        Returns the rewritten per-lane roots, or None when no chain forms.
        """
        node = SuperNode.build(
            instrs,
            allow_inverse=self.config.enable_supernode,
            allow_trunk_swaps=(
                self.config.enable_supernode and self.config.enable_trunk_swaps
            ),
            fast_math=self.function.fast_math,
            max_trunks=self.config.max_trunks,
        )
        if node is None:
            return None
        # Chains must not overlap instructions already claimed by this
        # graph or consumed by an earlier vectorized graph.
        for chain in node.chains:
            for _, unit in chain.trunks():
                if unit.inst is None:
                    return None
                if (
                    id(unit.inst) in self.claimed
                    or id(unit.inst) in self.vectorizer.consumed_ids
                ):
                    return None
        journal = current_journal()
        if journal.enabled:
            journal.emit(
                "supernode",
                f"formed {node.kind}-node: {node.num_lanes} lanes x "
                f"{node.size()} trunks in the {node.chains[0].family.name} "
                f"family"
                + (" (contains inverse ops)" if node.contains_inverse else ""),
                node_kind=node.kind,
                lanes=node.num_lanes,
                size=node.size(),
                family=node.chains[0].family.name,
                contains_inverse=node.contains_inverse,
                lane_apos=[
                    "".join(
                        apo_str(apo, chain.family)
                        for apo in chain.slot_apos().values()
                    )
                    for chain in node.chains
                ],
                chains=[repr(chain) for chain in node.chains],
                dot_before=chains_to_dot(
                    node.saved_chains, title=f"{node.kind}-node before reorder"
                ),
            )
        applied = node.reorder_leaves_and_trunks(
            self.scorer, visit_root_first=self.config.visit_root_first
        )
        if journal.enabled:
            leaf_swaps = sum(c.leaf_swaps_applied for c in node.chains)
            trunk_swaps = sum(c.trunk_swaps_applied for c in node.chains)
            journal.emit(
                "reorder",
                f"reorder applied groups at {applied}/{node.num_slots} "
                f"operand index(es): {leaf_swaps} leaf swap(s), "
                f"{trunk_swaps} trunk swap(s)",
                applied=applied,
                slots=node.num_slots,
                leaf_swaps=leaf_swaps,
                trunk_swaps=trunk_swaps,
                chains=[repr(chain) for chain in node.chains],
                dot_after=chains_to_dot(
                    node.chains, title=f"{node.kind}-node after reorder"
                ),
            )
        new_roots = node.generate_code()
        for inst in node.emitted_instructions:
            self.in_supernode.add(id(inst))
        self.supernodes.append(node.record())
        self.formed_chains.append(node)
        return tuple(new_roots)


class SLPVectorizer:
    """Runs one vectorizer configuration over functions/modules."""

    def __init__(self, target: TargetMachine, config: SLPConfig) -> None:
        self.target = target
        self.config = config
        self.scorer = LookAheadScorer(depth=config.lookahead_depth)
        #: instructions consumed by emitted vector code (across graphs)
        self.consumed_ids: Set[int] = set()

    # -- function / module drivers ----------------------------------------------------------

    def run_on_function(self, function: Function) -> FunctionReport:
        report = FunctionReport(name=function.name)
        if not self.config.enable_vectorizer:
            return report
        with current_tracer().span("slp.function", function=function.name):
            for block in list(function.blocks):
                self._run_on_block(function, block, report)
            eliminate_dead_code(function)
        return report

    def run_on_module(self, module: Module) -> VectorizationReport:
        report = VectorizationReport(config_name=self.config.name)
        for function in module.functions.values():
            report.functions.append(self.run_on_function(function))
        return report

    # -- the Figure 1 worklist loop -----------------------------------------------------------

    def _run_on_block(
        self, function: Function, block: BasicBlock, report: FunctionReport
    ) -> None:
        self._vectorize_store_graphs(function, block, report)
        if self.config.enable_reductions:
            self._vectorize_reductions(function, block, report)
            self._vectorize_minmax(function, block, report)

    def _vectorize_store_graphs(
        self, function: Function, block: BasicBlock, report: FunctionReport
    ) -> None:
        seeds = collect_store_seeds(block, self.target.isa)  # step 1
        for seed in seeds:  # steps 2, 7, 8
            if any(id(store) in self.consumed_ids for store in seed):
                continue
            if any(store.parent is None for store in seed):
                continue  # erased by a previous graph's codegen
            if not BISECT.should_run(
                f"slp store-graph @{function.name}/{block.name} "
                f"lanes={len(seed)}"
            ):
                continue  # vetoed by -opt-bisect-limit style gating
            journal = current_journal()
            with current_tracer().span(
                "slp.graph", function=function.name, block=block.name,
                lanes=len(seed),
            ):
                if journal.enabled:
                    journal.begin_graph(function.name, block.name, "store")
                    journal.emit(
                        "seed",
                        f"seeded from {len(seed)} adjacent stores",
                        lanes=len(seed),
                    )
                builder = _GraphBuilder(self, seed, function)
                graph = builder.build()  # step 3
                if graph is None:
                    _STAT_SEEDS_UNSCHEDULABLE.add()
                    current_remarks().missed(
                        "slp",
                        "seed store bundle is not schedulable",
                        function=function.name,
                        block=block.name,
                        seed="store",
                        lanes=len(seed),
                    )
                    if journal.enabled:
                        journal.emit(
                            "seed-rejected",
                            "seed store bundle is not schedulable",
                            lanes=len(seed),
                        )
                        journal.end_graph()
                    continue
                _STAT_GRAPHS_BUILT.add()
                _STAT_GATHER_NODES.add(len(graph.gather_nodes()))
                compute_graph_cost(graph, self.target.cost_model)  # step 4
                profitable = is_profitable(
                    graph, self.config.profitability_threshold
                )  # step 5
                if journal.enabled:
                    journal.emit(
                        "graph",
                        f"built graph: {len(graph.nodes)} node(s), "
                        f"{len(graph.gather_nodes())} gather(s)",
                        nodes=len(graph.nodes),
                        gathers=len(graph.gather_nodes()),
                        gather_reasons=sorted(
                            {n.reason for n in graph.gather_nodes()}
                        ),
                        dump=graph.dump(),
                        dot=graph_to_dot(graph),
                    )
                    journal.emit(
                        "cost",
                        f"cost {graph.total_cost:+.1f} (vector "
                        f"{graph.vector_cost:.1f} - scalar "
                        f"{graph.scalar_cost:.1f} + extract "
                        f"{graph.extract_cost:.1f}) -> "
                        f"{'vectorized' if profitable else 'rejected'}",
                        total=graph.total_cost,
                        scalar=graph.scalar_cost,
                        vector=graph.vector_cost,
                        extract=graph.extract_cost,
                        threshold=self.config.profitability_threshold,
                        verdict="profitable" if profitable else "unprofitable",
                    )
                if profitable:
                    emit_vector_code(graph)  # step 6b
                    self.consumed_ids |= graph.internal_instruction_ids()
                    for record in graph.supernodes:
                        record.vectorized = True
                    _STAT_GRAPHS_VECTORIZED.add()
                else:
                    _STAT_COST_REJECTS.add()
                    # Listing 1 line 53: revert the Super-Node code massaging
                    # so the function is left exactly as the vectorizer found
                    # it.  Nested chains are undone innermost-last-formed
                    # first, remapping leaves whose originals were erased by
                    # an inner chain's own generate_code.
                    leaf_remap: Dict[int, Value] = {}
                    for node in reversed(builder.formed_chains):
                        restored = node.undo_code(leaf_remap)
                        _STAT_CHAIN_UNDOS.add()
                        if journal.enabled:
                            journal.emit(
                                "undo",
                                f"reverted {node.kind}-node massage "
                                f"({node.num_lanes} lanes x {node.size()} "
                                f"trunks) after cost rejection",
                                kind=node.kind,
                                lanes=node.num_lanes,
                                size=node.size(),
                            )
                        for original, replacement in zip(
                            node.original_roots, restored
                        ):
                            leaf_remap[id(original)] = replacement
                self._remark_graph_outcome(
                    function, block, graph, profitable, seed_kind="store"
                )
                if journal.enabled:
                    journal.end_graph()
            report.graphs.append(
                GraphReport(
                    function=function.name,
                    block=block.name,
                    lanes=graph.root.num_lanes,
                    cost=graph.total_cost,
                    vectorized=profitable,
                    node_count=len(graph.nodes),
                    gather_count=len(graph.gather_nodes()),
                    supernodes=list(graph.supernodes),
                    dump=graph.dump(),
                    gather_reasons=[
                        node.reason for node in graph.gather_nodes()
                    ],
                )
            )

    # -- optimization remarks -----------------------------------------------------------------

    def _remark_graph_outcome(
        self,
        function: Function,
        block: BasicBlock,
        graph: "SLPGraph",
        profitable: bool,
        seed_kind: str,
    ) -> None:
        """Emit passed/missed (+ gather analysis) remarks for one graph."""
        if not current_remarks().enabled:
            return
        where = dict(function=function.name, block=block.name, seed=seed_kind)
        reasons: Dict[str, int] = {}
        for node in graph.gather_nodes():
            reasons[node.reason] = reasons.get(node.reason, 0) + 1
        if profitable:
            current_remarks().passed(
                "slp",
                f"vectorized {graph.root.num_lanes}-lane {seed_kind} graph "
                f"(cost {graph.total_cost:+.1f})",
                cost=graph.total_cost,
                lanes=graph.root.num_lanes,
                supernodes=len(graph.supernodes),
                **where,
            )
            # Partial gathers survive inside vectorized graphs; surface
            # them as analysis remarks (see VectorizationReport.
            # partial_gather_reasons for the histogram view).
            for reason, count in sorted(reasons.items()):
                current_remarks().analysis(
                    "slp",
                    f"partial gather in vectorized graph: {reason}",
                    count=count,
                    **where,
                )
        else:
            current_remarks().missed(
                "slp",
                f"graph not profitable (cost {graph.total_cost:+.1f} >= "
                f"{self.config.profitability_threshold:g})",
                cost=graph.total_cost,
                lanes=graph.root.num_lanes,
                gather_reasons=reasons,
                **where,
            )

    # -- horizontal reductions (-slp-vectorize-hor) -----------------------------------------------

    def _vectorize_reductions(
        self, function: Function, block: BasicBlock, report: FunctionReport
    ) -> None:
        from .graph import NodeKind
        from .reduction import (
            emit_reduction,
            find_reduction_candidates,
            plan_reduction,
        )

        candidates = find_reduction_candidates(
            block,
            allow_inverse=self.config.enable_supernode,
            fast_math=function.fast_math,
            consumed_ids=self.consumed_ids,
            max_trunks=max(self.config.max_trunks, 32),
        )
        for candidate in candidates:
            if candidate.root.parent is None:
                continue  # erased by a previous transformation
            if not BISECT.should_run(
                f"reduction @{function.name}/{block.name} "
                f"leaves={candidate.leaf_count}"
            ):
                continue
            journal = current_journal()
            with current_tracer().span(
                "slp.reduction", function=function.name, block=block.name,
                leaves=candidate.leaf_count,
            ):
                if journal.enabled:
                    journal.begin_graph(function.name, block.name, "reduction")
                    journal.emit(
                        "seed",
                        f"seeded from a {candidate.leaf_count}-leaf "
                        f"horizontal reduction chain",
                        leaves=candidate.leaf_count,
                    )
                builder = _GraphBuilder(self, (), function, anchor=candidate.root)
                plan = plan_reduction(
                    candidate, builder, self.target.isa, self.target.cost_model
                )
            if plan is None:
                _STAT_REDUCTIONS_REJECTED.add()
                current_remarks().missed(
                    "reduction",
                    f"no profitable chunking for {candidate.leaf_count} leaves",
                    function=function.name,
                    block=block.name,
                    seed="reduction",
                    leaves=candidate.leaf_count,
                )
                if journal.enabled:
                    journal.emit(
                        "seed-rejected",
                        f"no profitable chunking for {candidate.leaf_count} "
                        f"leaves",
                        leaves=candidate.leaf_count,
                    )
                    journal.end_graph()
                continue
            profitable = plan.total_cost < self.config.profitability_threshold
            if journal.enabled:
                journal.emit(
                    "cost",
                    f"cost {plan.total_cost:+.1f} at VF={plan.vector_width} "
                    f"-> {'vectorized' if profitable else 'rejected'}",
                    total=plan.total_cost,
                    width=plan.vector_width,
                    threshold=self.config.profitability_threshold,
                    verdict="profitable" if profitable else "unprofitable",
                )
            if profitable:
                _STAT_REDUCTIONS_VECTORIZED.add()
                current_remarks().passed(
                    "reduction",
                    f"vectorized {candidate.leaf_count}-leaf reduction at "
                    f"VF={plan.vector_width} (cost {plan.total_cost:+.1f})",
                    function=function.name,
                    block=block.name,
                    seed="reduction",
                    cost=plan.total_cost,
                    width=plan.vector_width,
                )
                emit_reduction(plan)
                for _, unit in candidate.chain.trunks():
                    self.consumed_ids.add(id(unit.inst))
                for node in plan.nodes:
                    if node.kind is not NodeKind.GATHER:
                        for inst in node.instructions():
                            self.consumed_ids.add(id(inst))
            else:
                _STAT_REDUCTIONS_REJECTED.add()
                current_remarks().missed(
                    "reduction",
                    f"reduction not profitable (cost {plan.total_cost:+.1f} >= "
                    f"{self.config.profitability_threshold:g})",
                    function=function.name,
                    block=block.name,
                    seed="reduction",
                    cost=plan.total_cost,
                    width=plan.vector_width,
                )
            kind = "super" if self.config.enable_supernode else "multi"
            record = candidate.record(kind)
            record.vectorized = profitable
            report.graphs.append(
                GraphReport(
                    function=function.name,
                    block=block.name,
                    lanes=plan.vector_width,
                    cost=plan.total_cost,
                    vectorized=profitable,
                    node_count=len(plan.nodes),
                    gather_count=sum(
                        1 for n in plan.nodes if n.kind is NodeKind.GATHER
                    ),
                    supernodes=[record],
                    dump=(
                        f"reduction over {candidate.leaf_count} leaves "
                        f"(+{len(candidate.plus_leaves)}/-{len(candidate.minus_leaves)}) "
                        f"at VF={plan.vector_width}, cost {plan.total_cost:+.1f}"
                    ),
                    kind="reduction",
                )
            )
            if journal.enabled:
                journal.end_graph()

    # -- min/max reductions (the other half of -slp-vectorize-hor) ---------------------------------

    def _vectorize_minmax(
        self, function: Function, block: BasicBlock, report: FunctionReport
    ) -> None:
        from .graph import NodeKind
        from .minmax import emit_minmax, find_minmax_candidates, plan_minmax

        candidates = find_minmax_candidates(
            block, fast_math=function.fast_math, consumed_ids=self.consumed_ids
        )
        for candidate in candidates:
            if candidate.root.parent is None:
                continue
            if not BISECT.should_run(
                f"minmax @{function.name}/{block.name} "
                f"leaves={candidate.leaf_count}"
            ):
                continue
            journal = current_journal()
            with current_tracer().span(
                "slp.minmax", function=function.name, block=block.name,
                leaves=candidate.leaf_count,
            ):
                if journal.enabled:
                    journal.begin_graph(function.name, block.name, "minmax")
                    journal.emit(
                        "seed",
                        f"seeded from a {candidate.leaf_count}-leaf "
                        f"{candidate.callee} reduction chain",
                        leaves=candidate.leaf_count,
                    )
                builder = _GraphBuilder(self, (), function, anchor=candidate.root)
                plan = plan_minmax(
                    candidate, builder, self.target.isa, self.target.cost_model
                )
            if plan is None:
                _STAT_MINMAX_REJECTED.add()
                current_remarks().missed(
                    "minmax",
                    f"no profitable chunking for {candidate.leaf_count}-leaf "
                    f"{candidate.callee} reduction",
                    function=function.name,
                    block=block.name,
                    seed="minmax",
                    leaves=candidate.leaf_count,
                )
                if journal.enabled:
                    journal.emit(
                        "seed-rejected",
                        f"no profitable chunking for {candidate.leaf_count}"
                        f"-leaf {candidate.callee} reduction",
                        leaves=candidate.leaf_count,
                    )
                    journal.end_graph()
                continue
            profitable = plan.total_cost < self.config.profitability_threshold
            if journal.enabled:
                journal.emit(
                    "cost",
                    f"cost {plan.total_cost:+.1f} at VF={plan.vector_width} "
                    f"-> {'vectorized' if profitable else 'rejected'}",
                    total=plan.total_cost,
                    width=plan.vector_width,
                    threshold=self.config.profitability_threshold,
                    verdict="profitable" if profitable else "unprofitable",
                )
            if profitable:
                _STAT_MINMAX_VECTORIZED.add()
                current_remarks().passed(
                    "minmax",
                    f"vectorized {candidate.leaf_count}-leaf {candidate.callee} "
                    f"reduction at VF={plan.vector_width} "
                    f"(cost {plan.total_cost:+.1f})",
                    function=function.name,
                    block=block.name,
                    seed="minmax",
                    cost=plan.total_cost,
                    width=plan.vector_width,
                )
                emit_minmax(plan)
                for call in candidate.chain_calls:
                    self.consumed_ids.add(id(call))
                for node in plan.nodes:
                    if node.kind is not NodeKind.GATHER:
                        for inst in node.instructions():
                            self.consumed_ids.add(id(inst))
            else:
                _STAT_MINMAX_REJECTED.add()
                current_remarks().missed(
                    "minmax",
                    f"{candidate.callee} reduction not profitable "
                    f"(cost {plan.total_cost:+.1f} >= "
                    f"{self.config.profitability_threshold:g})",
                    function=function.name,
                    block=block.name,
                    seed="minmax",
                    cost=plan.total_cost,
                    width=plan.vector_width,
                )
            record = candidate.record()
            record.vectorized = profitable
            report.graphs.append(
                GraphReport(
                    function=function.name,
                    block=block.name,
                    lanes=plan.vector_width,
                    cost=plan.total_cost,
                    vectorized=profitable,
                    node_count=len(plan.nodes),
                    gather_count=sum(
                        1 for n in plan.nodes if n.kind is NodeKind.GATHER
                    ),
                    supernodes=[record],
                    dump=(
                        f"{candidate.callee} reduction over "
                        f"{candidate.leaf_count} leaves at "
                        f"VF={plan.vector_width}, cost {plan.total_cost:+.1f}"
                    ),
                    kind="minmax-reduction",
                )
            )
            if journal.enabled:
                journal.end_graph()
