"""Multi-lane Super-Node reordering: Listings 1-3 of the paper.

:class:`SuperNode` spans one :class:`~repro.vectorizer.supernode.LaneChain`
per vector lane.  ``reorder_leaves_and_trunks`` is Listing 2: it walks the
fat node's operand indexes root-most first and, for each index, greedily
finds the best group of leaves across lanes; ``_build_group`` is Listing 3:
given the chosen Lane-0 leaf it extends the group lane by lane, maximizing
the LSLP look-ahead score subject to the Super-Node legality rules
(leaf-move legality, optionally enabled trunk movement).

``generate_code`` then rewrites each lane's IR to match the reordered
model, which is the "massage the code on-the-fly" step that lets the plain
bottom-up SLP bundling that follows see fully isomorphic code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import BinaryInst, Instruction, Opcode
from ..ir.values import Value
from ..observe import STAT, current_journal
from ..robust.faults import current_faults
from .lookahead import LookAheadScorer
from .supernode import LaneChain, Leaf, Slot, TrunkUnit, build_lane_chain

_STAT_NODES_FORMED = STAT(
    "supernode.nodes-formed", "Multi-/Super-Nodes formed across all lanes"
)
_STAT_LEAF_MOVES = STAT(
    "supernode.leaf-moves-applied", "leaf swaps applied by the reorder search"
)
_STAT_TRUNK_MOVES = STAT(
    "supernode.trunk-moves-applied", "trunk swaps applied by the reorder search"
)
_STAT_MOVES_PROBED = STAT(
    "supernode.moves-probed", "candidate leaf placements probed for legality"
)
_STAT_MOVES_REJECTED = STAT(
    "supernode.moves-rejected-apo",
    "candidate leaf placements rejected by APO legality",
)
_STAT_GROUPS_APPLIED = STAT(
    "supernode.groups-applied", "operand indexes for which a lane group was applied"
)
_STAT_GROUPS_FAILED = STAT(
    "supernode.groups-failed", "operand indexes left as-is (no legal group)"
)


@dataclass
class SuperNodeRecord:
    """Statistics record for one formed Multi-/Super-Node.

    ``size`` is the per-lane trunk count — the paper's "node size (depth)"
    reported in Figures 6/7/9/10.
    """

    kind: str  # "multi" or "super"
    lanes: int
    size: int
    family: Opcode
    contains_inverse: bool
    vectorized: bool = False  # set once the owning graph is emitted
    #: moves the reorder actually applied across all lanes (observability)
    leaf_swaps: int = 0
    trunk_swaps: int = 0


class SuperNode:
    """A Multi-/Super-Node across all vector lanes of one bundle."""

    def __init__(
        self,
        chains: List[LaneChain],
        roots: List[BinaryInst],
        allow_trunk_swaps: bool,
        kind: str,
    ) -> None:
        self.chains = chains
        self.roots = roots
        self.allow_trunk_swaps = allow_trunk_swaps
        self.kind = kind
        self.contains_inverse = any(
            unit.is_inverse for chain in chains for _, unit in chain.trunks()
        )
        #: pristine copy saved for undoing (Listing 1 line 53: the whole
        #: massage is reverted when the graph turns out unprofitable)
        self.saved_chains: List[LaneChain] = [chain.clone() for chain in chains]
        self.original_roots: List[BinaryInst] = list(roots)
        self.emitted_instructions: List[BinaryInst] = []

    # -- construction (buildSuperNode, Listing 1 lines 41-53) -----------------------

    @classmethod
    def build(
        cls,
        roots: Sequence[Instruction],
        allow_inverse: bool,
        allow_trunk_swaps: bool,
        fast_math: bool,
        max_trunks: int = 16,
    ) -> Optional["SuperNode"]:
        """Try to form a node over ``roots`` (one per lane).

        Legality (the ``areCompatible`` checks): every lane must grow a
        chain of >= 2 trunks in the same operator family, the lanes must
        expose the same number of operand slots, and no instruction may be
        claimed by two lanes.
        """
        if len(roots) < 2:
            return None
        chains: List[LaneChain] = []
        for root in roots:
            if not isinstance(root, BinaryInst):
                return None
            chain = build_lane_chain(
                root, allow_inverse=allow_inverse, fast_math=fast_math,
                max_trunks=max_trunks,
            )
            if chain is None:
                return None
            chains.append(chain)
        family = chains[0].family
        if any(chain.family is not family for chain in chains):
            return None
        slot_count = len(chains[0].slots())
        if any(len(chain.slots()) != slot_count for chain in chains):
            return None
        claimed: Set[int] = set()
        for chain in chains:
            for _, unit in chain.trunks():
                if unit.inst is None or id(unit.inst) in claimed:
                    return None
                claimed.add(id(unit.inst))
        kind = "super" if allow_inverse else "multi"
        _STAT_NODES_FORMED.add()
        return cls(chains, list(roots), allow_trunk_swaps, kind)

    # -- properties ---------------------------------------------------------------------

    @property
    def num_lanes(self) -> int:
        return len(self.chains)

    @property
    def num_slots(self) -> int:
        return len(self.chains[0].slots())

    def size(self) -> int:
        """Per-lane trunk count (all lanes are equal-sized by construction)."""
        return self.chains[0].size()

    def record(self) -> SuperNodeRecord:
        return SuperNodeRecord(
            kind=self.kind,
            lanes=self.num_lanes,
            size=self.size(),
            family=self.chains[0].family,
            contains_inverse=self.contains_inverse,
            leaf_swaps=sum(chain.leaf_swaps_applied for chain in self.chains),
            trunk_swaps=sum(chain.trunk_swaps_applied for chain in self.chains),
        )

    # -- Listing 2: reorderLeavesAndTrunks ----------------------------------------------------

    def reorder_leaves_and_trunks(
        self,
        scorer: LookAheadScorer,
        visit_root_first: bool = True,
    ) -> int:
        """Greedily reorder leaves (and trunks, when enabled) for maximal
        isomorphism.  Returns the number of operand indexes for which a
        group was applied.  ``visit_root_first=False`` reverses the operand
        visit order (used by the ablation benchmark)."""
        current_faults().fire("reorder.reorder")
        journal = current_journal()
        applied = 0
        # Applied-move statistics are measured as deltas over the chains'
        # own counters: failed placements restore them (place_leaf is
        # transactional) and legality probes run on clones, so the deltas
        # count exactly the moves that survive — the same numbers
        # :meth:`record` later reports per node.
        leaf_moves_before = sum(c.leaf_swaps_applied for c in self.chains)
        trunk_moves_before = sum(c.trunk_swaps_applied for c in self.chains)
        locked: List[Dict[Slot, Value]] = [dict() for _ in self.chains]
        used: List[Set[int]] = [set() for _ in self.chains]
        # Slot lists are positional and stable: trunk swaps move unit
        # contents, never tree shape, so indexes remain meaningful while
        # we mutate the chains.
        order = list(range(self.num_slots))
        if not visit_root_first:
            order.reverse()
        for op_index in order:
            # Placement legality per (lane, candidate) is invariant while
            # this operand index is being decided, so probe it once here
            # instead of inside every group-building combination.
            placeable = [
                {
                    id(candidate): self._can_place(
                        lane, candidate, self.chains[lane].slots()[op_index], locked
                    )
                    for candidate in self._candidates(lane, used)
                }
                for lane in range(self.num_lanes)
            ]
            scored: Optional[List[Tuple[List[Value], int]]] = (
                [] if journal.enabled else None
            )
            group = self._find_best_group(
                op_index, scorer, locked, used, placeable, scored
            )
            if journal.enabled and scored:
                # The look-ahead score matrix for this operand index: one
                # row per Lane-0 candidate, ranked best-first.
                ranked = sorted(
                    enumerate(scored), key=lambda pair: (-pair[1][1], pair[0])
                )
                best_refs = [v.ref() for v in ranked[0][1][0]]
                best_score = ranked[0][1][1]
                runner_up = ranked[1][1][1] if len(ranked) > 1 else None
                versus = f" vs {runner_up}" if runner_up is not None else ""
                journal.emit(
                    "lookahead",
                    f"look-ahead picked {{{', '.join(best_refs)}}} at operand "
                    f"{op_index} (score {best_score}{versus})",
                    op_index=op_index,
                    best_score=best_score,
                    runner_up_score=runner_up,
                    matrix=[
                        {"group": [v.ref() for v in grp], "score": score}
                        for _, (grp, score) in ranked
                    ],
                )
            if group is None:
                _STAT_GROUPS_FAILED.add()
                if journal.enabled:
                    journal.emit(
                        "group",
                        f"no legal group at operand {op_index}; lanes left "
                        f"as-is",
                        op_index=op_index,
                        applied=False,
                    )
                # No legal group: leave the lanes as they are for this
                # operand index, but lock whatever currently sits there so
                # later indexes cannot disturb it.
                for lane, chain in enumerate(self.chains):
                    slot = chain.slots()[op_index]
                    value = chain.leaf_at(slot).value
                    locked[lane][slot] = value
                    used[lane].add(id(value))
                continue
            moves_before = (
                [
                    (c.leaf_swaps_applied, c.trunk_swaps_applied)
                    for c in self.chains
                ]
                if journal.enabled
                else None
            )
            for lane, leaf in enumerate(group):
                chain = self.chains[lane]
                slot = chain.slots()[op_index]
                moved = chain.place_leaf(leaf, slot, locked[lane])
                if not moved:  # pragma: no cover - guarded by can_place_leaf
                    raise AssertionError("group member failed to place")
                locked[lane][slot] = leaf
                used[lane].add(id(leaf))
            applied += 1
            _STAT_GROUPS_APPLIED.add()
            if journal.enabled and moves_before is not None:
                legalized: List[str] = []
                lane_moves: List[Dict[str, int]] = []
                for lane, chain in enumerate(self.chains):
                    leaf_delta = chain.leaf_swaps_applied - moves_before[lane][0]
                    trunk_delta = (
                        chain.trunk_swaps_applied - moves_before[lane][1]
                    )
                    lane_moves.append(
                        {"lane": lane, "leaf_swaps": leaf_delta,
                         "trunk_swaps": trunk_delta}
                    )
                    if trunk_delta:
                        legalized.append(f"trunk swap legalized lane {lane}")
                    elif leaf_delta:
                        legalized.append(f"leaf swap legalized lane {lane}")
                detail = f"; {', '.join(legalized)}" if legalized else ""
                journal.emit(
                    "group",
                    f"locked group {{{', '.join(v.ref() for v in group)}}} at "
                    f"operand {op_index}{detail}",
                    op_index=op_index,
                    applied=True,
                    group=[v.ref() for v in group],
                    lane_moves=lane_moves,
                )
        _STAT_LEAF_MOVES.add(
            sum(c.leaf_swaps_applied for c in self.chains) - leaf_moves_before
        )
        _STAT_TRUNK_MOVES.add(
            sum(c.trunk_swaps_applied for c in self.chains) - trunk_moves_before
        )
        return applied

    def _find_best_group(
        self,
        op_index: int,
        scorer: LookAheadScorer,
        locked: List[Dict[Slot, Value]],
        used: List[Set[int]],
        placeable: List[Dict[int, bool]],
        scored: Optional[List[Tuple[List[Value], int]]] = None,
    ) -> Optional[List[Value]]:
        """Try every legal Lane-0 candidate; keep the best-scoring group.

        ``scored`` (journal support) collects every candidate group with
        its look-ahead score — the score matrix behind the decision.
        """
        best_group: Optional[List[Value]] = None
        best_score = -1
        for candidate in self._candidates(0, used):
            if not placeable[0].get(id(candidate), False):
                continue
            group = self._build_group(candidate, scorer, used, placeable)
            if group is None:
                continue
            score = scorer.score_group(group)
            if scored is not None:
                scored.append((group, score))
            if score > best_score:
                best_score = score
                best_group = group
        return best_group

    # -- Listing 3: buildGroup -------------------------------------------------------------------

    def _build_group(
        self,
        left_op: Value,
        scorer: LookAheadScorer,
        used: List[Set[int]],
        placeable: List[Dict[int, bool]],
    ) -> Optional[List[Value]]:
        """Extend ``left_op`` (Lane 0) into a full cross-lane group."""
        group = [left_op]
        left = left_op
        for lane in range(1, self.num_lanes):
            best_right: Optional[Value] = None
            best_score = -1
            for right in self._candidates(lane, used):
                if not placeable[lane].get(id(right), False):
                    continue
                score = scorer.score_pair(left, right)
                if score > best_score:
                    best_score = score
                    best_right = right
            if best_right is None:
                return None
            group.append(best_right)
            left = best_right
        return group

    def _candidates(self, lane: int, used: List[Set[int]]) -> List[Value]:
        seen: Set[int] = set()
        result: List[Value] = []
        for value in self.chains[lane].leaf_values():
            if id(value) in used[lane] or id(value) in seen:
                continue
            seen.add(id(value))
            result.append(value)
        return result

    def _can_place(
        self,
        lane: int,
        value: Value,
        target: Slot,
        locked: List[Dict[Slot, Value]],
    ) -> bool:
        chain = self.chains[lane]
        _STAT_MOVES_PROBED.add()
        current = chain.slot_of_value(value)
        if current == target:
            return True
        if chain.can_swap_leaves(current, target):
            ok = chain.can_place_leaf(value, target, locked[lane])
        elif not self.allow_trunk_swaps:
            ok = False
        else:
            ok = chain.can_place_leaf(value, target, locked[lane])
        if not ok:
            _STAT_MOVES_REJECTED.add()
        return ok

    # -- code generation (SN.generateCode, Listing 1 line 51) ------------------------------------------

    def generate_code(self) -> List[BinaryInst]:
        """Rewrite each lane's IR to match the (reordered) model.

        Fresh instructions are built immediately before each old root and
        the old root's uses are rewired; the superseded scalar chain goes
        dead and is swept by DCE later.  Returns the new per-lane roots.
        """
        current_faults().fire("reorder.generate-code")
        new_roots: List[BinaryInst] = []
        self.emitted_instructions = []
        for chain, old_root in zip(self.chains, self.roots):
            builder = IRBuilder()
            builder.position_before(old_root)

            def emit(node) -> Value:
                if isinstance(node, Leaf):
                    return node.value
                lhs = emit(node.children[0])
                rhs = emit(node.children[1])
                inst = builder.binop(node.opcode, lhs, rhs)
                self.emitted_instructions.append(inst)
                return inst

            new_root = emit(chain.root)
            old_root.replace_all_uses_with(new_root)
            new_roots.append(new_root)  # type: ignore[arg-type]
            self._erase_superseded(chain)
        self.roots = new_roots
        return new_roots

    def undo_code(
        self, leaf_remap: Optional[Dict[int, Value]] = None
    ) -> List[BinaryInst]:
        """Revert :meth:`generate_code`: re-emit the *original* (pre-
        reorder) expression trees and erase the massaged chain.

        Called by the driver when the SLP graph built over the massaged
        code turns out not to be profitable (Listing 1, line 53's
        save-for-undoing).  The restored scalar code is structurally
        identical to the original, so later seed bundles see the program
        exactly as the vectorizer found it.

        ``leaf_remap`` maps ids of values that no longer exist (roots of
        *nested* Super-Nodes that were undone first, whose originals were
        erased during their own generate_code) to their restored
        replacements.
        """
        if leaf_remap:
            for chain in self.saved_chains:
                for slot in chain.slots():
                    leaf = chain.leaf_at(slot)
                    replacement = leaf_remap.get(id(leaf.value))
                    if replacement is not None:
                        leaf.value = replacement
        restored: List[BinaryInst] = []
        current_roots = self.roots
        for saved, massaged_root in zip(self.saved_chains, current_roots):
            builder = IRBuilder()
            builder.position_before(massaged_root)

            def emit(node) -> Value:
                if isinstance(node, Leaf):
                    return node.value
                lhs = emit(node.children[0])
                rhs = emit(node.children[1])
                return builder.binop(node.opcode, lhs, rhs)

            original_root = emit(saved.root)
            massaged_root.replace_all_uses_with(original_root)
            restored.append(original_root)  # type: ignore[arg-type]
            self._erase_superseded_roots([massaged_root])
        self.roots = restored
        self.chains = [chain.clone() for chain in self.saved_chains]
        return restored

    @staticmethod
    def _erase_superseded_roots(roots: List[BinaryInst]) -> None:
        """Erase a now-dead chain rooted at each of ``roots``."""
        worklist = [root for root in roots]
        while worklist:
            inst = worklist.pop()
            if (
                isinstance(inst, BinaryInst)
                and inst.parent is not None
                and inst.num_uses == 0
            ):
                operands = list(inst.operands)
                inst.erase_from_parent()
                worklist.extend(
                    op for op in operands if isinstance(op, BinaryInst)
                )

    @staticmethod
    def _erase_superseded(chain: LaneChain) -> None:
        """Erase the old scalar chain once nothing uses it.

        Leaving it to the end-of-function DCE would be correct for the
        final IR but would distort the cost model in the meantime: the
        dead chain still *uses* the leaf values, so the graph builder
        would see phantom external users and charge extract penalties.
        """
        units = [unit for _, unit in chain.trunks()]
        # Children before parents is wrong here: parents hold the uses, so
        # erase root-first (pre-order is already root-first).
        for unit in units:
            inst = unit.inst
            if inst is not None and inst.parent is not None and inst.num_uses == 0:
                inst.erase_from_parent()
