"""Min/max horizontal reductions.

LLVM's ``-slp-vectorize-hor`` handles min/max reductions alongside
add-reductions; this module covers that half for the repro's intrinsic
set (``fmin``/``fmax``/``smin``/``smax``).  Min/max is commutative and
associative with *no* inverse element, so the machinery is a simplified
cousin of :mod:`repro.vectorizer.reduction`: one accumulator group, no APO
partitioning.

``s = fmin(fmin(fmin(a, b), c), d)`` becomes a wide load (or chunk tree),
pairwise vector ``fmin`` combines, a shuffle ladder, and a final scalar
``fmin`` over the two surviving lanes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import CallInst, Instruction
from ..ir.types import vector_of
from ..ir.values import Value
from ..machine.costmodel import CostModel
from ..machine.isa import VectorISA
from ..observe import STAT
from .codegen import emit_node_tree
from .graph import NodeKind, SLPNode
from .reduction import MIN_REDUCTION_LEAVES, _order_group, _subtree_nodes
from .reorder import SuperNodeRecord

#: reducible intrinsics; float ones need fast-math (NaN propagation order)
MINMAX_CALLEES = {"fmin": True, "fmax": True, "smin": False, "smax": False}

_STAT_CHAINS_FOUND = STAT(
    "minmax.chains-found", "Min/max reduction chains detected"
)
_STAT_CHAIN_LEAVES = STAT(
    "minmax.chain-leaves", "Leaves across detected min/max chains"
)


@dataclass
class MinMaxCandidate:
    """A chain of same-callee min/max calls folding into one scalar."""

    root: CallInst
    callee: str
    chain_calls: List[CallInst]
    leaves: List[Value]

    @property
    def leaf_count(self) -> int:
        return len(self.leaves)

    def record(self) -> SuperNodeRecord:
        from ..ir.instructions import Opcode

        return SuperNodeRecord(
            kind="minmax",
            lanes=1,
            size=len(self.chain_calls),
            family=Opcode.CALL,
            contains_inverse=False,
        )


def _is_minmax_root(inst: Instruction, consumed_ids: set, fast_math: bool) -> bool:
    if not isinstance(inst, CallInst) or inst.callee not in MINMAX_CALLEES:
        return False
    if MINMAX_CALLEES[inst.callee] and not fast_math:
        return False
    if not inst.type.is_scalar:
        return False
    if id(inst) in consumed_ids or inst.num_uses == 0:
        return False
    return not any(
        isinstance(user, CallInst) and user.callee == inst.callee
        for user in inst.users()
    )


def find_minmax_candidates(
    block,
    fast_math: bool,
    consumed_ids: set,
    max_calls: int = 32,
) -> List[MinMaxCandidate]:
    """Scan a block for min/max reduction chains."""
    candidates: List[MinMaxCandidate] = []
    for inst in block:
        if not _is_minmax_root(inst, consumed_ids, fast_math):
            continue
        calls: List[CallInst] = []
        leaves: List[Value] = []

        def grow(call: CallInst) -> None:
            calls.append(call)
            for operand in call.operands:
                if (
                    isinstance(operand, CallInst)
                    and operand.callee == call.callee
                    and operand.num_uses == 1
                    and operand.parent is call.parent
                    and len(calls) < max_calls
                ):
                    grow(operand)
                else:
                    leaves.append(operand)

        grow(inst)
        if len(leaves) < MIN_REDUCTION_LEAVES:
            continue
        if any(id(call) in consumed_ids for call in calls):
            continue
        _STAT_CHAINS_FOUND.add()
        _STAT_CHAIN_LEAVES.add(len(leaves))
        candidates.append(MinMaxCandidate(inst, inst.callee, calls, leaves))
    return candidates


@dataclass
class MinMaxPlan:
    candidate: MinMaxCandidate
    chunks: List[SLPNode]
    leftovers: List[Value]
    vector_width: int
    total_cost: float = 0.0
    nodes: List[SLPNode] = field(default_factory=list)


def plan_minmax(
    candidate: MinMaxCandidate,
    builder,  # _GraphBuilder (untyped to avoid an import cycle)
    isa: VectorISA,
    model: CostModel,
) -> Optional[MinMaxPlan]:
    element = candidate.root.type
    widths = isa.legal_lane_counts(element)
    if not widths:
        return None
    leaves = _order_group(candidate.leaves, builder.scorer)
    scalar_call = model.intrinsic_cost(candidate.callee, element)

    from .cost import _gather_cost, _scalar_sum, _vector_cost  # local reuse

    chunks: List[SLPNode] = []
    kept_nodes: List[SLPNode] = []
    leftovers: List[Value] = []
    assigned: set = set()
    start = 0
    while len(leaves) - start >= 2:
        width = next((w for w in widths if w <= len(leaves) - start), None)
        if width is None:
            break
        chunk_leaves = tuple(leaves[start : start + width])
        node = builder.build_value_bundle(chunk_leaves)
        subtree = _subtree_nodes(node, assigned)
        delta = 0.0
        for sub in subtree:
            if sub.kind is NodeKind.GATHER:
                sub.cost = _gather_cost(sub, model)
            else:
                sub.cost = _vector_cost(sub, model) - _scalar_sum(sub, model)
            delta += sub.cost
        vec_type = vector_of(element, width)
        marginal = delta + model.intrinsic_cost(candidate.callee, vec_type)
        if marginal < width * scalar_call:
            chunks.append(node)
            kept_nodes.extend(subtree)
        else:
            leftovers.extend(chunk_leaves)
        start += width
    leftovers.extend(leaves[start:])
    if not chunks:
        return None

    # uniform width (dominant-by-leaves, wider on ties)
    by_width: Dict[int, int] = {}
    for node in chunks:
        width = node.vec_type.count
        by_width[width] = by_width.get(width, 0) + width
    main_width = max(by_width, key=lambda w: (by_width[w], w))
    final_chunks: List[SLPNode] = []
    final_nodes: List[SLPNode] = []
    for node in chunks:
        if node.vec_type.count == main_width:
            final_chunks.append(node)
        else:
            leftovers.extend(node.lanes)
    if not final_chunks:
        return None
    # restrict nodes to subtrees of the final chunks
    assigned2: set = set()
    for node in final_chunks:
        final_nodes.extend(_subtree_nodes(node, assigned2))

    plan = MinMaxPlan(
        candidate=candidate,
        chunks=final_chunks,
        leftovers=leftovers,
        vector_width=main_width,
    )
    plan.nodes = final_nodes
    plan.total_cost = _cost_minmax(plan, model)
    return plan


def _cost_minmax(plan: MinMaxPlan, model: CostModel) -> float:
    candidate = plan.candidate
    element = candidate.root.type
    vec_type = vector_of(element, plan.vector_width)
    scalar_call = model.intrinsic_cost(candidate.callee, element)
    vector_call = model.intrinsic_cost(candidate.callee, vec_type)

    cost = -len(candidate.chain_calls) * scalar_call
    cost += sum(node.cost for node in plan.nodes)
    cost += max(len(plan.chunks) - 1, 0) * vector_call
    stages = max(int(math.log2(plan.vector_width)) - 1, 0)
    cost += stages * (model.shuffle_cost * 2 + vector_call)
    cost += 2 * model.extract_cost + scalar_call
    cost += len(plan.leftovers) * scalar_call
    return cost


def emit_minmax(plan: MinMaxPlan) -> Value:
    """Emit the vectorized min/max reduction before the chain root."""
    candidate = plan.candidate
    root = candidate.root
    callee = candidate.callee
    builder = IRBuilder()
    builder.position_before(root)
    memo: Dict[int, Value] = {}

    accumulator: Optional[Value] = None
    for node in plan.chunks:
        value = emit_node_tree(node, builder, memo)
        accumulator = (
            value
            if accumulator is None
            else builder.call(callee, [accumulator, value])
        )
    assert accumulator is not None

    width = accumulator.type.count  # type: ignore[union-attr]
    while width > 2:
        half = width // 2
        low = builder.shufflevector(accumulator, accumulator, list(range(half)))
        high = builder.shufflevector(
            accumulator, accumulator, list(range(half, width))
        )
        accumulator = builder.call(callee, [low, high])
        width = half
    lane0 = builder.extractelement(accumulator, 0)
    lane1 = builder.extractelement(accumulator, 1)
    scalar: Value = builder.call(callee, [lane0, lane1])
    for leaf in plan.leftovers:
        scalar = builder.call(callee, [scalar, leaf])
    root.replace_all_uses_with(scalar)
    return scalar
