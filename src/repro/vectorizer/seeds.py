"""Seed collection (Figure 1, step 1).

Adjacent stores are the primary seeds, as in LLVM and GCC: stores to
consecutive addresses off the same base+symbolic-index are grouped, sorted
by constant offset, split into consecutive runs and chunked to legal vector
arities (widest first).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.analysis import AddressInfo, address_of
from ..ir.block import BasicBlock
from ..ir.instructions import StoreInst
from ..ir.types import Type
from ..machine.isa import VectorISA
from ..observe import STAT

_STAT_SEED_BUNDLES = STAT(
    "slp.seed-bundles", "Store seed bundles collected across all blocks"
)
_STAT_SEED_STORES = STAT(
    "slp.seed-stores", "Scalar stores captured into seed bundles"
)


def _group_key(info: AddressInfo, element: Type) -> Tuple[int, int, Type]:
    return (id(info.base), id(info.symbol), element)


def collect_store_seeds(block: BasicBlock, isa: VectorISA) -> List[List[StoreInst]]:
    """Seed bundles of consecutive scalar stores in one block.

    Returns groups in program order of their first member.  Each group's
    stores are ordered by ascending address offset and the group length is
    a legal lane count for the target.
    """
    groups: Dict[Tuple, List[Tuple[StoreInst, AddressInfo]]] = {}
    order: List[Tuple] = []
    for inst in block:
        if not isinstance(inst, StoreInst):
            continue
        element = inst.value.type
        if not element.is_scalar:
            continue  # already-vector stores are not seeds
        if not isa.supports_element(element):
            continue
        info = address_of(inst)
        if info is None:
            continue
        key = _group_key(info, element)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((inst, info))

    seeds: List[List[StoreInst]] = []
    for key in order:
        members = groups[key]
        members.sort(key=lambda pair: pair[1].offset)
        element = members[0][0].value.type
        seeds.extend(_chunk_run(members, isa.legal_lane_counts(element)))
    _STAT_SEED_BUNDLES.add(len(seeds))
    _STAT_SEED_STORES.add(sum(len(seed) for seed in seeds))
    return seeds


def _chunk_run(
    members: List[Tuple[StoreInst, AddressInfo]],
    legal_counts: List[int],
) -> List[List[StoreInst]]:
    """Split offset-sorted stores into consecutive runs, then chunk each
    run into the widest legal arity that fits (greedy, left to right)."""
    if not legal_counts:
        return []
    runs: List[List[StoreInst]] = []
    current: List[Tuple[StoreInst, AddressInfo]] = []
    for store, info in members:
        if current and not current[-1][1].is_consecutive_with(info):
            runs.append([s for s, _ in current])
            current = []
        if current and current[-1][1].offset == info.offset:
            # Duplicate address: break the run (stores would race).
            runs.append([s for s, _ in current])
            current = []
        current.append((store, info))
    if current:
        runs.append([s for s, _ in current])

    seeds: List[List[StoreInst]] = []
    for run in runs:
        start = 0
        while len(run) - start >= 2:
            width = next(
                (w for w in legal_counts if w <= len(run) - start), None
            )
            if width is None:
                break
            seeds.append(run[start : start + width])
            start += width
    return seeds
