"""SLP graph cost evaluation (Figure 1, step 4).

Each node's cost is ``vector cost - sum of scalar costs`` (negative =
saving), matching the paper's convention where a fully-vectorizable graph
shows a negative total and gather nodes contribute positive penalties.
External users of vectorized scalars add extract costs, exactly like
LLVM's ``getTreeCost``.
"""

from __future__ import annotations

from typing import Set

from ..ir.instructions import CallInst, Instruction, Opcode
from ..ir.values import Constant, Value
from ..machine.costmodel import CostModel
from .graph import NodeKind, SLPGraph, SLPNode


def _gather_cost(node: SLPNode, model: CostModel) -> float:
    """Cost of materializing a gather node's vector from its scalars."""
    lanes = node.lanes
    if all(isinstance(v, Constant) for v in lanes):
        return 0.0  # becomes a literal vector constant
    if all(v is lanes[0] for v in lanes):
        # Splat: one insert plus one broadcast shuffle.
        return model.insert_cost + model.shuffle_cost
    return model.gather_cost(node.vec_type)


def _scalar_sum(node: SLPNode, model: CostModel) -> float:
    total = 0.0
    for value in node.lanes:
        if isinstance(value, CallInst):
            total += model.intrinsic_cost(value.callee, value.type)
        elif isinstance(value, Instruction):
            total += model.scalar_op_cost(value.opcode, value.type)
    return total


def _vector_cost(node: SLPNode, model: CostModel) -> float:
    first = node.lanes[0]
    if node.kind is NodeKind.LOAD:
        cost = model.vector_op_cost(Opcode.LOAD, node.vec_type)
        if node.load_reversed:
            cost += model.shuffle_cost  # lane reversal after the wide load
        return cost
    if node.kind is NodeKind.STORE:
        return model.vector_op_cost(Opcode.STORE, node.vec_type)
    if node.kind is NodeKind.ALT:
        assert node.lane_opcodes is not None
        return model.altbinop_cost(node.lane_opcodes, node.vec_type)
    if node.kind is NodeKind.CALL:
        assert isinstance(first, CallInst)
        return model.intrinsic_cost(first.callee, node.vec_type)
    assert isinstance(first, Instruction)
    return model.vector_op_cost(first.opcode, node.vec_type)


def compute_graph_cost(graph: SLPGraph, model: CostModel) -> float:
    """Assign per-node costs and the graph total; returns the total.

    Also stashes the scalar/vector/extract breakdown on the graph (gather
    materialization counts as vector-side cost) for the decision journal;
    the total itself is accumulated node by node exactly as before, so
    the profitability verdict is unchanged by the bookkeeping.
    """
    internal: Set[int] = graph.internal_instruction_ids()
    total = 0.0
    scalar_total = 0.0
    vector_total = 0.0
    for node in graph.nodes:
        if node.kind is NodeKind.GATHER:
            node.cost = _gather_cost(node, model)
            vector_total += node.cost
        else:
            vector_side = _vector_cost(node, model)
            scalar_side = _scalar_sum(node, model)
            node.cost = vector_side - scalar_side
            vector_total += vector_side
            scalar_total += scalar_side
        total += node.cost

    # Extract penalties: vectorized scalars still demanded by code outside
    # the graph must be pulled out of the vector register.
    extract_total = 0.0
    for node in graph.vectorizable_nodes():
        if node.kind is NodeKind.STORE:
            continue
        for value in node.lanes:
            if not isinstance(value, Instruction):
                continue
            if any(id(user) not in internal for user in value.unique_users()):
                extract_total += model.extract_cost
    total += extract_total
    graph.scalar_cost = scalar_total
    graph.vector_cost = vector_total
    graph.extract_cost = extract_total
    graph.total_cost = total
    return total


def is_profitable(graph: SLPGraph, threshold: float = 0.0) -> bool:
    """Figure 1, step 5: vectorize when cost is below the threshold."""
    return graph.total_cost < threshold
