"""The paper's two motivating examples (Section III) as runnable kernels.

``motiv_leaf_reorder`` is Figure 2: lanes whose leaf loads appear in
different operand orders across the add/sub chain — vanilla SLP and LSLP
see non-adjacent load groups and give up; SN-SLP legally swaps the leaves
across the Super-Node.

``motiv_trunk_reorder`` is Figure 3: matching the leaves additionally
requires swapping a lane's add and sub trunks (Section IV-C3).

Both use 64-bit integer arrays, exactly like the paper's ``long A[]``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import I64
from ..ir.values import Value
from .suite import Kernel, register_kernel
from .util import ArrayEnv, finish_module, make_loop_kernel, random_ints

_ARRAY_LEN = 1024


def _fig2_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Figure 2(a):

    .. code-block:: c

        A[i+0] = B[i+0] - C[i+0] + D[i+0];
        A[i+1] = D[i+1] - C[i+1] + B[i+1];

    Lane 1 has the B and D leaves in exchanged positions, so plain SLP's
    load groups mix B with D and are non-adjacent (the +2-cost red nodes of
    Fig. 2c) and the graph is unprofitable.  Both leaves carry a '+' APO,
    so SN-SLP's leaf reordering swaps them legally — LSLP cannot, because
    the chain is interrupted by the subtraction.
    """
    # Lane 0: (B[i+0] - C[i+0]) + D[i+0]
    lane0 = b.add(
        b.sub(env.load("B", i, 0), env.load("C", i, 0)),
        env.load("D", i, 0),
    )
    env.store(lane0, "A", i, 0)
    # Lane 1: (D[i+1] - C[i+1]) + B[i+1]
    lane1 = b.add(
        b.sub(env.load("D", i, 1), env.load("C", i, 1)),
        env.load("B", i, 1),
    )
    env.store(lane1, "A", i, 1)


def _fig3_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Figure 3(a):

    .. code-block:: c

        A[i+0] = B[i+0] - C[i+0] + D[i+0];
        A[i+1] = B[i+1] + D[i+1] - C[i+1];

    Lane 1's optimal leaf order cannot be reached by leaf swaps alone
    (``C[i+1]`` is the only '-'-APO leaf); SN-SLP swaps lane 1's add and
    sub trunks, then the leaves line up with lane 0.
    """
    # Lane 0: ((B[i+0] - C[i+0]) + D[i+0])
    lane0 = b.add(
        b.sub(env.load("B", i, 0), env.load("C", i, 0)),
        env.load("D", i, 0),
    )
    env.store(lane0, "A", i, 0)
    # Lane 1: ((B[i+1] + D[i+1]) - C[i+1])
    lane1 = b.sub(
        b.add(env.load("B", i, 1), env.load("D", i, 1)),
        env.load("C", i, 1),
    )
    env.store(lane1, "A", i, 1)


def _build(name: str, body) -> Module:
    module = Module(name)
    for array in "ABCD":
        module.add_global(array, I64, _ARRAY_LEN)
    make_loop_kernel(module, "kernel", body, step=2, fast_math=True)
    return finish_module(module)


def _int_inputs(rng: random.Random) -> Dict[str, List]:
    return {
        name: random_ints(rng, _ARRAY_LEN) for name in ("A", "B", "C", "D")
    }


MOTIV_LEAF = register_kernel(
    Kernel(
        name="motiv-leaf-reorder",
        description="Figure 2: leaf reordering across the Super-Node",
        origin="Section III-B (motivating example)",
        pattern="leaf reorder across add/sub chain",
        build=lambda: _build("motiv_leaf", _fig2_body),
        make_inputs=_int_inputs,
        output_globals=("A",),
        trip_count=512,
        check_exact=True,
    )
)

MOTIV_TRUNK = register_kernel(
    Kernel(
        name="motiv-trunk-reorder",
        description="Figure 3: leaf + trunk reordering",
        origin="Section III-C (motivating example)",
        pattern="trunk swap enabling leaf reorder",
        build=lambda: _build("motiv_trunk", _fig3_body),
        make_inputs=_int_inputs,
        output_globals=("A",),
        trip_count=512,
        check_exact=True,
    )
)
