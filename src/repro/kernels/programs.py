"""Composite "full benchmark" programs for Figure 8/9/10.

The paper measures whole SPEC CPU2006 benchmarks and finds that SN-SLP's
kernel wins translate into small end-to-end effects: 433.milc gains about
2% over LSLP and the other five activating benchmarks are statistically
flat, because the vectorizable kernels are a small fraction of total
runtime.

Without SPEC sources, each composite program pairs one of the SPEC-like
kernels with a *bulk* function — a serial, non-vectorizable recurrence
standing in for the rest of the benchmark — weighted so the kernel
accounts for a benchmark-specific fraction of O3 runtime.  The fractions
are the free parameters of this substitution and were set so the milc
composite lands near the paper's ~2% and the rest stay within noise
(documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import CmpPredicate
from ..ir.module import Module
from ..ir.types import F64, I64, VOID
from .suite import Kernel, kernel_named


def add_bulk_function(module: Module, name: str = "bulk") -> Function:
    """A serial recurrence over a private array: unvectorizable by design.

    ``acc = acc * 0.875 + BULK[i]; BULK[i] = acc`` — every iteration
    depends on the previous one and every store feeds the next load, so no
    SLP configuration can touch it; it contributes identical cycles under
    every compiler configuration.
    """
    if "BULK" not in module.globals:
        module.add_global("BULK", F64, 4096)
    bulk = module.global_named("BULK")
    function = Function(name, [("n", I64)], VOID, fast_math=True)
    module.add_function(function)
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    exit_block = function.add_block("exit")

    builder = IRBuilder(entry)
    builder.br(header)

    builder.position_at_end(header)
    i = builder.phi(I64, "i")
    acc = builder.phi(F64, "acc")
    in_range = builder.icmp(CmpPredicate.LT, i, function.arguments[0])
    builder.condbr(in_range, body, exit_block)

    builder.position_at_end(body)
    pointer = builder.gep(bulk, i)
    loaded = builder.load(pointer)
    decayed = builder.fmul(acc, builder.const(F64, 0.875))
    updated = builder.fadd(decayed, loaded)
    builder.store(updated, pointer)
    next_i = builder.add(i, builder.const_i64(1))
    builder.br(header)

    i.add_incoming(builder.const_i64(0), entry)
    i.add_incoming(next_i, body)
    acc.add_incoming(builder.const(F64, 0.0), entry)
    acc.add_incoming(updated, body)

    builder.position_at_end(exit_block)
    builder.ret()
    return function


@dataclass(frozen=True)
class Program:
    """One composite benchmark: a kernel plus weighted serial bulk work.

    ``kernel_fraction`` is the share of O3 runtime spent in the kernel —
    the calibration constant of the SPEC substitution.
    """

    name: str
    kernel_name: str
    kernel_fraction: float

    @property
    def kernel(self) -> Kernel:
        return kernel_named(self.kernel_name)

    def build(self) -> Module:
        """Module containing both the kernel and the bulk function."""
        module = self.kernel.build()
        add_bulk_function(module)
        return module


#: the six C/C++ SPEC CPU2006 benchmarks where SN-SLP activates (Fig. 8).
#: 433.milc spends the largest share of time in SN-friendly code (its su3
#: complex arithmetic is hot), hence its visible end-to-end win.
PROGRAMS: List[Program] = [
    Program("433.milc", "milc-su3-cmul", kernel_fraction=0.052),
    Program("444.namd", "namd-force-accum", kernel_fraction=0.008),
    Program("447.dealII", "dealii-cell-assembly", kernel_fraction=0.006),
    Program("450.soplex", "soplex-ratio-update", kernel_fraction=0.004),
    Program("453.povray", "povray-shade-blend", kernel_fraction=0.007),
    Program("482.sphinx3", "sphinx-gauss-score", kernel_fraction=0.009),
]


def program_named(name: str) -> Program:
    for program in PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(f"unknown program {name!r}; available: {[p.name for p in PROGRAMS]}")
