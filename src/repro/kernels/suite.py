"""Kernel registry: the repro's equivalent of the paper's Table I.

Every kernel records which SPEC CPU2006 benchmark motivated it and which
Super-Node feature it exercises.  The paper extracted its kernels from the
functions where SN-SLP activates inside SPEC; the actual extracted bodies
are not reproduced in the paper text, so each kernel here is a synthetic
equivalent with the same algebraic structure (commutative-operator chains
with inverse elements whose lanes need leaf and/or trunk reordering) —
see DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.module import Module


@dataclass(frozen=True)
class Kernel:
    """One benchmark kernel.

    ``build`` returns a fresh module each call (the vectorizer mutates IR).
    ``make_inputs`` seeds the global buffers deterministically from a seed,
    so every compiler configuration executes identical data.
    ``output_globals`` names the buffers checked for correctness and
    ``check_exact`` is False for float kernels where reassociation
    (licensed by fast-math) may change rounding.
    """

    name: str
    description: str
    origin: str
    pattern: str
    build: Callable[[], Module]
    make_inputs: Callable[[random.Random], Dict[str, List]]
    output_globals: Sequence[str]
    function: str = "kernel"
    trip_count: int = 96
    check_exact: bool = True


_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kernel: Kernel) -> Kernel:
    if kernel.name in _REGISTRY:
        raise ValueError(f"duplicate kernel name: {kernel.name}")
    _REGISTRY[kernel.name] = kernel
    return kernel


def kernel_named(name: str) -> Kernel:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_kernels() -> List[Kernel]:
    """All registered kernels in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def kernels_by_origin(origin_substring: str) -> List[Kernel]:
    _ensure_loaded()
    return [k for k in _REGISTRY.values() if origin_substring in k.origin]


def _ensure_loaded() -> None:
    """Import the kernel definition modules exactly once."""
    from . import motivating, spec_like  # noqa: F401


def table1_rows() -> List[Dict[str, str]]:
    """The Table I equivalent: kernel inventory with origins and patterns."""
    return [
        {
            "kernel": k.name,
            "origin": k.origin,
            "pattern": k.pattern,
            "description": k.description,
        }
        for k in all_kernels()
    ]
