"""Shared scaffolding for building kernels.

Kernels mirror the paper's evaluation setup: C-style loops over global
arrays whose bodies are *manually unrolled* across adjacent elements
(``A[i+0]``, ``A[i+1]``, ...) — the straight-line shape that SLP (not the
loop vectorizer) targets.  :func:`make_loop_kernel` builds the loop
skeleton; the caller supplies only the straight-line body.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import CmpPredicate
from ..ir.module import Module
from ..ir.types import F32, F64, I64, Type, VOID
from ..ir.values import Value
from ..ir.verifier import verify_module


class ArrayEnv:
    """Convenience accessors for the kernel's global arrays.

    ``env.load("B", i, 1)`` loads ``B[i+1]``; ``env.store(v, "A", i, 0)``
    stores to ``A[i+0]``.  Index arithmetic is emitted once per distinct
    offset and cached, the way a C compiler's CSE would leave it.
    """

    def __init__(self, module: Module, builder: IRBuilder) -> None:
        self.module = module
        self.builder = builder
        self._index_cache: Dict[tuple, Value] = {}

    def index(self, base_index: Value, offset: int) -> Value:
        key = (id(base_index), offset)
        cached = self._index_cache.get(key)
        if cached is None:
            if offset == 0:
                cached = base_index
            else:
                cached = self.builder.add(
                    base_index, self.builder.const_i64(offset)
                )
            self._index_cache[key] = cached
        return cached

    def pointer(self, name: str, base_index: Value, offset: int = 0) -> Value:
        buffer = self.module.global_named(name)
        return self.builder.gep(buffer, self.index(base_index, offset))

    def load(self, name: str, base_index: Value, offset: int = 0) -> Value:
        return self.builder.load(self.pointer(name, base_index, offset))

    def store(self, value: Value, name: str, base_index: Value, offset: int = 0) -> None:
        self.builder.store(value, self.pointer(name, base_index, offset))


BodyFn = Callable[[IRBuilder, Value, ArrayEnv], None]


def make_loop_kernel(
    module: Module,
    name: str,
    body: BodyFn,
    step: int,
    fast_math: bool = True,
) -> Function:
    """Add ``for (i = 0; i < n; i += step) { body }`` to ``module``.

    The body receives the builder positioned inside the loop, the induction
    variable ``i`` and an :class:`ArrayEnv` for array access.
    """
    function = Function(name, [("n", I64)], VOID, fast_math=fast_math)
    module.add_function(function)
    entry = function.add_block("entry")
    header = function.add_block("header")
    body_block = function.add_block("body")
    exit_block = function.add_block("exit")

    builder = IRBuilder(entry)
    builder.br(header)

    builder.position_at_end(header)
    i = builder.phi(I64, "i")
    in_range = builder.icmp(CmpPredicate.LT, i, function.arguments[0])
    builder.condbr(in_range, body_block, exit_block)

    builder.position_at_end(body_block)
    env = ArrayEnv(module, builder)
    body(builder, i, env)
    next_i = builder.add(i, builder.const_i64(step), "i.next")
    builder.br(header)

    i.add_incoming(builder.const_i64(0), entry)
    i.add_incoming(next_i, body_block)

    builder.position_at_end(exit_block)
    builder.ret()
    return function


def make_straightline_kernel(
    module: Module,
    name: str,
    body: BodyFn,
    fast_math: bool = True,
) -> Function:
    """A single-invocation straight-line kernel: ``body`` runs once with a
    caller-provided base index argument."""
    function = Function(name, [("i", I64)], VOID, fast_math=fast_math)
    module.add_function(function)
    block = function.add_block("entry")
    builder = IRBuilder(block)
    env = ArrayEnv(module, builder)
    body(builder, function.arguments[0], env)
    builder.ret()
    return function


def random_floats(rng: random.Random, count: int, lo: float = -8.0, hi: float = 8.0) -> List[float]:
    return [rng.uniform(lo, hi) for _ in range(count)]


def random_nonzero_floats(
    rng: random.Random, count: int, lo: float = 0.5, hi: float = 8.0
) -> List[float]:
    """Strictly-positive values, safe as divisors in div-chain kernels."""
    return [rng.uniform(lo, hi) for _ in range(count)]


def random_ints(rng: random.Random, count: int, lo: int = -64, hi: int = 64) -> List[int]:
    return [rng.randint(lo, hi) for _ in range(count)]


def finish_module(module: Module) -> Module:
    """Verify and return (keeps kernel definitions one-expression)."""
    verify_module(module)
    return module
