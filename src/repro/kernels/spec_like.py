"""SPEC-CPU2006-inspired kernels: the Table I equivalent.

The paper extracted kernels from the six C/C++ SPEC CPU2006 benchmarks
where Super-Node SLP activates (433.milc is named explicitly; the others
are the C/C++ floating-point codes).  The extracted kernel bodies are not
printed in the paper, so each kernel below is a synthetic equivalent of
the *algebraic pattern* that makes SN-SLP activate in that benchmark:
commutative-operator chains with inverse elements whose per-lane term
orders differ.  Each docstring states the pattern and which configuration
is expected to win.

The suite deliberately spans the full outcome space:

* kernels only SN-SLP vectorizes (leaf reorder, trunk reorder, fmul/fdiv);
* a kernel LSLP already handles (commutative-only chains) — SN == LSLP;
* a kernel everything vectorizes (plain isomorphic code) — all equal;
* a kernel nothing may vectorize (loop-carried dependence) — all == O3.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import F64, I64
from ..ir.values import Value
from .suite import Kernel, register_kernel
from .util import (
    ArrayEnv,
    finish_module,
    make_loop_kernel,
    random_floats,
    random_ints,
    random_nonzero_floats,
)

_LEN = 1024


def _float_module(name: str, arrays: str, body, step: int) -> Module:
    module = Module(name)
    for array in arrays:
        module.add_global(array, F64, _LEN)
    make_loop_kernel(module, "kernel", body, step=step, fast_math=True)
    return finish_module(module)


def _float_inputs(arrays: str, nonzero: str = ""):
    def make(rng: random.Random) -> Dict[str, List]:
        data: Dict[str, List] = {}
        for name in arrays:
            if name in nonzero:
                data[name] = random_nonzero_floats(rng, _LEN)
            else:
                data[name] = random_floats(rng, _LEN)
        return data

    return make


# ---------------------------------------------------------------------------
# 433.milc — SU(3) complex arithmetic
# ---------------------------------------------------------------------------

def _milc_su3_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Complex multiply-accumulate, the su3 matrix-vector core of 433.milc.

    The real lane subtracts the imaginary product; the imaginary lane adds
    both.  The source interleaves the terms differently per lane, so the
    lanes need the Super-Node's combined trunk+leaf reordering.

    Lane 0 (re): ``C[i+0] = A[i+0]*B[i+0] - D[i+0]*E[i+0] + S[i+0]``
    Lane 1 (im): ``C[i+1] = A[i+1]*B[i+1] + S[i+1] - D[i+1]*E[i+1]``
    """
    re = b.fadd(
        b.fsub(
            b.fmul(env.load("A", i, 0), env.load("B", i, 0)),
            b.fmul(env.load("D", i, 0), env.load("E", i, 0)),
        ),
        env.load("S", i, 0),
    )
    env.store(re, "C", i, 0)
    im = b.fsub(
        b.fadd(
            b.fmul(env.load("A", i, 1), env.load("B", i, 1)),
            env.load("S", i, 1),
        ),
        b.fmul(env.load("D", i, 1), env.load("E", i, 1)),
    )
    env.store(im, "C", i, 1)


register_kernel(
    Kernel(
        name="milc-su3-cmul",
        description="complex multiply-accumulate (su3 core)",
        origin="433.milc (SPEC CPU2006)",
        pattern="fadd/fsub chain, product leaves, trunk+leaf reorder",
        build=lambda: _float_module("milc_su3", "ABDESC", _milc_su3_body, 2),
        make_inputs=_float_inputs("ABDESC"),
        output_globals=("C",),
        trip_count=512,
        check_exact=False,
    )
)


def _milc_norm_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Field renormalization: multiplicative chains with division.

    Lane 0: ``C[i+0] = A[i+0] * B[i+0] / D[i+0]``
    Lane 1: ``C[i+1] = A[i+1] / D[i+1] * B[i+1]``

    The fmul/fdiv family is the multiplicative Super-Node case: the
    reciprocal is the inverse element.  Only SN-SLP may reorder across the
    division.
    """
    lane0 = b.fdiv(
        b.fmul(env.load("A", i, 0), env.load("B", i, 0)),
        env.load("D", i, 0),
    )
    env.store(lane0, "C", i, 0)
    lane1 = b.fmul(
        b.fdiv(env.load("A", i, 1), env.load("D", i, 1)),
        env.load("B", i, 1),
    )
    env.store(lane1, "C", i, 1)


register_kernel(
    Kernel(
        name="milc-field-norm",
        description="field renormalization (mul/div chain)",
        origin="433.milc (SPEC CPU2006)",
        pattern="fmul/fdiv chain, leaf reorder across division",
        build=lambda: _float_module("milc_norm", "ABDC", _milc_norm_body, 2),
        make_inputs=_float_inputs("ABDC", nonzero="D"),
        output_globals=("C",),
        trip_count=512,
        check_exact=False,
    )
)


# ---------------------------------------------------------------------------
# 444.namd — pairwise force updates
# ---------------------------------------------------------------------------

def _namd_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Force accumulation with a repulsive (subtracted) term.

    Lane 0: ``F[i+0] = (X[i+0] + Q[i+0]*R[i+0]) - W[i+0]``
    Lane 1: ``F[i+1] = (X[i+1] - W[i+1]) + Q[i+1]*R[i+1]``
    """
    lane0 = b.fsub(
        b.fadd(
            env.load("X", i, 0),
            b.fmul(env.load("Q", i, 0), env.load("R", i, 0)),
        ),
        env.load("W", i, 0),
    )
    env.store(lane0, "F", i, 0)
    lane1 = b.fadd(
        b.fsub(env.load("X", i, 1), env.load("W", i, 1)),
        b.fmul(env.load("Q", i, 1), env.load("R", i, 1)),
    )
    env.store(lane1, "F", i, 1)


register_kernel(
    Kernel(
        name="namd-force-accum",
        description="bonded force accumulation with repulsive term",
        origin="444.namd (SPEC CPU2006)",
        pattern="add/sub chain with product leaf, trunk swap",
        build=lambda: _float_module("namd_force", "XQRWF", _namd_body, 2),
        make_inputs=_float_inputs("XQRWF"),
        output_globals=("F",),
        trip_count=512,
        check_exact=False,
    )
)


# ---------------------------------------------------------------------------
# 447.dealII — local FEM assembly
# ---------------------------------------------------------------------------

def _dealii_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Gradient contributions with alternating signs, depth-4 chains.

    Lane 0: ``U[i+0] = A[i+0] - B[i+0] + C[i+0] - D[i+0] + E[i+0]``
    Lane 1: ``U[i+1] = A[i+1] + C[i+1] - D[i+1] + E[i+1] - B[i+1]``
    """
    lane0 = b.fadd(
        b.fsub(
            b.fadd(
                b.fsub(env.load("A", i, 0), env.load("B", i, 0)),
                env.load("C", i, 0),
            ),
            env.load("D", i, 0),
        ),
        env.load("E", i, 0),
    )
    env.store(lane0, "U", i, 0)
    lane1 = b.fsub(
        b.fadd(
            b.fsub(
                b.fadd(env.load("A", i, 1), env.load("C", i, 1)),
                env.load("D", i, 1),
            ),
            env.load("E", i, 1),
        ),
        env.load("B", i, 1),
    )
    env.store(lane1, "U", i, 1)


register_kernel(
    Kernel(
        name="dealii-cell-assembly",
        description="FEM local assembly, signed gradient contributions",
        origin="447.dealII (SPEC CPU2006)",
        pattern="deep add/sub chain (4 trunks), leaf reorder",
        build=lambda: _float_module("dealii", "ABCDEU", _dealii_body, 2),
        make_inputs=_float_inputs("ABCDEU"),
        output_globals=("U",),
        trip_count=512,
        check_exact=False,
    )
)


# ---------------------------------------------------------------------------
# 450.soplex — simplex vector updates (integer)
# ---------------------------------------------------------------------------

def _soplex_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Integer ratio-test bookkeeping: exact add/sub chains.

    Lane k permutes the term order; integer subtraction is exact, so the
    Super-Node forms without any fast-math licence.

    Lane 0: ``X[i+0] = (B[i+0] - P[i+0]) + Q[i+0]``
    Lane 1: ``X[i+1] = (Q[i+1] - P[i+1]) + B[i+1]``
    """
    lane0 = b.add(
        b.sub(env.load("B", i, 0), env.load("P", i, 0)),
        env.load("Q", i, 0),
    )
    env.store(lane0, "X", i, 0)
    lane1 = b.add(
        b.sub(env.load("Q", i, 1), env.load("P", i, 1)),
        env.load("B", i, 1),
    )
    env.store(lane1, "X", i, 1)


def _soplex_module() -> Module:
    module = Module("soplex")
    for array in "BPQX":
        module.add_global(array, I64, _LEN)
    make_loop_kernel(module, "kernel", _soplex_body, step=2, fast_math=False)
    return finish_module(module)


register_kernel(
    Kernel(
        name="soplex-ratio-update",
        description="simplex bound/ratio updates (64-bit integer)",
        origin="450.soplex (SPEC CPU2006)",
        pattern="integer add/sub chain, leaf reorder, no fast-math needed",
        build=_soplex_module,
        make_inputs=lambda rng: {n: random_ints(rng, _LEN) for n in "BPQX"},
        output_globals=("X",),
        trip_count=512,
        check_exact=True,
    )
)


# ---------------------------------------------------------------------------
# 453.povray — shading/blending
# ---------------------------------------------------------------------------

def _povray_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Colour blend: ambient + diffuse product - fog attenuation.

    Lane 0: ``C[i+0] = K[i+0] + A[i+0]*L[i+0] - G[i+0]``
    Lane 1: ``C[i+1] = K[i+1] - G[i+1] + A[i+1]*L[i+1]``
    """
    lane0 = b.fsub(
        b.fadd(
            env.load("K", i, 0),
            b.fmul(env.load("A", i, 0), env.load("L", i, 0)),
        ),
        env.load("G", i, 0),
    )
    env.store(lane0, "C", i, 0)
    lane1 = b.fadd(
        b.fsub(env.load("K", i, 1), env.load("G", i, 1)),
        b.fmul(env.load("A", i, 1), env.load("L", i, 1)),
    )
    env.store(lane1, "C", i, 1)


register_kernel(
    Kernel(
        name="povray-shade-blend",
        description="colour blending with fog attenuation",
        origin="453.povray (SPEC CPU2006)",
        pattern="add/sub chain with product leaf, trunk swap",
        build=lambda: _float_module("povray", "KALGC", _povray_body, 2),
        make_inputs=_float_inputs("KALGC"),
        output_globals=("C",),
        trip_count=512,
        check_exact=False,
    )
)


# ---------------------------------------------------------------------------
# 482.sphinx3 — Gaussian scoring
# ---------------------------------------------------------------------------

def _sphinx_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Mahalanobis-style scoring terms.

    Lane 0: ``S[i+0] = B[i+0] - D[i+0]*P[i+0] + K[i+0]``
    Lane 1: ``S[i+1] = B[i+1] + K[i+1] - D[i+1]*P[i+1]``
    """
    lane0 = b.fadd(
        b.fsub(
            env.load("B", i, 0),
            b.fmul(env.load("D", i, 0), env.load("P", i, 0)),
        ),
        env.load("K", i, 0),
    )
    env.store(lane0, "S", i, 0)
    lane1 = b.fsub(
        b.fadd(env.load("B", i, 1), env.load("K", i, 1)),
        b.fmul(env.load("D", i, 1), env.load("P", i, 1)),
    )
    env.store(lane1, "S", i, 1)


register_kernel(
    Kernel(
        name="sphinx-gauss-score",
        description="Gaussian density scoring terms",
        origin="482.sphinx3 (SPEC CPU2006)",
        pattern="add/sub chain with weighted-square leaf, trunk swap",
        build=lambda: _float_module("sphinx", "BDPKS", _sphinx_body, 2),
        make_inputs=_float_inputs("BDPKS"),
        output_globals=("S",),
        trip_count=512,
        check_exact=False,
    )
)


def _milc_su3_vec4_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Four-lane variant of the su3 pattern: every lane computes
    ``B - C + D`` but each spells the expression differently, so the
    Super-Node must find a consistent group across all four lanes
    (``buildGroup`` runs lane-to-lane three times per operand index).

    Lane 0: ``(B - C) + D``     Lane 1: ``(B + D) - C``
    Lane 2: ``(D - C) + B``     Lane 3: ``(D + B) - C``
    """
    lane0 = b.fadd(
        b.fsub(env.load("B", i, 0), env.load("C", i, 0)), env.load("D", i, 0)
    )
    env.store(lane0, "A", i, 0)
    lane1 = b.fsub(
        b.fadd(env.load("B", i, 1), env.load("D", i, 1)), env.load("C", i, 1)
    )
    env.store(lane1, "A", i, 1)
    lane2 = b.fadd(
        b.fsub(env.load("D", i, 2), env.load("C", i, 2)), env.load("B", i, 2)
    )
    env.store(lane2, "A", i, 2)
    lane3 = b.fsub(
        b.fadd(env.load("D", i, 3), env.load("B", i, 3)), env.load("C", i, 3)
    )
    env.store(lane3, "A", i, 3)


register_kernel(
    Kernel(
        name="milc-su3-vec4",
        description="four-lane signed sum, per-lane expression shapes",
        origin="433.milc (SPEC CPU2006), 256-bit lanes",
        pattern="4-lane Super-Node, buildGroup across all lanes",
        build=lambda: _float_module("milc_vec4", "ABCD", _milc_su3_vec4_body, 4),
        make_inputs=_float_inputs("ABCD"),
        output_globals=("A",),
        trip_count=512,
        check_exact=False,
    )
)


def _povray_distance_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Ray-length computation: sqrt over an add/sub chain of squares.

    Lane 0: ``R[i+0] = sqrt(fabs(X2[i+0] + Y2[i+0] - O[i+0]))``
    Lane 1: ``R[i+1] = sqrt(fabs(X2[i+1] - O[i+1] + Y2[i+1]))``

    Exercises intrinsic-call bundles on top of the Super-Node: the sqrt
    lanes only become isomorphic after the chain beneath them reorders.
    """
    lane0 = b.call(
        "sqrt",
        [
            b.call(
                "fabs",
                [
                    b.fsub(
                        b.fadd(env.load("X", i, 0), env.load("Y", i, 0)),
                        env.load("O", i, 0),
                    )
                ],
            )
        ],
    )
    env.store(lane0, "R", i, 0)
    lane1 = b.call(
        "sqrt",
        [
            b.call(
                "fabs",
                [
                    b.fadd(
                        b.fsub(env.load("X", i, 1), env.load("O", i, 1)),
                        env.load("Y", i, 1),
                    )
                ],
            )
        ],
    )
    env.store(lane1, "R", i, 1)


register_kernel(
    Kernel(
        name="povray-ray-length",
        description="sqrt of signed sum of squares per ray",
        origin="453.povray (SPEC CPU2006)",
        pattern="call bundle over add/sub chain, trunk swap",
        build=lambda: _float_module("povray_dist", "XYOR", _povray_distance_body, 2),
        make_inputs=_float_inputs("XYOR", nonzero="XY"),
        output_globals=("R",),
        trip_count=512,
        check_exact=False,
    )
)


# ---------------------------------------------------------------------------
# horizontal reductions (-slp-vectorize-hor, enabled in the paper's setup)
# ---------------------------------------------------------------------------

def _dot_reduction_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Pure dot product: a commutative reduction chain.

    ``S[i] = B[i]*W[i] + B[i+1]*W[i+1] + B[i+2]*W[i+2] + B[i+3]*W[i+3]``

    Every configuration with horizontal-reduction support vectorizes this
    (wide loads, wide multiply, shuffle-reduce); it isolates the -hor
    machinery from the Super-Node machinery.
    """
    acc = b.fmul(env.load("B", i, 0), env.load("W", i, 0))
    for k in range(1, 4):
        acc = b.fadd(acc, b.fmul(env.load("B", i, k), env.load("W", i, k)))
    env.store(acc, "S", i, 0)


register_kernel(
    Kernel(
        name="sphinx-dot-product",
        description="4-term dot product reduction per frame",
        origin="482.sphinx3 (SPEC CPU2006), -slp-vectorize-hor",
        pattern="pure fadd reduction chain (all configs vectorize)",
        build=lambda: _float_module("sphinx_dot", "BWS", _dot_reduction_body, 1),
        make_inputs=_float_inputs("BWS"),
        output_globals=("S",),
        trip_count=384,
        check_exact=False,
    )
)


def _signed_reduction_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Reduction whose chain mixes additions and subtractions.

    ``S[i] = B[i]*W[i] + B[i+1]*W[i+1] - G[i]*H[i] + B[i+2]*W[i+2]
             - G[i+1]*H[i+1] + B[i+3]*W[i+3]``

    The '-' terms interrupt the commutative chain, so only the Super-Node
    (APO-partitioned) reduction can vectorize it: the '+' products fill one
    accumulator, the '-' products another, and the accumulators subtract.
    """
    acc = b.fmul(env.load("B", i, 0), env.load("W", i, 0))
    acc = b.fadd(acc, b.fmul(env.load("B", i, 1), env.load("W", i, 1)))
    acc = b.fsub(acc, b.fmul(env.load("G", i, 0), env.load("H", i, 0)))
    acc = b.fadd(acc, b.fmul(env.load("B", i, 2), env.load("W", i, 2)))
    acc = b.fsub(acc, b.fmul(env.load("G", i, 1), env.load("H", i, 1)))
    acc = b.fadd(acc, b.fmul(env.load("B", i, 3), env.load("W", i, 3)))
    env.store(acc, "S", i, 0)


register_kernel(
    Kernel(
        name="milc-staple-reduce",
        description="gauge-action style signed product reduction",
        origin="433.milc (SPEC CPU2006), -slp-vectorize-hor",
        pattern="fadd/fsub reduction, APO-partitioned accumulators",
        build=lambda: _float_module("milc_staple", "BWGHS", _signed_reduction_body, 1),
        make_inputs=_float_inputs("BWGHS"),
        output_globals=("S",),
        trip_count=384,
        check_exact=False,
    )
)


# ---------------------------------------------------------------------------
# control kernels: LSLP-friendly, trivially vectorizable, non-vectorizable
# ---------------------------------------------------------------------------

def _commutative_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Pure fadd chains with per-lane permuted leaves.

    LSLP's Multi-Node already fixes this (no inverse ops involved), so the
    expectation is LSLP == SN-SLP > SLP == O3.

    Lane 0: ``S[i+0] = (A[i+0] + C[i+0]) + B[i+0]``
    Lane 1: ``S[i+1] = (A[i+1] + B[i+1]) + C[i+1]``
    """
    lane0 = b.fadd(
        b.fadd(env.load("A", i, 0), env.load("C", i, 0)),
        env.load("B", i, 0),
    )
    env.store(lane0, "S", i, 0)
    lane1 = b.fadd(
        b.fadd(env.load("A", i, 1), env.load("B", i, 1)),
        env.load("C", i, 1),
    )
    env.store(lane1, "S", i, 1)


register_kernel(
    Kernel(
        name="lslp-commutative-chain",
        description="pure fadd chains, permuted leaves (LSLP territory)",
        origin="LSLP baseline (CGO 2018), reduction-style sums",
        pattern="commutative-only Multi-Node leaf reorder",
        build=lambda: _float_module("commutative", "ABCS", _commutative_body, 2),
        make_inputs=_float_inputs("ABCS"),
        output_globals=("S",),
        trip_count=512,
        check_exact=False,
    )
)


def _plain_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Textbook isomorphic lanes: everything vectorizes this."""
    for off in range(4):
        value = b.fadd(
            b.fmul(env.load("A", i, off), env.load("B", i, off)),
            env.load("C", i, off),
        )
        env.store(value, "S", i, off)


register_kernel(
    Kernel(
        name="plain-fma-lanes",
        description="isomorphic a*b+c lanes (vanilla SLP territory)",
        origin="generic dense kernel",
        pattern="no reordering required",
        build=lambda: _float_module("plain", "ABCS", _plain_body, 4),
        make_inputs=_float_inputs("ABCS"),
        output_globals=("S",),
        trip_count=512,
        check_exact=False,
    )
)


def _serial_body(b: IRBuilder, i: Value, env: ArrayEnv) -> None:
    """Loop-carried dependence through memory: lane 1 loads what lane 0
    stored.  No configuration may vectorize this (the scheduling legality
    check must reject the bundle)."""
    lane0 = b.fadd(env.load("A", i, 0), env.load("B", i, 0))
    env.store(lane0, "A", i, 1)
    lane1 = b.fadd(env.load("A", i, 1), env.load("B", i, 1))
    env.store(lane1, "A", i, 2)


register_kernel(
    Kernel(
        name="serial-dependence",
        description="store-to-load dependence between lanes (must not vectorize)",
        origin="legality control",
        pattern="none (scheduling hazard)",
        build=lambda: _float_module("serial", "AB", _serial_body, 1),
        make_inputs=_float_inputs("AB"),
        output_globals=("A",),
        trip_count=500,
        check_exact=True,
    )
)
