"""Parameterized workload generator.

Produces Super-Node-shaped kernels with controlled difficulty: ``lanes``
adjacent store lanes, each computing the *same* signed sum of ``terms``
array elements, but with a per-lane random expression shape and term
order.  Because every lane's signed-term multiset is identical, the
kernels are always vectorizable *in principle* — whether a configuration
actually manages is exactly the Multi-Node/Super-Node capability the paper
studies.

Used by the property-based tests (random shapes must stay correct) and by
``benchmarks/bench_scaling.py`` (speedup and compile time as functions of
chain depth and lane count — the parameter sweep of the evaluation
harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.module import Module
from ..ir.types import F64, I64, VOID
from ..ir.values import Value
from .seeding import SeededSpec
from .util import make_loop_kernel, finish_module

#: array names available to generated kernels (output array is "OUT")
_ARRAY_POOL = [f"IN{index}" for index in range(16)]
_BUFFER_LEN = 2048


@dataclass(frozen=True)
class GeneratorSpec(SeededSpec):
    """Shape parameters for one generated kernel.

    ``terms`` is the number of leaves per lane (the Super-Node has
    ``terms - 1`` trunks); ``minus_terms`` of them carry a '-' sign.
    ``lanes`` is the vectorization width exposed by the stores.
    ``shuffle_lanes`` randomizes each lane's term order and tree shape —
    with it off, every lane is the same expression and plain SLP suffices;
    with it on, the kernel needs Super-Node reordering.

    Seeding (the ``seed`` field and all RNG streams) comes from
    :class:`~repro.kernels.seeding.SeededSpec`, shared with the fuzzing
    generator so both stay deterministic under one discipline.
    """

    lanes: int = 2
    terms: int = 3
    minus_terms: int = 1
    shuffle_lanes: bool = True

    def __post_init__(self) -> None:
        if self.lanes < 2:
            raise ValueError("need at least 2 lanes")
        if self.terms < 2:
            raise ValueError("need at least 2 terms")
        if not 0 <= self.minus_terms < self.terms:
            raise ValueError(
                "minus_terms must leave at least one '+' term as the anchor"
            )
        if self.terms > len(_ARRAY_POOL):
            raise ValueError(f"at most {len(_ARRAY_POOL)} terms supported")


def generate_kernel(spec: GeneratorSpec) -> Module:
    """Build the module for ``spec`` (function name: ``kernel``)."""
    rng = spec.rng()
    module = Module(f"gen_l{spec.lanes}_t{spec.terms}_s{spec.seed}")
    arrays = _ARRAY_POOL[: spec.terms]
    module.add_global("OUT", F64, _BUFFER_LEN)
    for name in arrays:
        module.add_global(name, F64, _BUFFER_LEN)

    #: one sign per term (term j always loads arrays[j]); identical for
    #: every lane, so the lanes compute the same signed sum
    signs = [False] * (spec.terms - spec.minus_terms) + [True] * spec.minus_terms

    def body(b: IRBuilder, i: Value, env) -> None:
        for lane in range(spec.lanes):
            terms: List[Tuple[bool, Value]] = [
                (signs[j], env.load(arrays[j], i, lane))
                for j in range(spec.terms)
            ]
            if spec.shuffle_lanes:
                rng.shuffle(terms)
            # anchor on a '+' term (a left spine cannot start with '-')
            anchor_index = next(
                index for index, (minus, _) in enumerate(terms) if not minus
            )
            anchor = terms.pop(anchor_index)[1]
            expr = anchor
            for minus, leaf in terms:
                expr = b.fsub(expr, leaf) if minus else b.fadd(expr, leaf)
            env.store(expr, "OUT", i, lane)

    make_loop_kernel(module, "kernel", body, step=spec.lanes, fast_math=True)
    return finish_module(module)


def generate_inputs(
    spec: GeneratorSpec, seed: int = 1
) -> Dict[str, List[float]]:
    """Deterministic input buffers for a generated kernel."""
    rng = spec.input_rng(seed)
    return {
        name: [rng.uniform(-4.0, 4.0) for _ in range(_BUFFER_LEN)]
        for name in _ARRAY_POOL[: spec.terms]
    }


def sweep_specs(
    lanes_values: Sequence[int] = (2, 4),
    terms_values: Sequence[int] = (2, 3, 4, 5, 6),
    minus_fraction: float = 0.4,
    seed: int = 7,
) -> List[GeneratorSpec]:
    """The parameter grid used by the scaling benchmark."""
    specs: List[GeneratorSpec] = []
    for lanes in lanes_values:
        for terms in terms_values:
            minus = max(1, int(terms * minus_fraction))
            if minus >= terms:
                minus = terms - 1
            specs.append(
                GeneratorSpec(
                    lanes=lanes,
                    terms=terms,
                    minus_terms=minus,
                    shuffle_lanes=True,
                    seed=seed + lanes * 100 + terms,
                )
            )
    return specs
