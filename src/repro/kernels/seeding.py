"""Shared RNG discipline for every seeded program generator.

Both the benchmark workload generator (:mod:`repro.kernels.generator`) and
the fuzzing generator (:mod:`repro.fuzz.genprog`) must be *deterministic
functions of their spec*: the same spec yields byte-identical modules on
every run, machine and Python version.  That only holds when all
randomness flows from explicitly derived :class:`random.Random` streams —
never from global ``random`` state, ``hash()`` (salted per process) or
wall-clock time.

:class:`SeededSpec` is the one place that discipline lives.  Specs inherit
from it and draw streams with :meth:`rng`; independent streams for
sub-purposes (input data, per-lane shuffles...) are derived with a string
label so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass


def derive_seed(seed: int, label: str) -> int:
    """A stable 64-bit sub-seed for ``(seed, label)``.

    Uses SHA-256 rather than ``hash()``: Python salts string hashes per
    process, which would silently break cross-run determinism.
    """
    digest = hashlib.sha256(f"{label}:{seed}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class SeededSpec:
    """Base class for generator specs: one ``seed`` knob, derived streams.

    ``rng()`` with no label reproduces the historical
    ``random.Random(spec.seed)`` stream, so existing generators keep their
    exact output shapes; labelled streams are independent of it and of
    each other.
    """

    seed: int = 0

    def rng(self, label: str = "") -> random.Random:
        """A fresh deterministic stream for this spec (and ``label``)."""
        if not label:
            return random.Random(self.seed)
        return random.Random(derive_seed(self.seed, f"{type(self).__name__}/{label}"))

    def derive(self, label: str) -> int:
        """A stable sub-seed, for handing to another seeded component."""
        return derive_seed(self.seed, f"{type(self).__name__}/{label}")

    def input_rng(self, input_seed: int) -> random.Random:
        """The stream for input *data* (kept separate from shape choices
        so reseeding inputs never changes the generated program)."""
        return random.Random(input_seed ^ self.seed)
