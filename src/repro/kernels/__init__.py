"""Benchmark kernels: motivating examples and SPEC-like workloads."""

from .suite import Kernel, all_kernels, kernel_named, kernels_by_origin, register_kernel, table1_rows
from .seeding import SeededSpec, derive_seed
from .generator import GeneratorSpec, generate_inputs, generate_kernel, sweep_specs

__all__ = [
    "Kernel", "all_kernels", "kernel_named", "kernels_by_origin",
    "register_kernel", "table1_rows",
    "SeededSpec", "derive_seed",
    "GeneratorSpec", "generate_kernel", "generate_inputs", "sweep_specs",
]
