"""Decision bisection — the repro's ``-opt-bisect-limit``.

Every optional vectorization attempt (store-seed graph, horizontal
reduction, min/max reduction) asks the global :data:`BISECT` gate for
permission before doing any work.  With the gate disabled (the default)
permission is free; with a limit ``n`` armed, only the first ``n``
decisions run and the rest are skipped — exactly LLVM's
``-opt-bisect-limit`` contract.

:func:`run_bisect` drives the gate automatically: given a module and a
badness check (crash / verifier failure / output mismatch against the
scalar interpreter), it counts the total decisions, confirms the failure
reproduces at the full limit and vanishes at limit 0, then binary
searches for the *first faulty decision* — the one whose inclusion flips
the compile from good to bad.  Crash bundles saved by the guarded driver
replay through this to localize which graph went wrong.

This module must stay import-light (no vectorizer imports at module
scope): the vectorizer itself imports :data:`BISECT`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class OptBisect:
    """Counts gated decisions; beyond ``limit`` they are vetoed."""

    def __init__(self) -> None:
        self.enabled = False
        self.limit = -1  # -1 = unlimited (but still counting when enabled)
        self.count = 0
        self.decisions: List[str] = []

    def reset(self, limit: int = -1) -> None:
        """Arm (or re-arm) the gate: forget counts, apply ``limit``."""
        self.enabled = True
        self.limit = limit
        self.count = 0
        self.decisions = []

    def disable(self) -> None:
        self.enabled = False
        self.limit = -1

    def should_run(self, description: str) -> bool:
        """One decision point: record it and say whether it may proceed."""
        if not self.enabled:
            return True
        self.count += 1
        self.decisions.append(description)
        return self.limit < 0 or self.count <= self.limit


#: the process-wide gate the vectorizer consults
BISECT = OptBisect()


@dataclass
class BisectResult:
    """Outcome of one automatic bisection run."""

    #: total gated decisions at the full (unlimited) compile
    total_decisions: int
    #: 1-based index of the first decision whose inclusion turns the
    #: compile bad, or None when the failure never reproduced
    first_bad: Optional[int]
    #: description of that decision (when found)
    culprit: str = ""
    #: badness status at the full limit ("ok" when nothing reproduced)
    status: str = "ok"
    #: True when the compile is bad even with every decision vetoed —
    #: the fault lives outside the gated decisions (e.g. in simplify)
    bad_at_zero: bool = False
    #: all decision descriptions from the counting compile
    decisions: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"bisect: {self.total_decisions} gated decision(s)"]
        if self.status == "ok":
            lines.append("  failure did not reproduce; nothing to bisect")
        elif self.bad_at_zero:
            lines.append(
                f"  compile is {self.status} even at limit 0: the fault "
                "precedes the vectorizer's gated decisions"
            )
        else:
            lines.append(
                f"  first faulty decision: #{self.first_bad} ({self.status})"
            )
            lines.append(f"  {self.culprit}")
        return "\n".join(lines)


#: check(limit) -> badness status: "ok" or a failure kind
Check = Callable[[int], str]


def bisect_decisions(check: Check, total: int) -> Tuple[Optional[int], str, bool]:
    """Binary search the smallest limit whose last decision is faulty.

    ``check`` must be deterministic.  Returns (first_bad, status,
    bad_at_zero).
    """
    status = check(total)
    if status == "ok":
        return None, "ok", False
    if total == 0 or check(0) != "ok":
        return None, status, True
    lo, hi = 0, total  # invariant: check(lo) == "ok", check(hi) != "ok"
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if check(mid) == "ok":
            lo = mid
        else:
            hi = mid
    return hi, check(hi), False


def run_bisect(
    module,
    config,
    target,
    unroll_factor: int = 0,
    kernel: Optional[str] = None,
    args: Optional[Tuple[int, ...]] = None,
    input_seed: int = 1,
    max_ulps: Optional[int] = None,
) -> BisectResult:
    """Automatically localize the first faulty vectorization decision.

    Badness is judged the same way the fuzzing oracle judges a config:
    crash or verifier failure while compiling, else output mismatch
    against the scalar reference interpreter on deterministic inputs.
    """
    from ..fuzz.genprog import make_inputs
    from ..fuzz.oracle import DEFAULT_MAX_ULPS, values_close
    from ..interp.interpreter import Interpreter, TrapError
    from ..ir.types import FloatType
    from ..ir.verifier import VerificationError
    from ..sim import simulate
    from ..vectorizer import compile_module

    ulps = DEFAULT_MAX_ULPS if max_ulps is None else max_ulps
    names = list(module.functions)
    if kernel is None:
        if len(names) != 1:
            raise ValueError(f"module defines kernels {names}; pick one")
        kernel = names[0]
    if args is None:
        args = tuple(0 for _ in module.functions[kernel].arguments)
    inputs = make_inputs(module, input_seed)

    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.write_global(name, values)
    try:
        interp.run(kernel, args)
    except TrapError as exc:
        raise ValueError(f"reference run traps ({exc}); cannot bisect") from exc
    reference = {name: interp.read_global(name) for name in module.globals}

    def check(limit: int) -> str:
        BISECT.reset(limit)
        try:
            compiled = compile_module(module, config, target, unroll_factor=unroll_factor)
        except VerificationError:
            return "verifier"
        except Exception:  # noqa: BLE001 - any crash is the badness we hunt
            return "crash"
        finally:
            BISECT.disable()
        try:
            result = simulate(compiled.module, kernel, target, args, inputs=inputs)
        except Exception:  # noqa: BLE001 - runtime divergence counts as bad
            return "mismatch"
        for name in module.globals:
            is_float = isinstance(module.globals[name].element, FloatType)
            for x, y in zip(reference[name], result.globals_after[name]):
                if not values_close(y, x, is_float, max_ulps=ulps):
                    return "mismatch"
        return "ok"

    # counting compile: unlimited, but swallow crashes (we only need count)
    BISECT.reset(-1)
    try:
        compile_module(module, config, target, unroll_factor=unroll_factor)
    except Exception:  # noqa: BLE001 - the failure itself may fire here
        pass
    total = BISECT.count
    decisions = list(BISECT.decisions)
    BISECT.disable()

    first_bad, status, bad_at_zero = bisect_decisions(check, total)
    culprit = ""
    if first_bad is not None and 0 < first_bad <= len(decisions):
        culprit = decisions[first_bad - 1]
    return BisectResult(
        total_decisions=total,
        first_bad=first_bad,
        culprit=culprit,
        status=status,
        bad_at_zero=bad_at_zero,
        decisions=decisions,
    )
