"""Guarded compilation driver: fault isolation with graceful degradation.

``compile_module`` is all-or-nothing: any bug in the simplify → unroll →
vectorize chain aborts the whole compile.  :func:`guarded_compile` wraps
the same phases in checkpoints so the driver *always* returns runnable,
verified IR:

* every phase runs against a pre-phase snapshot (``clone_module``) under
  an optional wall-clock budget, and the IR verifier gates the result;
* on exception, verifier failure, or budget blowout the module rolls
  back to the snapshot and a structured :class:`RecoveryRecord` (plus a
  ``recovery`` remark and STAT counters) is recorded;
* mid-end phases (simplify/unroll) are *skipped* and the attempt
  continues; a vectorize failure abandons the attempt and the driver
  descends a configurable **degradation ladder**
  (SN-SLP → LSLP → SLP → O3) until a configuration compiles clean;
* if even the last rung fails, the pristine clone of the input module is
  returned (scalar, unoptimized — but runnable).

The first crash-class failure is captured (snapshot + context) so
:mod:`repro.robust.bundle` can write a reduced ``failure-NNNN/`` bundle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError, verify_module
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe import STAT
from ..observe.session import (
    CompilerSession,
    current_metrics,
    current_remarks,
    current_session,
    current_stats,
    use_session,
)
from ..vectorizer.pipeline import (
    CompilationResult,
    _phase,
    clone_module,
    pipeline_phases,
)
from ..vectorizer.report import VectorizationReport
from ..vectorizer.slp import SLPConfig, SNSLP_CONFIG, config_named

#: default degradation ladder, strongest transform first
DEFAULT_LADDER: Tuple[str, ...] = ("SN-SLP", "LSLP", "SLP", "O3")

_GUARDED = STAT("robust.guarded-compiles", "guarded compilations run")
_RECOVERIES = STAT("robust.recoveries", "phase failures recovered")
_PHASE_SKIPS = STAT("robust.phase-skips", "mid-end phases skipped after rollback")
_DESCENTS = STAT("robust.ladder-descents", "degradation ladder descents")
_BUDGETS = STAT("robust.budget-blowouts", "phase budgets exceeded")
_VERIFIER_ROLLBACKS = STAT(
    "robust.verifier-rollbacks", "post-phase verifier failures rolled back"
)
_EXCEPTION_ROLLBACKS = STAT(
    "robust.exception-rollbacks", "phase exceptions rolled back"
)
_PRISTINE = STAT(
    "robust.pristine-fallbacks", "compiles served by the pristine input clone"
)


@dataclass
class RecoveryRecord:
    """One rolled-back phase failure and what the driver did about it."""

    phase: str
    config: str
    kind: str  # "exception" | "verifier" | "budget"
    action: str  # "skip-phase" | "descend-ladder" | "pristine-fallback"
    detail: str = ""
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "config": self.config,
            "kind": self.kind,
            "action": self.action,
            "detail": self.detail,
            "seconds": self.seconds,
        }


@dataclass
class CrashCapture:
    """Context of the first crash-class failure, for bundle writing."""

    config: str
    phase: str
    kind: str  # "exception" | "verifier"
    detail: str
    #: textual IR of the module as it entered the failing phase
    snapshot_text: str


@dataclass
class GuardedResult:
    """Outcome of one guarded compilation — always runnable IR."""

    result: CompilationResult
    requested_config: str
    config_used: str
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    crash: Optional[CrashCapture] = None
    bundle_dir: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.config_used != self.requested_config

    @property
    def recovered(self) -> bool:
        return bool(self.recoveries)

    def summary(self) -> str:
        lines = [
            f"guarded compile: requested {self.requested_config}, "
            f"used {self.config_used}"
            + (" (degraded)" if self.degraded else "")
        ]
        for rec in self.recoveries:
            lines.append(
                f"  recovery[{rec.config}/{rec.phase}] {rec.kind} -> "
                f"{rec.action}: {rec.detail}"
            )
        if self.bundle_dir:
            lines.append(f"  crash bundle: {self.bundle_dir}")
        return "\n".join(lines)


def resolve_ladder(
    requested: SLPConfig, ladder: Optional[Sequence[str]] = None
) -> List[SLPConfig]:
    """The rungs to try: ``requested`` first, then every strictly weaker
    rung of ``ladder`` (default :data:`DEFAULT_LADDER`)."""
    names = list(ladder) if ladder is not None else list(DEFAULT_LADDER)
    configs = [config_named(name) for name in names]
    if any(c.name == requested.name for c in configs):
        index = next(
            i for i, c in enumerate(configs) if c.name == requested.name
        )
        return configs[index:]
    return [requested] + configs


class _AttemptFailed(Exception):
    """Internal: this ladder rung could not produce verified IR."""


def _classify(exc: BaseException) -> Tuple[str, str]:
    if isinstance(exc, VerificationError):
        return "verifier", str(exc)
    return "exception", f"{type(exc).__name__}: {exc}"


def guarded_compile(
    module: Module,
    config: SLPConfig = SNSLP_CONFIG,
    target: TargetMachine = DEFAULT_TARGET,
    unroll_factor: int = 0,
    ladder: Optional[Sequence[str]] = None,
    phase_budget_seconds: Optional[float] = None,
    bundle_dir: Optional[str] = None,
    reduce_bundle: bool = True,
    session: Optional[CompilerSession] = None,
) -> GuardedResult:
    """Compile ``module`` under ``config``, degrading instead of dying.

    Mirrors :func:`repro.vectorizer.pipeline.compile_module` (same
    phases, timings, counters) but never raises for in-pipeline faults:
    the returned :class:`GuardedResult` always holds verified IR, at
    worst the pristine scalar clone of the input.

    Runs in ``session`` when given, else in an ephemeral fresh-stats
    child of the ambient session, so ``result.counters`` is exactly this
    guarded compile's counters (including the ``robust.*`` recovery
    counters) and nothing bleeds into other compilations.  Faults armed
    on the ambient session's injector stay armed inside: derived
    sessions share their parent's injector.
    """
    own = session if session is not None else current_session().derive(
        name=f"guard:{config.name}"
    )
    with use_session(own):
        return _guarded_compile_in_session(
            module,
            config,
            target,
            unroll_factor,
            ladder,
            phase_budget_seconds,
            bundle_dir,
            reduce_bundle,
        )


def _guarded_compile_in_session(
    module: Module,
    config: SLPConfig,
    target: TargetMachine,
    unroll_factor: int,
    ladder: Optional[Sequence[str]],
    phase_budget_seconds: Optional[float],
    bundle_dir: Optional[str],
    reduce_bundle: bool,
) -> GuardedResult:
    _GUARDED.add()
    guard_timer = current_metrics().timer(
        "guard.compile.seconds", "wall seconds per guarded compilation"
    )
    with guard_timer:
        return _run_guarded_ladder(
            module, config, target, unroll_factor, ladder,
            phase_budget_seconds, bundle_dir, reduce_bundle,
        )


def _run_guarded_ladder(
    module: Module,
    config: SLPConfig,
    target: TargetMachine,
    unroll_factor: int,
    ladder: Optional[Sequence[str]],
    phase_budget_seconds: Optional[float],
    bundle_dir: Optional[str],
    reduce_bundle: bool,
) -> GuardedResult:
    outcome = GuardedResult(
        result=None,  # type: ignore[arg-type]  # filled below, always
        requested_config=config.name,
        config_used=config.name,
    )

    for rung in resolve_ladder(config, ladder):
        attempt = _attempt_config(
            module, rung, target, unroll_factor, phase_budget_seconds, outcome
        )
        if attempt is not None:
            outcome.result = attempt
            outcome.config_used = rung.name
            break
    else:
        # Every rung failed: serve the pristine clone.  It verified on
        # the way in (clone is a parse/verify round-trip by construction
        # of the textual format), so this cannot fail.
        phases: Dict[str, float] = {}
        with _phase("clone", phases):
            working = clone_module(module)
        with _phase("verify", phases):
            verify_module(working)
        _PRISTINE.add()
        _record(
            outcome,
            RecoveryRecord(
                phase="pipeline",
                config=config.name,
                kind="exception",
                action="pristine-fallback",
                detail="degradation ladder exhausted; returning input clone",
            ),
        )
        outcome.result = CompilationResult(
            module=working,
            report=VectorizationReport(config_name="pristine"),
            compile_seconds=sum(phases.values()),
            phase_seconds=phases,
            counters=current_stats().snapshot(),
        )
        outcome.config_used = "pristine"

    if bundle_dir is not None and outcome.crash is not None:
        from .bundle import write_crash_bundle

        outcome.bundle_dir = write_crash_bundle(
            bundle_dir,
            module,
            outcome,
            target=target,
            unroll_factor=unroll_factor,
            reduce_failure=reduce_bundle,
        )
    return outcome


def _attempt_config(
    module: Module,
    config: SLPConfig,
    target: TargetMachine,
    unroll_factor: int,
    budget: Optional[float],
    outcome: GuardedResult,
) -> Optional[CompilationResult]:
    """One checkpointed pass over the pipeline under ``config``.

    Returns the result, or None when the vectorize phase failed and the
    caller should descend the ladder.
    """
    phases: Dict[str, float] = {}
    report: Optional[VectorizationReport] = None
    try:
        with _phase("clone", phases):
            working = clone_module(module)
    except Exception as exc:  # noqa: BLE001 - even the clone is guarded
        kind, detail = _classify(exc)
        _record_failure(outcome, config, "clone", kind, detail, 0.0, "descend-ladder")
        return None

    for name, fn in pipeline_phases(config, target, unroll_factor):
        snapshot = clone_module(working)
        started = time.perf_counter()
        failure: Optional[Tuple[str, str]] = None
        try:
            with _phase(name, phases):
                out = fn(working)
            elapsed = time.perf_counter() - started
            if budget is not None and elapsed > budget:
                failure = (
                    "budget",
                    f"phase ran {elapsed:.3f}s, budget {budget:g}s",
                )
            else:
                # the verify gate: a phase may only commit verified IR
                verify_module(working)
                if name == "vectorize":
                    report = out
        except Exception as exc:  # noqa: BLE001 - isolate any phase fault
            failure = _classify(exc)
        if failure is None:
            continue

        kind, detail = failure
        seconds = time.perf_counter() - started
        if kind != "budget" and outcome.crash is None:
            outcome.crash = CrashCapture(
                config=config.name,
                phase=name,
                kind=kind,
                detail=detail,
                snapshot_text=print_module(snapshot),
            )
        working = snapshot  # roll back to the pre-phase checkpoint
        if name == "vectorize":
            _record_failure(
                outcome, config, name, kind, detail, seconds, "descend-ladder"
            )
            return None
        _record_failure(outcome, config, name, kind, detail, seconds, "skip-phase")

    with _phase("verify", phases):
        verify_module(working)  # cannot fail: `working` is a verified state
    if report is None:
        report = VectorizationReport(config_name=config.name)
    return CompilationResult(
        module=working,
        report=report,
        compile_seconds=sum(phases.values()),
        phase_seconds=phases,
        counters=current_stats().snapshot(),
    )


def _record_failure(
    outcome: GuardedResult,
    config: SLPConfig,
    phase: str,
    kind: str,
    detail: str,
    seconds: float,
    action: str,
) -> None:
    record = RecoveryRecord(
        phase=phase,
        config=config.name,
        kind=kind,
        action=action,
        detail=detail,
        seconds=seconds,
    )
    if kind == "budget":
        _BUDGETS.add()
    elif kind == "verifier":
        _VERIFIER_ROLLBACKS.add()
    else:
        _EXCEPTION_ROLLBACKS.add()
    current_metrics().observe(
        "guard.recovery.seconds", seconds,
        description="wall seconds lost to a rolled-back phase",
    )
    if action == "skip-phase":
        _PHASE_SKIPS.add()
    elif action == "descend-ladder":
        _DESCENTS.add()
    _record(outcome, record)


def _record(outcome: GuardedResult, record: RecoveryRecord) -> None:
    _RECOVERIES.add()
    outcome.recoveries.append(record)
    current_remarks().recovery(
        "guard",
        f"{record.kind} in phase {record.phase} under {record.config}: "
        f"rolled back, {record.action}",
        phase=record.phase,
        config=record.config,
        fault_kind=record.kind,
        action=record.action,
        detail=record.detail,
    )
