"""Deterministic fault injection: named sites, armed on demand.

The robustness layer needs *reproducible* failures to prove its recovery
paths fire: tests and ``repro fuzz --inject`` arm exactly one site with
one mode and the instrumented code faults on the chosen hit, every time.
There is no randomness at the fire point — determinism comes from the
caller picking (site, mode, skip) from a seed, so a failing run replays
bit-for-bit.

Sites are declared statically here (the single source of truth the CLI
and tests enumerate) and instrumented modules call :meth:`FaultInjector.
fire` at the matching point.  ``fire`` is one dict lookup when nothing is
armed, so the hooks stay in hot paths unconditionally, like statistic
counters.

Modes:

* ``raise``   — raise :class:`FaultError` (a compiler crash);
* ``corrupt`` — run the site's corruption action, producing structurally
  invalid IR that the post-phase verifier must catch (proves the
  verify gate, not just exception handling);
* ``stall``   — burn wall-clock time (or interpreter steps), tripping
  the guarded driver's phase budget / the interpreter watchdog.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..observe.session import DEFAULT_SESSION, current_session

FAULT_MODES = ("raise", "corrupt", "stall")


class FaultError(RuntimeError):
    """A deliberately injected fault (never raised by real compiler bugs)."""


@dataclass(frozen=True)
class FaultSite:
    """One named point in the pipeline where faults can be injected."""

    name: str
    description: str
    #: subset of FAULT_MODES this site's instrumentation supports
    modes: Tuple[str, ...]
    #: the pipeline phase a fault at this site surfaces in
    phase: str


#: every registered site; instrumented modules fire these names verbatim
FAULT_SITES: Dict[str, FaultSite] = {
    site.name: site
    for site in (
        FaultSite(
            "simplify.module",
            "inside the simplify pass (exercises phase-skip recovery)",
            ("raise", "stall"),
            "simplify",
        ),
        FaultSite(
            "supernode.build-chain",
            "while growing a Multi-/Super-Node lane chain",
            ("raise",),
            "vectorize",
        ),
        FaultSite(
            "reorder.reorder",
            "during Super-Node leaf/trunk reordering",
            ("raise", "stall"),
            "vectorize",
        ),
        FaultSite(
            "reorder.generate-code",
            "while rewriting lane IR to the reordered model",
            ("raise",),
            "vectorize",
        ),
        FaultSite(
            "codegen.emit",
            "after vector code emission (corrupt drops the terminator)",
            ("raise", "corrupt"),
            "vectorize",
        ),
        FaultSite(
            "interp.step",
            "per interpreted instruction (exercises the step watchdog)",
            ("raise", "stall"),
            "execute",
        ),
        # -- compile-service sites (phase "service") -------------------
        # Worker-side sites are armed *inside* pool workers via the
        # fault plans the pool ships at spawn (generation 0 only, so a
        # respawned worker models a healthy replacement); parent-side
        # sites fire in the service/front-end process.
        FaultSite(
            "serve.worker.crash",
            "worker process dies hard mid-task (exercises respawn+requeue)",
            ("raise",),
            "service",
        ),
        FaultSite(
            "serve.worker.stall",
            "worker wedges past the heartbeat stall budget mid-task",
            ("stall",),
            "service",
        ),
        FaultSite(
            "serve.task.error",
            "transient in-worker task failure (exercises client retry/backoff)",
            ("raise",),
            "service",
        ),
        FaultSite(
            "serve.pipe.frame",
            "worker sends a truncated/garbage result frame on its pipe",
            ("corrupt",),
            "service",
        ),
        FaultSite(
            "serve.cache.index",
            "shared-store recency index scribbled with garbage",
            ("corrupt",),
            "service",
        ),
        FaultSite(
            "serve.socket.disconnect",
            "socket server drops the client connection mid-request",
            ("raise",),
            "service",
        ),
        FaultSite(
            "serve.respawn",
            "respawning a dead worker fails (slot goes defunct)",
            ("raise",),
            "service",
        ),
    )
}

#: the sites reachable from ``compile_module`` (everything but the
#: interpreter, which only runs during simulation/oracle checks, and the
#: compile-service boundary, which only exists under ``repro serve``)
COMPILE_SITES: Tuple[str, ...] = tuple(
    name
    for name, site in FAULT_SITES.items()
    if site.phase not in ("execute", "service")
)

#: the compile-service boundary sites, enumerated by ``repro chaos``
SERVICE_SITES: Tuple[str, ...] = tuple(
    name for name, site in FAULT_SITES.items() if site.phase == "service"
)

#: service sites that fire *inside pool workers* — arming them means
#: shipping a plan to the worker at spawn (``WorkerPool(fault_plans=…)``)
WORKER_SIDE_SITES: Tuple[str, ...] = (
    "serve.worker.crash",
    "serve.worker.stall",
    "serve.task.error",
    "serve.pipe.frame",
    "serve.cache.index",
)


def site_named(name: str) -> FaultSite:
    site = FAULT_SITES.get(name)
    if site is None:
        raise KeyError(
            f"unknown fault site {name!r}; registered: {sorted(FAULT_SITES)}"
        )
    return site


def parse_injection(spec: str) -> Tuple[str, str, int]:
    """Parse a CLI injection spec ``site[:mode[:skip]]`` -> (site, mode, skip)."""
    parts = spec.split(":")
    site = site_named(parts[0])
    mode = parts[1] if len(parts) > 1 and parts[1] else site.modes[0]
    skip = int(parts[2]) if len(parts) > 2 and parts[2] else 0
    if mode not in site.modes:
        raise ValueError(
            f"site {site.name!r} does not support mode {mode!r} "
            f"(supported: {list(site.modes)})"
        )
    return site.name, mode, skip


@dataclass
class FaultPlan:
    """One armed fault: where, how, and on which hit."""

    site: str
    mode: str
    #: number of hits to let pass before firing (0 = fire on first hit)
    skip: int = 0
    #: fire only once, then keep counting hits without firing
    once: bool = False
    hits: int = 0
    fired: int = 0


class FaultInjector:
    """Process-wide registry of armed fault plans.

    ``armed`` maps site name -> plan; the common case (nothing armed) is
    a single falsy-dict check in :meth:`fire`.
    """

    def __init__(self) -> None:
        self.armed: Dict[str, FaultPlan] = {}
        #: how long a "stall" burns by default — long enough to blow any
        #: test-sized phase budget, short enough to keep suites fast
        self.stall_seconds: float = 0.25

    # -- arming -----------------------------------------------------------

    def arm(
        self, site: str, mode: str = "raise", skip: int = 0, once: bool = False
    ) -> FaultPlan:
        declared = site_named(site)
        if mode not in declared.modes:
            raise ValueError(
                f"site {site!r} does not support mode {mode!r} "
                f"(supported: {list(declared.modes)})"
            )
        plan = FaultPlan(site=site, mode=mode, skip=skip, once=once)
        self.armed[site] = plan
        return plan

    def disarm(self, site: str) -> None:
        self.armed.pop(site, None)

    def disarm_all(self) -> None:
        self.armed.clear()

    def plan_for(self, site: str) -> Optional[FaultPlan]:
        return self.armed.get(site)

    # -- the hook instrumented code calls ---------------------------------

    def fire(
        self,
        site: str,
        corrupt: Optional[Callable[[], None]] = None,
        stall: Optional[Callable[[], None]] = None,
    ) -> None:
        """Fault at ``site`` if a plan is armed for it.

        ``corrupt``/``stall`` are site-local actions supplied by the
        instrumented code (it knows what IR handle to scribble on or how
        to burn its budget); they run only when the matching mode is
        armed.
        """
        if not self.armed:
            return
        plan = self.armed.get(site)
        if plan is None:
            return
        plan.hits += 1
        if plan.hits <= plan.skip:
            return
        if plan.once and plan.fired:
            return
        plan.fired += 1
        if plan.mode == "raise":
            raise FaultError(f"injected fault at {site}")
        if plan.mode == "stall":
            if stall is not None:
                stall()
            else:
                time.sleep(self.stall_seconds)
            return
        if plan.mode == "corrupt":
            if corrupt is not None:
                corrupt()
            else:  # site offered no corruption action: degrade to a crash
                raise FaultError(f"injected fault (corrupt) at {site}")
            return
        raise AssertionError(f"unknown fault mode {plan.mode!r}")


#: the default session's injector; disarmed (and therefore free) by
#: default.  Deprecated alias — new code should arm faults through
#: :func:`current_faults` (or an explicit session's ``faults`` slot).
FAULTS = FaultInjector()

# Bind the injector into the default session.  CompilerSession keeps
# ``faults`` as an opaque slot precisely so observe/ never has to import
# this module; derived sessions share their parent's injector, so a
# fault armed before a guarded/fuzzed compile stays armed inside it.
DEFAULT_SESSION.faults = FAULTS


def current_faults() -> FaultInjector:
    """The ambient session's fault injector, bound lazily on first use."""
    session = current_session()
    injector = session.faults
    if injector is None:
        injector = session.faults = FaultInjector()
    return injector
