"""Robustness layer: fault injection, opt-bisect, guarded compilation.

* :mod:`repro.robust.faults` — deterministic seeded fault-injection
  registry (``raise`` / ``corrupt`` / ``stall`` at named pipeline sites);
* :mod:`repro.robust.bisect` — ``-opt-bisect-limit``-style decision gate
  plus an automatic first-faulty-decision bisector;
* :mod:`repro.robust.guard`  — checkpointed phases, verify-gated
  rollback and the SN-SLP → LSLP → SLP → O3 degradation ladder;
* :mod:`repro.robust.bundle` — reduced ``failure-NNNN/`` crash bundles.

``faults`` and ``bisect`` are import-light (the vectorizer itself hooks
into them), so they load eagerly; ``guard`` and ``bundle`` depend on the
vectorizer and resolve lazily via module ``__getattr__`` to keep the
import graph acyclic.
"""

from .bisect import BISECT, BisectResult, OptBisect, run_bisect
from .faults import (
    COMPILE_SITES,
    SERVICE_SITES,
    WORKER_SIDE_SITES,
    FAULT_MODES,
    FAULT_SITES,
    FAULTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSite,
    parse_injection,
    site_named,
)

_LAZY = {
    "guarded_compile": "guard",
    "GuardedResult": "guard",
    "RecoveryRecord": "guard",
    "CrashCapture": "guard",
    "DEFAULT_LADDER": "guard",
    "resolve_ladder": "guard",
    "write_crash_bundle": "bundle",
    "next_bundle_dir": "bundle",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{submodule}", __name__), name)


__all__ = [
    "BISECT", "OptBisect", "BisectResult", "run_bisect",
    "FAULTS", "FaultInjector", "FaultPlan", "FaultSite", "FaultError",
    "FAULT_SITES", "FAULT_MODES", "COMPILE_SITES",
    "SERVICE_SITES", "WORKER_SIDE_SITES",
    "parse_injection", "site_named",
    "guarded_compile", "GuardedResult", "RecoveryRecord", "CrashCapture",
    "DEFAULT_LADDER", "resolve_ladder",
    "write_crash_bundle", "next_bundle_dir",
]
