"""Crash bundles: self-contained ``failure-NNNN/`` artifact directories.

When the guarded driver rolls back a crash-class failure (exception or
verifier rejection — budget blowouts are timing-dependent and not worth
shrinking), :func:`write_crash_bundle` persists everything needed to
reproduce and localize it offline::

    <out>/failure-NNNN/
        original.ir     the module as handed to guarded_compile
        snapshot.ir     the pre-phase checkpoint the failing phase saw
        reduced.ir      delta-debugged minimal reproducer (fuzz/reduce.py)
        report.json     recovery records, crash context, reduction stats
        remarks.jsonl   recovery remarks from re-compiling the reproducer

Replay with ``repro bisect failure-NNNN/reduced.ir --config <cfg>`` to
localize the first faulty vectorization decision, or ``repro compile
failure-NNNN/original.ir --guard`` to watch the recovery fire again.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Optional

from ..ir.module import Module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError
from ..machine.targets import DEFAULT_TARGET, TargetMachine
from ..observe.session import current_session, use_session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .guard import GuardedResult


def next_bundle_dir(out_dir: str) -> str:
    """The first free ``failure-NNNN`` directory under ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    index = 0
    while True:
        candidate = os.path.join(out_dir, f"failure-{index:04d}")
        if not os.path.exists(candidate):
            return candidate
        index += 1


def _reproduces(module: Module, config_name: str, target: TargetMachine,
                unroll_factor: int, kind: str) -> bool:
    """Does an *unguarded* compile of ``module`` still fail the same way?"""
    from ..vectorizer import compile_module, config_named

    try:
        compile_module(
            module, config_named(config_name), target, unroll_factor=unroll_factor
        )
    except VerificationError:
        return kind == "verifier"
    except Exception:  # noqa: BLE001 - the crash we are preserving
        return kind == "exception"
    return False


def write_crash_bundle(
    out_dir: str,
    module: Module,
    outcome: "GuardedResult",
    target: TargetMachine = DEFAULT_TARGET,
    unroll_factor: int = 0,
    reduce_failure: bool = True,
) -> str:
    """Write a ``failure-NNNN/`` bundle for ``outcome.crash``.

    Reduction reuses the fuzzing subsystem's delta debugger with the
    predicate "an unguarded compile under the failing config still fails
    with the same kind" — deterministic whenever the underlying fault is
    (injected faults always are).  Returns the bundle directory.
    """
    from ..fuzz.reduce import reduce_module, write_reproducer

    crash = outcome.crash
    assert crash is not None, "write_crash_bundle needs a captured crash"
    directory = next_bundle_dir(out_dir)
    os.makedirs(directory, exist_ok=True)

    write_reproducer(module, os.path.join(directory, "original.ir"))
    with open(os.path.join(directory, "snapshot.ir"), "w") as handle:
        handle.write(crash.snapshot_text)

    document = {
        "crash": {
            "config": crash.config,
            "phase": crash.phase,
            "kind": crash.kind,
            "detail": crash.detail,
        },
        "requested_config": outcome.requested_config,
        "config_used": outcome.config_used,
        "recoveries": [record.to_dict() for record in outcome.recoveries],
        "counters": outcome.result.counters if outcome.result is not None else {},
        "replay": (
            f"repro bisect reduced.ir --config {crash.config}"
            if reduce_failure
            else f"repro compile original.ir --config {crash.config}"
        ),
    }

    reproducer = module
    if reduce_failure and _reproduces(
        module, crash.config, target, unroll_factor, crash.kind
    ):
        reduction = reduce_module(
            module,
            lambda candidate: _reproduces(
                candidate, crash.config, target, unroll_factor, crash.kind
            ),
        )
        reproducer = reduction.module
        write_reproducer(reproducer, os.path.join(directory, "reduced.ir"))
        document["reduction"] = {
            "instructions_before": reduction.instructions_before,
            "instructions_after": reduction.instructions_after,
            "edits_applied": reduction.edits_applied,
            "candidates_tried": reduction.candidates_tried,
        }

    _write_recovery_remarks(
        reproducer,
        crash.config,
        target,
        unroll_factor,
        os.path.join(directory, "remarks.jsonl"),
    )
    with open(os.path.join(directory, "report.json"), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return directory


def _write_recovery_remarks(
    module: Module,
    config_name: str,
    target: TargetMachine,
    unroll_factor: int,
    path: str,
) -> None:
    """Re-run the *guarded* driver over the reproducer with the remark
    collector armed, so the bundle carries the recovery remarks.

    Uses a private derived session (fresh remark collector) so the
    re-compile neither pollutes nor depends on whatever collector the
    surrounding command is using.
    """
    from ..vectorizer import config_named
    from .guard import guarded_compile

    session = current_session().derive(name="bundle-remarks", fresh_remarks=True)
    session.remarks.enable()
    with use_session(session):
        try:
            guarded_compile(
                module,
                config_named(config_name),
                target,
                unroll_factor=unroll_factor,
            )
        except Exception:  # noqa: BLE001 - remarks of a failure are still useful
            pass
    session.remarks.write_jsonl(path)
