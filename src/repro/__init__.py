"""Super-Node SLP: a from-scratch reproduction of the CGO 2019 paper
"Super-Node SLP: Optimized Vectorization for Code Sequences Containing
Operators and Their Inverse Elements" (Porpodas, Rocha, Brevnov, Góes,
Mattson).

The package is organized as a miniature compiler stack:

* :mod:`repro.ir` — typed SSA-style IR with use-def chains, builder,
  textual printer/parser, verifier, address analysis and DCE;
* :mod:`repro.frontend` — a mini-C kernel language lowered to the IR;
* :mod:`repro.interp` — the reference interpreter (semantic oracle);
* :mod:`repro.machine` — target ISA capabilities and TTI-style cost model;
* :mod:`repro.sim` — cycle-accounting execution (the "real system");
* :mod:`repro.vectorizer` — bottom-up SLP, LSLP's Multi-Node and the
  paper's Super-Node, with the O3/LSLP/SN-SLP configurations;
* :mod:`repro.passes` — mid-end passes (simplify, loop unrolling);
* :mod:`repro.kernels` — the motivating examples, SPEC-like workloads and
  a parameterized workload generator;
* :mod:`repro.bench` — harness regenerating every table and figure;
* :mod:`repro.cli` — the ``snslp`` command-line driver.

Quickstart::

    from repro.kernels import kernel_named
    from repro.vectorizer import compile_module, SNSLP_CONFIG
    from repro.machine import DEFAULT_TARGET
    from repro.sim import simulate

    kernel = kernel_named("motiv-trunk-reorder")
    compiled = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
    result = simulate(compiled.module, "kernel", DEFAULT_TARGET, [64])
"""

__version__ = "1.0.0"

__all__ = [
    "ir",
    "frontend",
    "interp",
    "machine",
    "sim",
    "vectorizer",
    "passes",
    "kernels",
    "bench",
    "cli",
]
