"""Flat byte-addressed memory for the interpreter.

Pointers in the interpreter are plain integer byte addresses into one
``bytearray``.  Global buffers are laid out at load time with natural
alignment; typed element access goes through :mod:`struct` codes so f32
loads/stores round to binary32 exactly like real hardware.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence

from ..ir.types import FloatType, IntType, Type, VectorType
from ..ir.values import GlobalBuffer


class MemoryError_(Exception):
    """Out-of-bounds or misaligned access (named to avoid the builtin)."""


_INT_CODES = {8: "b", 16: "h", 32: "i", 64: "q"}
_FLOAT_CODES = {32: "f", 64: "d"}


def _scalar_code(type_: Type) -> str:
    if isinstance(type_, IntType):
        # i1 is stored in a full byte.
        return _INT_CODES[max(type_.bits, 8)]
    if isinstance(type_, FloatType):
        return _FLOAT_CODES[type_.bits]
    raise TypeError(f"no storage code for {type_}")


def _scalar_size(type_: Type) -> int:
    return max(type_.byte_width, 1)


class Memory:
    """Flat memory with bump allocation and typed accessors."""

    def __init__(self, size: int = 1 << 20) -> None:
        self._data = bytearray(size)
        self._next = 16  # keep address 0 invalid (null)
        self._buffers: Dict[str, int] = {}
        self._buffer_objects: Dict[str, GlobalBuffer] = {}

    # -- allocation --------------------------------------------------------------

    def allocate(self, size: int, align: int = 16) -> int:
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size > len(self._data):
            raise MemoryError_(
                f"out of memory: need {size} bytes at {addr}, "
                f"capacity {len(self._data)}"
            )
        self._next = addr + size
        return addr

    def bind_global(self, buffer: GlobalBuffer) -> int:
        """Allocate storage for a global buffer and remember its address."""
        if buffer.name in self._buffers:
            return self._buffers[buffer.name]
        size = _scalar_size(buffer.element) * buffer.count
        addr = self.allocate(size)
        self._buffers[buffer.name] = addr
        self._buffer_objects[buffer.name] = buffer
        if buffer.initializer is not None:
            self.write_array(addr, buffer.element, buffer.initializer)
        return addr

    def address_of_global(self, buffer: GlobalBuffer) -> int:
        try:
            return self._buffers[buffer.name]
        except KeyError:
            raise MemoryError_(f"global @{buffer.name} not bound") from None

    # -- scalar access -----------------------------------------------------------

    def load_scalar(self, addr: int, type_: Type):
        size = _scalar_size(type_)
        self._check(addr, size)
        raw = struct.unpack_from(_scalar_code(type_), self._data, addr)[0]
        if isinstance(type_, IntType):
            return type_.wrap(raw)
        return raw

    def store_scalar(self, addr: int, type_: Type, value) -> None:
        size = _scalar_size(type_)
        self._check(addr, size)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        struct.pack_into(_scalar_code(type_), self._data, addr, value)

    # -- vector access -----------------------------------------------------------

    def load_value(self, addr: int, type_: Type):
        """Load a scalar or vector value of ``type_`` starting at ``addr``."""
        if isinstance(type_, VectorType):
            stride = _scalar_size(type_.element)
            return tuple(
                self.load_scalar(addr + i * stride, type_.element)
                for i in range(type_.count)
            )
        return self.load_scalar(addr, type_)

    def store_value(self, addr: int, type_: Type, value) -> None:
        if isinstance(type_, VectorType):
            stride = _scalar_size(type_.element)
            for i, elem in enumerate(value):
                self.store_scalar(addr + i * stride, type_.element, elem)
            return
        self.store_scalar(addr, type_, value)

    # -- array helpers (test/workload convenience) ----------------------------------

    def write_array(self, addr: int, element: Type, values: Sequence) -> None:
        stride = _scalar_size(element)
        for i, value in enumerate(values):
            self.store_scalar(addr + i * stride, element, value)

    def read_array(self, addr: int, element: Type, count: int) -> List:
        stride = _scalar_size(element)
        return [self.load_scalar(addr + i * stride, element) for i in range(count)]

    def write_global(self, name: str, values: Sequence) -> None:
        buffer = self._buffer_objects[name]
        if len(values) > buffer.count:
            raise MemoryError_(
                f"@{name} holds {buffer.count} elements, got {len(values)}"
            )
        self.write_array(self._buffers[name], buffer.element, values)

    def read_global(self, name: str) -> List:
        buffer = self._buffer_objects[name]
        return self.read_array(self._buffers[name], buffer.element, buffer.count)

    # -- internals ---------------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr <= 0 or addr + size > len(self._data):
            raise MemoryError_(f"access of {size} bytes at {addr} out of bounds")
