"""Flat byte-addressed memory for the interpreter.

Pointers in the interpreter are plain integer byte addresses into one
``bytearray``.  Global buffers are laid out at load time with natural
alignment; typed element access goes through :mod:`struct` codes so f32
loads/stores round to binary32 exactly like real hardware.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence

from ..ir.types import FloatType, IntType, Type, VectorType
from ..ir.values import GlobalBuffer


class MemoryError_(Exception):
    """Out-of-bounds or misaligned access (named to avoid the builtin)."""


_INT_CODES = {8: "b", 16: "h", 32: "i", 64: "q"}
_FLOAT_CODES = {32: "f", 64: "d"}


def _scalar_code(type_: Type) -> str:
    if isinstance(type_, IntType):
        # i1 is stored in a full byte.
        return _INT_CODES[max(type_.bits, 8)]
    if isinstance(type_, FloatType):
        return _FLOAT_CODES[type_.bits]
    raise TypeError(f"no storage code for {type_}")


def _scalar_size(type_: Type) -> int:
    return max(type_.byte_width, 1)


class Memory:
    """Flat memory with bump allocation and typed accessors."""

    def __init__(self, size: int = 1 << 20) -> None:
        self._data = bytearray(size)
        self._next = 16  # keep address 0 invalid (null)
        self._buffers: Dict[str, int] = {}
        self._buffer_objects: Dict[str, GlobalBuffer] = {}

    # -- allocation --------------------------------------------------------------

    def allocate(self, size: int, align: int = 16) -> int:
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size > len(self._data):
            raise MemoryError_(
                f"out of memory: need {size} bytes at {addr}, "
                f"capacity {len(self._data)}"
            )
        self._next = addr + size
        return addr

    def bind_global(self, buffer: GlobalBuffer) -> int:
        """Allocate storage for a global buffer and remember its address."""
        if buffer.name in self._buffers:
            return self._buffers[buffer.name]
        size = _scalar_size(buffer.element) * buffer.count
        addr = self.allocate(size)
        self._buffers[buffer.name] = addr
        self._buffer_objects[buffer.name] = buffer
        if buffer.initializer is not None:
            self.write_array(addr, buffer.element, buffer.initializer)
        return addr

    def address_of_global(self, buffer: GlobalBuffer) -> int:
        try:
            return self._buffers[buffer.name]
        except KeyError:
            raise MemoryError_(f"global @{buffer.name} not bound") from None

    # -- scalar access -----------------------------------------------------------

    def load_scalar(self, addr: int, type_: Type):
        size = _scalar_size(type_)
        self._check(addr, size)
        raw = struct.unpack_from(_scalar_code(type_), self._data, addr)[0]
        if isinstance(type_, IntType):
            return type_.wrap(raw)
        return raw

    def store_scalar(self, addr: int, type_: Type, value) -> None:
        size = _scalar_size(type_)
        self._check(addr, size)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        struct.pack_into(_scalar_code(type_), self._data, addr, value)

    # -- vector access -----------------------------------------------------------

    def load_value(self, addr: int, type_: Type):
        """Load a scalar or vector value of ``type_`` starting at ``addr``."""
        if isinstance(type_, VectorType):
            stride = _scalar_size(type_.element)
            return tuple(
                self.load_scalar(addr + i * stride, type_.element)
                for i in range(type_.count)
            )
        return self.load_scalar(addr, type_)

    def store_value(self, addr: int, type_: Type, value) -> None:
        if isinstance(type_, VectorType):
            stride = _scalar_size(type_.element)
            for i, elem in enumerate(value):
                self.store_scalar(addr + i * stride, type_.element, elem)
            return
        self.store_scalar(addr, type_, value)

    # -- packed accessor factories (planned engine) ----------------------------------
    #
    # The batched engine binds one closure per load/store site at plan-bind
    # time.  Each closure captures the pre-compiled ``struct.Struct`` and
    # the raw buffer, so the per-access work is one bounds compare plus one
    # bulk (un)pack — vectors move all lanes in a single struct call.  Any
    # failure (out of bounds, unpackable value) replays the element-wise
    # reference path, which raises the exact reference exception after the
    # exact partial-store prefix.

    def scalar_loader(self, type_: Type):
        """A ``load(addr) -> value`` closure for one scalar type."""
        size = _scalar_size(type_)
        unpack_from = struct.Struct(_scalar_code(type_)).unpack_from
        data = self._data
        limit = len(data)
        if isinstance(type_, IntType) and type_.bits < 8:
            wrap = type_.wrap

            def load(addr):
                if addr <= 0 or addr + size > limit:
                    raise MemoryError_(
                        f"access of {size} bytes at {addr} out of bounds"
                    )
                return wrap(unpack_from(data, addr)[0])

            return load

        # i8..i64 round-trip exactly through their signed struct codes, so
        # the reference path's wrap() is the identity and can be skipped.
        def load(addr):
            if addr <= 0 or addr + size > limit:
                raise MemoryError_(
                    f"access of {size} bytes at {addr} out of bounds"
                )
            return unpack_from(data, addr)[0]

        return load

    def scalar_storer(self, type_: Type):
        """A ``store(addr, value)`` closure for one scalar type."""
        size = _scalar_size(type_)
        pack_into = struct.Struct(_scalar_code(type_)).pack_into
        data = self._data
        limit = len(data)
        if isinstance(type_, IntType):
            wrap = type_.wrap

            def store(addr, value):
                if addr <= 0 or addr + size > limit:
                    raise MemoryError_(
                        f"access of {size} bytes at {addr} out of bounds"
                    )
                pack_into(data, addr, wrap(int(value)))

            return store

        def store(addr, value):
            if addr <= 0 or addr + size > limit:
                raise MemoryError_(
                    f"access of {size} bytes at {addr} out of bounds"
                )
            pack_into(data, addr, value)

        return store

    def vector_loader(self, vec_type: VectorType):
        """A whole-vector ``load(addr) -> tuple`` closure (one bulk unpack)."""
        element = vec_type.element
        count = vec_type.count
        total = _scalar_size(element) * count
        unpack_from = struct.Struct(f"{count}{_scalar_code(element)}").unpack_from
        data = self._data
        limit = len(data)
        if isinstance(element, IntType) and element.bits < 8:
            wrap = element.wrap

            def load(addr):
                if addr <= 0 or addr + total > limit:
                    # element-wise replay raises the reference error
                    return self.load_value(addr, vec_type)
                return tuple(wrap(raw) for raw in unpack_from(data, addr))

            return load

        def load(addr):
            if addr <= 0 or addr + total > limit:
                return self.load_value(addr, vec_type)
            return unpack_from(data, addr)

        return load

    def vector_storer(self, vec_type: VectorType):
        """A whole-vector ``store(addr, values)`` closure (one bulk pack)."""
        element = vec_type.element
        count = vec_type.count
        total = _scalar_size(element) * count
        pack_into = struct.Struct(f"{count}{_scalar_code(element)}").pack_into
        data = self._data
        limit = len(data)
        if isinstance(element, IntType):
            wrap = element.wrap

            def store(addr, values):
                if addr <= 0 or addr + total > limit:
                    self.store_value(addr, vec_type, values)
                    return
                try:
                    pack_into(data, addr, *[wrap(int(v)) for v in values])
                except Exception:
                    # replay element-wise: identical partial-store prefix,
                    # identical per-element exception
                    self.store_value(addr, vec_type, values)

            return store

        def store(addr, values):
            if addr <= 0 or addr + total > limit:
                self.store_value(addr, vec_type, values)
                return
            try:
                pack_into(data, addr, *values)
            except Exception:
                self.store_value(addr, vec_type, values)

        return store

    # -- array helpers (test/workload convenience) ----------------------------------

    def write_array(self, addr: int, element: Type, values: Sequence) -> None:
        count = len(values)
        stride = _scalar_size(element)
        if count and 0 < addr and addr + stride * count <= len(self._data):
            try:
                if isinstance(element, IntType):
                    wrap = element.wrap
                    packed = [wrap(int(v)) for v in values]
                else:
                    packed = values
                struct.pack_into(
                    f"{count}{_scalar_code(element)}", self._data, addr, *packed
                )
                return
            except Exception:
                pass  # element-wise replay raises the reference error
        for i, value in enumerate(values):
            self.store_scalar(addr + i * stride, element, value)

    def read_array(self, addr: int, element: Type, count: int) -> List:
        stride = _scalar_size(element)
        if count and 0 < addr <= addr + stride * count <= len(self._data):
            raw = struct.unpack_from(
                f"{count}{_scalar_code(element)}", self._data, addr
            )
            if isinstance(element, IntType) and element.bits < 8:
                wrap = element.wrap
                return [wrap(v) for v in raw]
            return list(raw)
        return [self.load_scalar(addr + i * stride, element) for i in range(count)]

    def write_global(self, name: str, values: Sequence) -> None:
        buffer = self._buffer_objects[name]
        if len(values) > buffer.count:
            raise MemoryError_(
                f"@{name} holds {buffer.count} elements, got {len(values)}"
            )
        self.write_array(self._buffers[name], buffer.element, values)

    def read_global(self, name: str) -> List:
        buffer = self._buffer_objects[name]
        return self.read_array(self._buffers[name], buffer.element, buffer.count)

    # -- internals ---------------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr <= 0 or addr + size > len(self._data):
            raise MemoryError_(f"access of {size} bytes at {addr} out of bounds")
