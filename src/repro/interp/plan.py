"""Decode/plan layer: compile a :class:`Function` into an execution plan.

The reference interpreter (:mod:`repro.interp.interpreter`) re-dispatches
every executed instruction through an ``isinstance`` ladder and resolves
every operand through a dict keyed by value identity.  This module does all
of that work *once per function*:

* every SSA value (argument, instruction result, constant, global address)
  is assigned a dense **register slot**; constants and global addresses are
  materialized into the register file at bind time, so operand access at
  run time is a plain list index;
* every instruction is compiled to an **emit factory** — a closure maker
  ``emit(regs, memory) -> step()`` that captures its operand slots, its
  pre-specialized lane functions and its memory accessors, so executing
  the instruction is one zero-argument call with no dispatch;
* the cost-model charge of every instruction is pre-computed, and each
  block carries pre-summed totals so straight-line runs can account whole
  blocks at a time (see :mod:`repro.interp.batched`).

Plans are cached on the function object (keyed by cost-model identity);
the ``interp.plan_cache.{hits,misses}`` counters expose cache behaviour.

Semantics parity is the hard constraint: every lane function, trap
message and evaluation order below mirrors the reference interpreter
bit-for-bit — the identity test matrix in ``tests/test_engine.py`` holds
both engines to identical cycles, per-opcode charges, globals and
exception text.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.folding import FoldError, fold_binary, fold_cast
from ..ir.function import Function
from ..ir.instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from ..ir.types import FloatType, IntType, VectorType
from ..ir.values import Constant, GlobalBuffer
from ..machine.costmodel import instruction_cost
from ..observe import STAT
from .interpreter import (
    _INTRINSIC_IMPL,
    InterpreterError,
    TrapError,
    UnsupportedOpcodeError,
)

_PLAN_HITS = STAT("interp.plan_cache.hits", "planned-function cache hits")
_PLAN_MISSES = STAT("interp.plan_cache.misses", "planned-function cache misses")


# -- pre-specialized scalar kernels -----------------------------------------------
#
# Each factory returns a plain ``f(a, b)`` (or ``f(v)``) over raw payloads
# that computes exactly what ``fold_binary`` / ``fold_cast`` / ``compare``
# compute for that (opcode, type) pair — including the exception type and
# message on traps — without re-branching on opcode or type per call.


def _lane_fn(opcode: Opcode, elem) -> Callable:
    """A specialized scalar function for one (binary opcode, element type)."""
    if isinstance(elem, IntType):
        wrap = elem.wrap
        bits = elem.bits
        if opcode is Opcode.ADD:
            return lambda a, b: wrap(a + b)
        if opcode is Opcode.SUB:
            return lambda a, b: wrap(a - b)
        if opcode is Opcode.MUL:
            return lambda a, b: wrap(a * b)
        if opcode is Opcode.SDIV:

            def sdiv(a, b):
                if b == 0:
                    raise FoldError("integer division by zero")
                return wrap(int(a / b))

            return sdiv
        if opcode is Opcode.AND:
            return lambda a, b: wrap(a & b)
        if opcode is Opcode.OR:
            return lambda a, b: wrap(a | b)
        if opcode is Opcode.XOR:
            return lambda a, b: wrap(a ^ b)
        if opcode is Opcode.SHL:
            return lambda a, b: wrap(a << (b % bits))
        if opcode is Opcode.ASHR:
            return lambda a, b: wrap(a >> (b % bits))
    if isinstance(elem, FloatType):
        if elem.bits == 64:
            if opcode is Opcode.FADD:
                return lambda a, b: a + b
            if opcode is Opcode.FSUB:
                return lambda a, b: a - b
            if opcode is Opcode.FMUL:
                return lambda a, b: a * b
            if opcode is Opcode.FDIV:

                def fdiv(a, b):
                    if b == 0.0:
                        return math.copysign(math.inf, a) if a != 0 else math.nan
                    return a / b

                return fdiv
        if elem.bits == 32:
            # binary32 rounding through the same struct round-trip as
            # folding._round, so overflow raises the identical error.
            pack = struct.pack
            unpack = struct.unpack
            if opcode is Opcode.FADD:
                return lambda a, b: unpack("f", pack("f", a + b))[0]
            if opcode is Opcode.FSUB:
                return lambda a, b: unpack("f", pack("f", a - b))[0]
            if opcode is Opcode.FMUL:
                return lambda a, b: unpack("f", pack("f", a * b))[0]
            if opcode is Opcode.FDIV:

                def fdiv32(a, b):
                    if b == 0.0:
                        return math.copysign(math.inf, a) if a != 0 else math.nan
                    return unpack("f", pack("f", a / b))[0]

                return fdiv32
    # Unfoldable (opcode, type) pairs trap exactly like the reference path.
    return lambda a, b: fold_binary(opcode, elem, a, b)


_CMP_FNS: Dict[CmpPredicate, Callable] = {
    CmpPredicate.EQ: lambda a, b: 1 if a == b else 0,
    CmpPredicate.NE: lambda a, b: 1 if a != b else 0,
    CmpPredicate.LT: lambda a, b: 1 if a < b else 0,
    CmpPredicate.LE: lambda a, b: 1 if a <= b else 0,
    CmpPredicate.GT: lambda a, b: 1 if a > b else 0,
    CmpPredicate.GE: lambda a, b: 1 if a >= b else 0,
}


def _cast_fn(opcode: Opcode, to_type) -> Callable:
    """A specialized scalar cast for one (cast opcode, target type)."""
    if opcode in (Opcode.SITOFP, Opcode.FPEXT, Opcode.FPTRUNC) and isinstance(
        to_type, FloatType
    ):
        if to_type.bits == 32:
            pack = struct.pack
            unpack = struct.unpack
            return lambda v: unpack("f", pack("f", float(v)))[0]
        return lambda v: float(v)
    if opcode in (Opcode.FPTOSI, Opcode.SEXT, Opcode.TRUNC) and isinstance(
        to_type, IntType
    ):
        wrap = to_type.wrap
        return lambda v: wrap(int(v))
    return lambda v: fold_cast(opcode, v, to_type)


# -- plan data structures ----------------------------------------------------------


class BlockPlan:
    """One basic block, decoded: phi tables, step closures, terminator."""

    __slots__ = (
        "name",
        "block",
        "index",
        "phi_insts",
        "phi_dsts",
        "phi_costs",
        "phi_tables",
        "emits",
        "step_insts",
        "step_costs",
        "terminator",
        "term_inst",
        "term_cost",
        "count",
        "cost_total",
        "per_opcode",
    )


class FunctionPlan:
    """A fully decoded function: slot allocation plus per-block traces."""

    __slots__ = (
        "function",
        "num_slots",
        "const_binds",
        "global_binds",
        "arg_slots",
        "blocks",
        "entry_has_phis",
        "exact",
    )


def _cost_is_exact(cost: float) -> bool:
    """True when per-block pre-summed accounting of ``cost`` is bit-exact.

    All the default cost-model charges are small multiples of 1/16, which
    float arithmetic sums and scales exactly — so ``visits * block_total``
    equals the reference engine's sequential accumulation bit-for-bit.
    Anything else (odd fractions, huge or non-finite charges) forces the
    per-step slow path.
    """
    return 0.0 <= cost <= 4096.0 and (cost * 16.0).is_integer()


# -- per-instruction emit factories ------------------------------------------------


def _emit_for(inst: Instruction, slot_of: Callable) -> Callable:
    """Compile one non-phi, non-terminator instruction to an emit factory.

    The factory runs at bind time (``emit(regs, memory)``) and returns the
    zero-argument ``step`` closure executed on the hot path.
    """
    if isinstance(inst, BinaryInst):
        d = slot_of(inst)
        a = slot_of(inst.lhs)
        b = slot_of(inst.rhs)
        if isinstance(inst.type, VectorType):
            fn = _lane_fn(inst.opcode, inst.type.element)

            def emit(regs, memory, d=d, a=a, b=b, fn=fn):
                def step():
                    try:
                        regs[d] = tuple(map(fn, regs[a], regs[b]))
                    except Exception as exc:  # FoldError -> runtime trap
                        raise TrapError(str(exc)) from exc

                return step

            return emit
        fn = _lane_fn(inst.opcode, inst.type)

        def emit(regs, memory, d=d, a=a, b=b, fn=fn):
            def step():
                try:
                    regs[d] = fn(regs[a], regs[b])
                except Exception as exc:  # FoldError -> runtime trap
                    raise TrapError(str(exc)) from exc

            return step

        return emit

    if isinstance(inst, AltBinaryInst):
        d = slot_of(inst)
        a = slot_of(inst.lhs)
        b = slot_of(inst.rhs)
        fns = tuple(
            _lane_fn(op, inst.type.element) for op in inst.lane_opcodes
        )

        def emit(regs, memory, d=d, a=a, b=b, fns=fns):
            def step():
                try:
                    regs[d] = tuple(
                        f(x, y) for f, x, y in zip(fns, regs[a], regs[b])
                    )
                except Exception as exc:  # FoldError -> runtime trap
                    raise TrapError(str(exc)) from exc

            return step

        return emit

    if isinstance(inst, LoadInst):
        d = slot_of(inst)
        p = slot_of(inst.pointer)
        type_ = inst.type
        if isinstance(type_, VectorType):

            def emit(regs, memory, d=d, p=p, type_=type_):
                load = memory.vector_loader(type_)

                def step():
                    regs[d] = load(regs[p])

                return step

            return emit

        def emit(regs, memory, d=d, p=p, type_=type_):
            load = memory.scalar_loader(type_)

            def step():
                regs[d] = load(regs[p])

            return step

        return emit

    if isinstance(inst, StoreInst):
        v = slot_of(inst.value)
        p = slot_of(inst.pointer)
        type_ = inst.value.type
        if isinstance(type_, VectorType):

            def emit(regs, memory, v=v, p=p, type_=type_):
                store = memory.vector_storer(type_)

                def step():
                    store(regs[p], regs[v])

                return step

            return emit

        def emit(regs, memory, v=v, p=p, type_=type_):
            store = memory.scalar_storer(type_)

            def step():
                store(regs[p], regs[v])

            return step

        return emit

    if isinstance(inst, GepInst):
        d = slot_of(inst)
        base = slot_of(inst.base)
        index = slot_of(inst.index)
        stride = max(inst.type.pointee.byte_width, 1)

        def emit(regs, memory, d=d, base=base, index=index, stride=stride):
            def step():
                regs[d] = regs[base] + regs[index] * stride

            return step

        return emit

    if isinstance(inst, InsertElementInst):
        d = slot_of(inst)
        v = slot_of(inst.vector)
        s = slot_of(inst.scalar)
        l = slot_of(inst.lane)

        def emit(regs, memory, d=d, v=v, s=s, l=l):
            def step():
                vec = list(regs[v])
                lane = regs[l]
                if not 0 <= lane < len(vec):
                    raise TrapError(f"insertelement lane {lane} out of range")
                vec[lane] = regs[s]
                regs[d] = tuple(vec)

            return step

        return emit

    if isinstance(inst, ExtractElementInst):
        d = slot_of(inst)
        v = slot_of(inst.vector)
        l = slot_of(inst.lane)

        def emit(regs, memory, d=d, v=v, l=l):
            def step():
                vec = regs[v]
                lane = regs[l]
                if not 0 <= lane < len(vec):
                    raise TrapError(f"extractelement lane {lane} out of range")
                regs[d] = vec[lane]

            return step

        return emit

    if isinstance(inst, ShuffleVectorInst):
        d = slot_of(inst)
        a = slot_of(inst.a)
        b = slot_of(inst.b)
        mask = inst.mask

        def emit(regs, memory, d=d, a=a, b=b, mask=mask):
            def step():
                joined = tuple(regs[a]) + tuple(regs[b])
                if any(not 0 <= m < len(joined) for m in mask):
                    raise InterpreterError(
                        f"shufflevector mask {mask} out of range for "
                        f"{len(joined)} source lanes"
                    )
                regs[d] = tuple(joined[m] for m in mask)

            return step

        return emit

    if isinstance(inst, CmpInst):
        d = slot_of(inst)
        a = slot_of(inst.lhs)
        b = slot_of(inst.rhs)
        fn = _CMP_FNS[inst.predicate]
        if isinstance(inst.lhs.type, VectorType):

            def emit(regs, memory, d=d, a=a, b=b, fn=fn):
                def step():
                    regs[d] = tuple(map(fn, regs[a], regs[b]))

                return step

            return emit

        def emit(regs, memory, d=d, a=a, b=b, fn=fn):
            def step():
                regs[d] = fn(regs[a], regs[b])

            return step

        return emit

    if isinstance(inst, SelectInst):
        d = slot_of(inst)
        c = slot_of(inst.cond)
        x = slot_of(inst.operand(1))
        y = slot_of(inst.operand(2))
        if isinstance(inst.cond.type, VectorType):

            def emit(regs, memory, d=d, c=c, x=x, y=y):
                def step():
                    # vector select: per-lane mask pick
                    regs[d] = tuple(
                        xx if cc else yy
                        for cc, xx, yy in zip(regs[c], regs[x], regs[y])
                    )

                return step

            return emit

        def emit(regs, memory, d=d, c=c, x=x, y=y):
            def step():
                regs[d] = regs[x] if regs[c] else regs[y]

            return step

        return emit

    if isinstance(inst, CastInst):
        d = slot_of(inst)
        v = slot_of(inst.value)
        if isinstance(inst.value.type, VectorType):
            fn = _cast_fn(inst.opcode, inst.type.scalar_type())

            def emit(regs, memory, d=d, v=v, fn=fn):
                def step():
                    regs[d] = tuple(map(fn, regs[v]))

                return step

            return emit
        fn = _cast_fn(inst.opcode, inst.type)

        def emit(regs, memory, d=d, v=v, fn=fn):
            def step():
                regs[d] = fn(regs[v])

            return step

        return emit

    if isinstance(inst, CallInst):
        impl = _INTRINSIC_IMPL.get(inst.callee)
        if impl is None:
            message = (
                f"interpreter has no implementation for intrinsic "
                f"@{inst.callee}"
            )

            def emit(regs, memory, message=message):
                def step():
                    raise UnsupportedOpcodeError(message)

                return step

            return emit
        d = slot_of(inst)
        arg_slots = tuple(slot_of(op) for op in inst.operands)
        vector = isinstance(inst.type, VectorType)
        if len(arg_slots) == 1:
            (a,) = arg_slots
            if vector:

                def emit(regs, memory, d=d, a=a, impl=impl):
                    def step():
                        regs[d] = tuple(map(impl, regs[a]))

                    return step

                return emit

            def emit(regs, memory, d=d, a=a, impl=impl):
                def step():
                    regs[d] = impl(regs[a])

                return step

            return emit
        a, b = arg_slots
        if vector:

            def emit(regs, memory, d=d, a=a, b=b, impl=impl):
                def step():
                    regs[d] = tuple(map(impl, regs[a], regs[b]))

                return step

            return emit

        def emit(regs, memory, d=d, a=a, b=b, impl=impl):
            def step():
                regs[d] = impl(regs[a], regs[b])

            return step

        return emit

    # Unknown instruction class: same interpreter-gap error, at execution
    # time (never at plan time — unreached code must not fail the plan).
    message = f"unhandled instruction {inst.opcode}"

    def emit(regs, memory, message=message):
        def step():
            raise UnsupportedOpcodeError(message)

        return step

    return emit


# -- plan construction -------------------------------------------------------------


def _build_plan(function: Function, cost_model) -> FunctionPlan:
    slots: Dict[int, int] = {}
    const_binds: List[Tuple[int, object]] = []
    global_binds: List[Tuple[int, GlobalBuffer]] = []

    def slot_of(value) -> int:
        key = id(value)
        slot = slots.get(key)
        if slot is None:
            slot = len(slots)
            slots[key] = slot
            if isinstance(value, Constant):
                const_binds.append((slot, value.value))
            elif isinstance(value, GlobalBuffer):
                global_binds.append((slot, value))
        return slot

    def cost_of(inst: Instruction) -> float:
        if cost_model is None:
            return 0.0
        return instruction_cost(cost_model, inst)

    block_index = {id(b): i for i, b in enumerate(function.blocks)}
    blocks: List[BlockPlan] = []
    exact = True

    for index, block in enumerate(function.blocks):
        bp = BlockPlan()
        bp.name = block.name
        bp.block = block
        bp.index = index

        phis = block.phis()
        bp.phi_insts = phis
        bp.phi_dsts = [slot_of(phi) for phi in phis]
        bp.phi_costs = [cost_of(phi) for phi in phis]
        tables: Dict[int, object] = {}
        preds: List = []
        seen = set()
        for phi in phis:
            for _, pred in phi.incoming():
                if id(pred) not in seen:
                    seen.add(id(pred))
                    preds.append(pred)
        for pred in preds:
            srcs: List[int] = []
            entry: object = srcs
            for phi in phis:
                try:
                    value = phi.incoming_for(pred)
                except KeyError as exc:
                    # raised at run time, exactly like the reference
                    entry = KeyError(exc.args[0])
                    break
                srcs.append(slot_of(value))
            tables[id(pred)] = entry
        bp.phi_tables = tables

        emits: List[Callable] = []
        step_insts: List[Instruction] = []
        step_costs: List[float] = []
        term_inst: Optional[Instruction] = None
        for inst in block.non_phi_instructions():
            if inst.is_terminator:
                term_inst = inst
                break
            emits.append(_emit_for(inst, slot_of))
            step_insts.append(inst)
            step_costs.append(cost_of(inst))
        bp.emits = emits
        bp.step_insts = step_insts
        bp.step_costs = step_costs

        bp.term_inst = term_inst
        if term_inst is None:
            bp.terminator = ("fallthrough",)
            bp.term_cost = 0.0
        elif isinstance(term_inst, RetInst):
            ret_slot = (
                slot_of(term_inst.value) if term_inst.value is not None else None
            )
            bp.terminator = ("ret", ret_slot)
            bp.term_cost = cost_of(term_inst)
        elif isinstance(term_inst, CondBranchInst):
            bp.terminator = (
                "condbr",
                slot_of(term_inst.cond),
                block_index[id(term_inst.if_true)],
                block_index[id(term_inst.if_false)],
            )
            bp.term_cost = cost_of(term_inst)
        else:  # BranchInst
            bp.terminator = ("br", block_index[id(term_inst.target)])
            bp.term_cost = cost_of(term_inst)

        bp.count = len(phis) + len(emits) + (1 if term_inst is not None else 0)
        all_costs = bp.phi_costs + step_costs + (
            [bp.term_cost] if term_inst is not None else []
        )
        bp.cost_total = sum(all_costs)
        per_opcode: Dict[Opcode, float] = {}
        charged = list(zip(phis, bp.phi_costs)) + list(zip(step_insts, step_costs))
        if term_inst is not None:
            charged.append((term_inst, bp.term_cost))
        for inst, cost in charged:
            per_opcode[inst.opcode] = per_opcode.get(inst.opcode, 0.0) + cost
        bp.per_opcode = per_opcode

        if exact and not all(_cost_is_exact(c) for c in all_costs):
            exact = False
        blocks.append(bp)

    plan = FunctionPlan()
    plan.function = function
    plan.num_slots = len(slots)
    plan.const_binds = const_binds
    plan.global_binds = global_binds
    plan.arg_slots = [slots.get(id(arg)) for arg in function.arguments]
    plan.blocks = blocks
    plan.entry_has_phis = bool(blocks) and bool(blocks[0].phi_insts)
    plan.exact = exact
    return plan


def plan_function(function: Function, cost_model=None) -> FunctionPlan:
    """The (cached) execution plan for ``function`` under ``cost_model``.

    Plans are memoized on the function object, keyed by cost-model
    *identity* — targets hold one long-lived :class:`CostModel` each, so
    identity is the right equivalence and keeps lookups O(models-seen).
    """
    cache = getattr(function, "_repro_plans", None)
    if cache is not None:
        for model, plan in cache:
            if model is cost_model:
                _PLAN_HITS.add()
                return plan
    _PLAN_MISSES.add()
    plan = _build_plan(function, cost_model)
    if cache is None:
        cache = []
        function._repro_plans = cache
    cache.append((cost_model, plan))
    return plan
