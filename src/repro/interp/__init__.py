"""Reference interpreter and flat memory model for the repro IR."""

from .memory import Memory, MemoryError_
from .interpreter import (
    Interpreter,
    InterpreterError,
    TrapError,
    UnsupportedOpcodeError,
    run_kernel,
)

__all__ = [
    "Memory",
    "MemoryError_",
    "Interpreter",
    "InterpreterError",
    "TrapError",
    "UnsupportedOpcodeError",
    "run_kernel",
]
