"""Reference interpreter and flat memory model for the repro IR."""

from .memory import Memory, MemoryError_
from .interpreter import (
    BudgetExceededError,
    Interpreter,
    InterpreterError,
    TrapError,
    UnsupportedOpcodeError,
    run_kernel,
)

__all__ = [
    "Memory",
    "MemoryError_",
    "BudgetExceededError",
    "Interpreter",
    "InterpreterError",
    "TrapError",
    "UnsupportedOpcodeError",
    "run_kernel",
]
