"""Reference interpreter, planned batched engine and flat memory model."""

from .memory import Memory, MemoryError_
from .interpreter import (
    BudgetExceededError,
    Interpreter,
    InterpreterError,
    TrapError,
    UnsupportedOpcodeError,
    run_kernel,
)
from .plan import BlockPlan, FunctionPlan, plan_function
from .batched import BatchedInterpreter
from .engine import (
    ENGINES,
    default_engine,
    make_interpreter,
    resolve_engine,
    set_default_engine,
)

__all__ = [
    "Memory",
    "MemoryError_",
    "BudgetExceededError",
    "Interpreter",
    "InterpreterError",
    "TrapError",
    "UnsupportedOpcodeError",
    "run_kernel",
    "BlockPlan",
    "FunctionPlan",
    "plan_function",
    "BatchedInterpreter",
    "ENGINES",
    "default_engine",
    "make_interpreter",
    "resolve_engine",
    "set_default_engine",
]
