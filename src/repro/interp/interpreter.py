"""Reference interpreter for the repro IR.

The interpreter is the project's semantic oracle: every vectorizing
transformation must preserve the observable behaviour (global buffer
contents and return values) of every kernel under it.  It executes scalar
*and* vector instructions, so both pre- and post-vectorization IR run on
the same engine.

An ``on_execute`` hook fires for every executed instruction; the cycle
simulator (:mod:`repro.sim.executor`) uses it to accumulate costs without
duplicating the execution logic.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from ..ir.folding import compare, fold_binary, fold_cast
from ..ir.module import Module
from ..ir.types import IntType, PointerType, Type, VectorType
from ..ir.values import Argument, Constant, GlobalBuffer, Value
from ..robust.faults import current_faults
from .memory import Memory


class InterpreterError(Exception):
    """Raised on runtime faults (budget exhaustion, bad operands...)."""


class TrapError(InterpreterError):
    """Raised when the interpreted program traps (e.g. divide by zero)."""


class UnsupportedOpcodeError(InterpreterError):
    """Raised when the interpreter itself lacks support for an opcode or
    intrinsic — an *interpreter gap*, not a property of the program.

    The differential oracle (:mod:`repro.fuzz.oracle`) relies on this
    distinction: a gap means "extend the interpreter", while any other
    divergence between scalar and vectorized runs means "miscompile".
    """


class BudgetExceededError(InterpreterError):
    """Raised when execution exhausts its step budget — the watchdog that
    keeps a malformed loop from hanging the oracle or CI.

    A sibling of :class:`UnsupportedOpcodeError`: typed so callers (the
    fuzzing oracle, the CLI's exit-code mapping) can tell "the program
    ran too long" apart from genuine interpreter faults.
    """


def _elementwise(op, a, b):
    if isinstance(a, tuple):
        return tuple(op(x, y) for x, y in zip(a, b))
    return op(a, b)


_INTRINSIC_IMPL = {
    "sqrt": lambda a: math.sqrt(a) if a >= 0 else math.nan,
    "fabs": abs,
    "fmin": min,
    "fmax": max,
    "smin": min,
    "smax": max,
}


class Interpreter:
    """Executes functions of a module against a flat memory."""

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        max_steps: Optional[int] = None,
        on_execute: Optional[Callable[[Instruction], None]] = None,
        instruction_budget: Optional[int] = None,
    ) -> None:
        if instruction_budget is not None:
            warnings.warn(
                "instruction_budget is deprecated; use max_steps",
                DeprecationWarning,
                stacklevel=2,
            )
            if max_steps is None:
                max_steps = instruction_budget
        self.module = module
        self.memory = memory if memory is not None else Memory()
        #: ``max_steps`` is the single watchdog knob; the attribute keeps
        #: its historical name for the fault-injection stall hook
        self.instruction_budget = (
            max_steps if max_steps is not None else 50_000_000
        )
        self.on_execute = on_execute
        self.executed_instructions = 0
        for buffer in module.globals.values():
            self.memory.bind_global(buffer)

    # -- public API ---------------------------------------------------------------

    def run(self, function_name: str, args: Sequence = ()) -> object:
        """Execute a function to completion; returns its return value."""
        function = self.module.function(function_name)
        if len(args) != len(function.arguments):
            raise InterpreterError(
                f"@{function_name} takes {len(function.arguments)} args, "
                f"got {len(args)}"
            )
        env: Dict[int, object] = {}
        for formal, actual in zip(function.arguments, args):
            env[id(formal)] = self._coerce_argument(formal, actual)
        return self._run_function(function, env)

    def read_global(self, name: str) -> List:
        return self.memory.read_global(name)

    def write_global(self, name: str, values: Sequence) -> None:
        self.memory.write_global(name, values)

    # -- execution engine ----------------------------------------------------------

    def _coerce_argument(self, formal: Argument, actual):
        type_ = formal.type
        if isinstance(type_, PointerType):
            if isinstance(actual, GlobalBuffer):
                return self.memory.address_of_global(actual)
            return int(actual)
        if isinstance(type_, IntType):
            return type_.wrap(int(actual))
        if isinstance(type_, VectorType):
            return tuple(actual)
        return float(actual)

    def _value(self, env: Dict[int, object], value: Value):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalBuffer):
            return self.memory.address_of_global(value)
        try:
            return env[id(value)]
        except KeyError:
            raise InterpreterError(f"use of undefined value %{value.name}") from None

    def _run_function(self, function: Function, env: Dict[int, object]):
        block = function.entry
        previous: Optional[BasicBlock] = None
        while True:
            # Phis first, evaluated simultaneously against the *previous*
            # environment so swaps through phis work.
            phis = block.phis()
            if phis:
                if previous is None:
                    raise InterpreterError(
                        f"entry block {block.name} must not contain phis"
                    )
                staged = [
                    (phi, self._value(env, phi.incoming_for(previous)))
                    for phi in phis
                ]
                for phi, value in staged:
                    env[id(phi)] = value
                    self._tick(phi)
            transfer = None
            for inst in block.non_phi_instructions():
                transfer = self._execute(env, inst)
                self._tick(inst)
                if transfer is not None:
                    break
            if transfer is None:
                raise InterpreterError(f"block {block.name} fell through")
            kind, payload = transfer
            if kind == "ret":
                return payload
            previous = block
            block = payload

    def _tick(self, inst: Instruction) -> None:
        self.executed_instructions += 1
        faults = current_faults()
        if faults.armed:
            faults.fire("interp.step", stall=self._stall)
        if self.executed_instructions > self.instruction_budget:
            raise BudgetExceededError(
                f"step budget exhausted after {self.instruction_budget} "
                "instructions (likely an infinite loop)"
            )
        if self.on_execute is not None:
            self.on_execute(inst)

    def _stall(self) -> None:
        """Injected stall: burn the remaining step budget so the watchdog
        fires deterministically (no wall-clock dependence)."""
        self.executed_instructions = self.instruction_budget + 1

    # -- single instruction dispatch ---------------------------------------------------

    def _execute(self, env: Dict[int, object], inst: Instruction):
        if isinstance(inst, BinaryInst):
            a = self._value(env, inst.lhs)
            b = self._value(env, inst.rhs)
            env[id(inst)] = self._binary(inst.opcode, inst.type, a, b)
            return None
        if isinstance(inst, AltBinaryInst):
            a = self._value(env, inst.lhs)
            b = self._value(env, inst.rhs)
            elem = inst.type.scalar_type()
            env[id(inst)] = tuple(
                self._binary(op, elem, x, y)
                for op, x, y in zip(inst.lane_opcodes, a, b)
            )
            return None
        if isinstance(inst, LoadInst):
            addr = self._value(env, inst.pointer)
            env[id(inst)] = self.memory.load_value(addr, inst.type)
            return None
        if isinstance(inst, StoreInst):
            addr = self._value(env, inst.pointer)
            self.memory.store_value(
                addr, inst.value.type, self._value(env, inst.value)
            )
            return None
        if isinstance(inst, GepInst):
            base = self._value(env, inst.base)
            index = self._value(env, inst.index)
            stride = max(inst.type.pointee.byte_width, 1)
            env[id(inst)] = base + index * stride
            return None
        if isinstance(inst, InsertElementInst):
            vec = list(self._value(env, inst.vector))
            lane = self._value(env, inst.lane)
            if not 0 <= lane < len(vec):
                raise TrapError(f"insertelement lane {lane} out of range")
            vec[lane] = self._value(env, inst.scalar)
            env[id(inst)] = tuple(vec)
            return None
        if isinstance(inst, ExtractElementInst):
            vec = self._value(env, inst.vector)
            lane = self._value(env, inst.lane)
            if not 0 <= lane < len(vec):
                raise TrapError(f"extractelement lane {lane} out of range")
            env[id(inst)] = vec[lane]
            return None
        if isinstance(inst, ShuffleVectorInst):
            a = self._value(env, inst.a)
            b = self._value(env, inst.b)
            joined = tuple(a) + tuple(b)
            if any(not 0 <= m < len(joined) for m in inst.mask):
                raise InterpreterError(
                    f"shufflevector mask {inst.mask} out of range for "
                    f"{len(joined)} source lanes"
                )
            env[id(inst)] = tuple(joined[m] for m in inst.mask)
            return None
        if isinstance(inst, CmpInst):
            a = self._value(env, inst.lhs)
            b = self._value(env, inst.rhs)
            if isinstance(a, tuple):
                env[id(inst)] = tuple(
                    compare(inst.predicate, x, y) for x, y in zip(a, b)
                )
            else:
                env[id(inst)] = compare(inst.predicate, a, b)
            return None
        if isinstance(inst, SelectInst):
            cond = self._value(env, inst.cond)
            a = self._value(env, inst.operand(1))
            b = self._value(env, inst.operand(2))
            if isinstance(cond, tuple):
                # vector select: per-lane mask pick
                env[id(inst)] = tuple(
                    x if c else y for c, x, y in zip(cond, a, b)
                )
            else:
                env[id(inst)] = a if cond else b
            return None
        if isinstance(inst, CastInst):
            value = self._value(env, inst.value)
            if isinstance(value, tuple):
                elem = inst.type.scalar_type()
                env[id(inst)] = tuple(
                    fold_cast(inst.opcode, v, elem) for v in value
                )
            else:
                env[id(inst)] = fold_cast(inst.opcode, value, inst.type)
            return None
        if isinstance(inst, CallInst):
            impl = _INTRINSIC_IMPL.get(inst.callee)
            if impl is None:
                raise UnsupportedOpcodeError(
                    f"interpreter has no implementation for intrinsic "
                    f"@{inst.callee}"
                )
            args = [self._value(env, op) for op in inst.operands]
            if isinstance(args[0], tuple):
                lanes = zip(*args)
                env[id(inst)] = tuple(impl(*lane) for lane in lanes)
            else:
                env[id(inst)] = impl(*args)
            return None
        if isinstance(inst, BranchInst):
            return ("br", inst.target)
        if isinstance(inst, CondBranchInst):
            cond = self._value(env, inst.cond)
            return ("br", inst.if_true if cond else inst.if_false)
        if isinstance(inst, RetInst):
            value = (
                self._value(env, inst.value) if inst.value is not None else None
            )
            return ("ret", value)
        raise UnsupportedOpcodeError(f"unhandled instruction {inst.opcode}")

    def _binary(self, opcode: Opcode, type_: Type, a, b):
        elem = type_.scalar_type()
        try:
            if isinstance(a, tuple):
                return tuple(fold_binary(opcode, elem, x, y) for x, y in zip(a, b))
            return fold_binary(opcode, elem, a, b)
        except Exception as exc:  # FoldError -> runtime trap
            raise TrapError(str(exc)) from exc


def run_kernel(
    module: Module,
    function_name: str,
    args: Sequence = (),
    inputs: Optional[Dict[str, Sequence]] = None,
) -> Dict[str, List]:
    """Convenience: run a kernel and return the contents of all globals.

    ``inputs`` maps global names to initial contents (overriding any static
    initializer).  Returns a dict of global name -> final contents.
    """
    interp = Interpreter(module)
    if inputs:
        for name, values in inputs.items():
            interp.write_global(name, values)
    interp.run(function_name, args)
    return {name: interp.read_global(name) for name in module.globals}
