"""Engine selection: scalar reference interpreter vs batched planned engine.

The knob is process-wide and carried in the ``REPRO_ENGINE`` environment
variable so that worker processes spawned by the parallel fuzz/bench
drivers inherit the parent's choice without any payload plumbing.
"""

from __future__ import annotations

import os
from typing import Optional

ENGINES = ("scalar", "batched")

_ENV_VAR = "REPRO_ENGINE"
_DEFAULT = "batched"


def default_engine() -> str:
    """The process-wide engine name (``REPRO_ENGINE`` or ``batched``)."""
    name = os.environ.get(_ENV_VAR, _DEFAULT)
    return name if name in ENGINES else _DEFAULT


def set_default_engine(name: str) -> None:
    """Set the process-wide engine; inherited by spawned workers."""
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    os.environ[_ENV_VAR] = name


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an explicit engine name (or None for the default)."""
    if engine is None:
        return default_engine()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def make_interpreter(module, engine: Optional[str] = None, **kwargs):
    """Build an interpreter for ``module`` on the resolved engine."""
    name = resolve_engine(engine)
    if name == "scalar":
        from .interpreter import Interpreter

        kwargs.pop("cost_model", None)
        return Interpreter(module, **kwargs)
    from .batched import BatchedInterpreter

    return BatchedInterpreter(module, **kwargs)
