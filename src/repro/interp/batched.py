"""Batched evaluation engine over pre-decoded execution plans.

The second half of the plan/evaluate split (see :mod:`repro.interp.plan`):
a :class:`BatchedInterpreter` binds a function's cached plan to one flat
register list plus packed memory accessors, then executes whole basic
blocks at a time — one pre-built zero-argument closure per instruction, a
single budget check and a single visit-count increment per block, and
cycle accounting folded to ``visits x pre-summed block cost`` at the end.

Semantics are bit-identical to the reference engine by construction:

* the **fast path** only runs when nothing can observe per-step state —
  no ``on_execute`` hook, no armed fault plan, block provably inside the
  step budget, and exactly-summable cost charges;
* otherwise the block falls back to a **slow path** that ticks per
  instruction in exactly the reference order (count, fault fire, budget
  check, hook, charge), so ``BudgetExceededError`` fires at the same step
  and injected faults see every ``interp.step`` site hit.

Cost accounting lives *in* the engine (``cycles`` / ``instructions`` /
``per_opcode`` attributes) instead of an external ``on_execute`` counter,
which is what makes whole-block accounting possible.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.instructions import Instruction, Opcode
from ..ir.module import Module
from ..ir.types import IntType, PointerType, VectorType
from ..ir.values import Argument, GlobalBuffer
from ..robust.faults import current_faults
from .interpreter import BudgetExceededError, InterpreterError
from .memory import Memory
from .plan import BlockPlan, FunctionPlan, plan_function


class BatchedInterpreter:
    """Executes module functions through cached plans and packed buffers.

    Drop-in behavioural twin of :class:`~repro.interp.interpreter.
    Interpreter`; additionally accounts cycles internally when given a
    ``cost_model`` (the scalar engine needs an external
    :class:`~repro.sim.executor.CycleCounter` for that).
    """

    def __init__(
        self,
        module: Module,
        memory: Optional[Memory] = None,
        max_steps: Optional[int] = None,
        on_execute: Optional[Callable[[Instruction], None]] = None,
        cost_model=None,
        instruction_budget: Optional[int] = None,
    ) -> None:
        if instruction_budget is not None:
            warnings.warn(
                "instruction_budget is deprecated; use max_steps",
                DeprecationWarning,
                stacklevel=2,
            )
            if max_steps is None:
                max_steps = instruction_budget
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.instruction_budget = max_steps if max_steps is not None else 50_000_000
        self.on_execute = on_execute
        self.cost_model = cost_model
        self.executed_instructions = 0
        #: internal cycle accounting (populated when ``cost_model`` given)
        self.cycles = 0.0
        self.instructions = 0
        self.per_opcode: Dict[Opcode, float] = {}
        for buffer in module.globals.values():
            self.memory.bind_global(buffer)

    # -- public API ---------------------------------------------------------------

    def run(self, function_name: str, args: Sequence = ()) -> object:
        """Execute a function to completion; returns its return value."""
        function = self.module.function(function_name)
        if len(args) != len(function.arguments):
            raise InterpreterError(
                f"@{function_name} takes {len(function.arguments)} args, "
                f"got {len(args)}"
            )
        plan = plan_function(function, self.cost_model)
        if not plan.blocks:
            function.entry  # raises the reference ValueError
        memory = self.memory
        regs: List[object] = [None] * plan.num_slots
        for slot, payload in plan.const_binds:
            regs[slot] = payload
        for slot, buffer in plan.global_binds:
            regs[slot] = memory.address_of_global(buffer)
        for slot, formal, actual in zip(
            plan.arg_slots, function.arguments, args
        ):
            coerced = self._coerce_argument(formal, actual)
            if slot is not None:
                regs[slot] = coerced
        if plan.entry_has_phis:
            raise InterpreterError(
                f"entry block {plan.blocks[0].name} must not contain phis"
            )
        steps_by_block = [
            [emit(regs, memory) for emit in bp.emits] for bp in plan.blocks
        ]
        visits = [0] * len(plan.blocks)
        try:
            return self._run(plan, regs, steps_by_block, visits)
        finally:
            self._finalize(plan, visits)

    def read_global(self, name: str) -> List:
        return self.memory.read_global(name)

    def write_global(self, name: str, values: Sequence) -> None:
        self.memory.write_global(name, values)

    # -- execution ----------------------------------------------------------------

    def _run(
        self,
        plan: FunctionPlan,
        regs: List[object],
        steps_by_block: List[List[Callable]],
        visits: List[int],
    ):
        blocks = plan.blocks
        budget = self.instruction_budget
        fast_ok = plan.exact and self.on_execute is None
        faults = current_faults()
        # flattened per-block records: one tuple load per block visit
        # instead of six attribute lookups on the BlockPlan
        bound = [
            (
                bp.phi_dsts if bp.phi_insts else None,
                bp.phi_tables,
                steps_by_block[bp.index],
                bp.count,
                bp.terminator,
                bp.name,
            )
            for bp in blocks
        ]
        executed = self.executed_instructions
        idx = 0
        prev: Optional[BlockPlan] = None
        try:
            while True:
                dsts, tables, steps, count, term, name = bound[idx]
                if fast_ok and not faults.armed and executed + count <= budget:
                    if dsts is not None:
                        table = tables.get(id(prev.block))
                        if table is None:
                            raise KeyError(
                                f"phi has no incoming edge from {prev.name}"
                            )
                        if type(table) is not list:
                            raise table
                        # simultaneous assignment: reads before any write
                        staged = [regs[src] for src in table]
                        for dst, value in zip(dsts, staged):
                            regs[dst] = value
                    for step in steps:
                        step()
                    executed += count
                    visits[idx] += 1
                    kind = term[0]
                    if kind == "br":
                        prev = blocks[idx]
                        idx = term[1]
                    elif kind == "condbr":
                        prev = blocks[idx]
                        idx = term[2] if regs[term[1]] else term[3]
                    elif kind == "ret":
                        return regs[term[1]] if term[1] is not None else None
                    else:
                        raise InterpreterError(f"block {name} fell through")
                else:
                    self.executed_instructions = executed
                    try:
                        transfer = self._run_block_slow(
                            blocks[idx], prev, regs, steps_by_block
                        )
                    finally:
                        # resync even when the slow path raises, or the
                        # outer finally would clobber the ledger with the
                        # stale pre-call count
                        executed = self.executed_instructions
                    kind, payload = transfer
                    if kind == "ret":
                        return payload
                    prev = blocks[idx]
                    idx = payload
        finally:
            self.executed_instructions = executed

    def _run_block_slow(
        self,
        bp: BlockPlan,
        prev: Optional[BlockPlan],
        regs: List[object],
        steps_by_block: List[List[Callable]],
    ):
        """Per-step execution of one block, reference tick order."""
        if bp.phi_insts:
            table = bp.phi_tables.get(id(prev.block))
            if table is None:
                raise KeyError(f"phi has no incoming edge from {prev.name}")
            if isinstance(table, KeyError):
                raise table
            staged = [regs[src] for src in table]
            for dst, value, phi, cost in zip(
                bp.phi_dsts, staged, bp.phi_insts, bp.phi_costs
            ):
                regs[dst] = value
                self._tick_slow(phi, cost)
        for step, inst, cost in zip(
            steps_by_block[bp.index], bp.step_insts, bp.step_costs
        ):
            step()
            self._tick_slow(inst, cost)
        term = bp.terminator
        kind = term[0]
        if kind == "br":
            self._tick_slow(bp.term_inst, bp.term_cost)
            return ("br", term[1])
        if kind == "condbr":
            target = term[2] if regs[term[1]] else term[3]
            self._tick_slow(bp.term_inst, bp.term_cost)
            return ("br", target)
        if kind == "ret":
            value = regs[term[1]] if term[1] is not None else None
            self._tick_slow(bp.term_inst, bp.term_cost)
            return ("ret", value)
        raise InterpreterError(f"block {bp.name} fell through")

    def _tick_slow(self, inst: Instruction, cost: float) -> None:
        self.executed_instructions += 1
        faults = current_faults()
        if faults.armed:
            faults.fire("interp.step", stall=self._stall)
        if self.executed_instructions > self.instruction_budget:
            raise BudgetExceededError(
                f"step budget exhausted after {self.instruction_budget} "
                "instructions (likely an infinite loop)"
            )
        if self.on_execute is not None:
            self.on_execute(inst)
        self.cycles += cost
        self.instructions += 1
        self.per_opcode[inst.opcode] = self.per_opcode.get(inst.opcode, 0.0) + cost

    def _stall(self) -> None:
        """Injected stall: burn the remaining step budget so the watchdog
        fires deterministically (no wall-clock dependence)."""
        self.executed_instructions = self.instruction_budget + 1

    def _finalize(self, plan: FunctionPlan, visits: List[int]) -> None:
        """Fold fast-path visit counts into the cycle totals."""
        per_opcode = self.per_opcode
        for bp, count in zip(plan.blocks, visits):
            if not count:
                continue
            self.cycles += count * bp.cost_total
            self.instructions += count * bp.count
            for opcode, cost in bp.per_opcode.items():
                per_opcode[opcode] = per_opcode.get(opcode, 0.0) + count * cost

    # -- argument coercion (identical to the reference engine) ---------------------

    def _coerce_argument(self, formal: Argument, actual):
        type_ = formal.type
        if isinstance(type_, PointerType):
            if isinstance(actual, GlobalBuffer):
                return self.memory.address_of_global(actual)
            return int(actual)
        if isinstance(type_, IntType):
            return type_.wrap(int(actual))
        if isinstance(type_, VectorType):
            return tuple(actual)
        return float(actual)
