"""JSONL wire protocol for ``repro serve``.

One request per line, one response per line, JSON both ways — trivially
scriptable from a shell (``printf ... | python -m repro serve``) and
from any language with a socket and a JSON library.

Requests::

    {"id": 1, "kind": "ping"}
    {"id": 2, "kind": "compile", "source": "double A[64]; ... kernel f(n) {...}",
     "config": "SN-SLP", "target": "skylake-like", "unroll": 0}
    {"id": 3, "kind": "compile", "ir": "module m { ... }"}
    {"id": 4, "kind": "bench", "kernel": "motiv-leaf-reorder",
     "config": "SN-SLP", "seed": 20190216}
    {"id": 5, "kind": "stats"}
    {"id": 6, "kind": "shutdown"}

Any task request may carry an optional ``"trace"`` object —
``{"trace_id": ..., "span_id": ..., "attempt": ...}``, the JSON form of
:class:`~repro.observe.context.TraceContext` — and the service then
parents its request/worker spans under the caller's span instead of
minting a fresh trace.  ``stats`` answers with
:meth:`~repro.serve.service.CompileService.describe`: queue depth,
per-worker utilization and inflight counts, cache hit rate, p50/p99
queue/turnaround latency, compiles/sec and breaker state — the document
``repro top`` renders live.

Responses (order follows *completion*, not submission — match on
``id``)::

    {"id": 2, "ok": true, "result": {...}}
    {"id": 3, "ok": false, "error": {"type": "RemoteTaskError", "message": "..."}}

``stats`` and ``shutdown`` are answered synchronously by the front-end;
everything else is submitted to the :class:`~repro.serve.service.CompileService`
and answered from a future's done-callback.  ``shutdown`` drains
in-flight work before the acknowledgement line is written.

Two servers share this logic: :func:`serve_stream` (stdin/stdout, the
default for ``repro serve``) and :class:`SocketServer` (an AF_UNIX
socket serving concurrent clients, one thread per connection, used by
the CI smoke test and :class:`ServiceClient`).

Hardening: frames larger than :data:`MAX_FRAME_BYTES` or that are not a
JSON object draw a typed error reply (``FrameTooLarge`` / ``BadRequest``)
instead of tearing down the connection loop, and each socket client gets
its own stream state so one client's garbage cannot wedge another.  The
``serve.socket.disconnect`` fault site fires here (through the service
session's injector — never the ambient one, this runs on server threads)
and models the server dropping a connection mid-request;
:class:`ServiceClient` answers it with a bounded reconnect-and-resend.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Dict, IO, List, Optional, Tuple

from ..bench.runner import DEFAULT_SEED
from ..observe.context import TraceContext
from .service import CompileService, ServiceError
from .tasks import run_to_json

#: hard per-line cap for inbound request frames; a line longer than this
#: is answered with a ``FrameTooLarge`` error and skipped, because no
#: legitimate request (even a whole-module ``compile`` source) gets close
MAX_FRAME_BYTES = 1 << 20


def _task_for_request(doc: Dict[str, object]) -> Tuple[str, object, Optional[str]]:
    """Map one request document to ``(task_kind, payload, shard_key)``."""
    kind = doc.get("kind")
    if kind == "ping":
        return "ping", None, None
    if kind == "compile":
        if "ir" in doc:
            text, language = doc["ir"], "ir"
        elif "source" in doc:
            text, language = doc["source"], "kernel"
        else:
            raise ValueError("compile request needs 'source' or 'ir'")
        payload = {
            "text": text,
            "language": language,
            "config": doc.get("config", "SN-SLP"),
            "target": doc.get("target"),
            "unroll": int(doc.get("unroll", 0)),
            "cache": bool(doc.get("cache", True)),
        }
        return "compile", payload, None
    if kind == "bench":
        kernel = doc["kernel"]
        pair = (
            kernel,
            doc.get("config", "SN-SLP"),
            doc.get("target", "skylake-like"),
            int(doc.get("seed", DEFAULT_SEED)),
            False,  # trace
            False,  # remarks
            bool(doc.get("journal", False)),
            False,  # metrics
        )
        return "bench-pair", (pair, True), kernel
    raise ValueError(f"unknown request kind {kind!r}")


def _result_for_wire(kind: str, result: object) -> object:
    """Make a task result JSON-serializable for the response line."""
    if kind == "bench-pair":
        run, capture = result
        return {
            "run": run_to_json(run),
            "worker_pid": capture.get("pid"),
            "worker_seconds": capture.get("worker_seconds"),
            "cached": bool(capture.get("cached", False)),
        }
    return result


def serve_stream(
    service: CompileService,
    in_stream: IO[str],
    out_stream: IO[str],
    banner: Optional[IO[str]] = None,
    faults: Optional[object] = None,
) -> bool:
    """Serve JSONL requests from ``in_stream`` until EOF or ``shutdown``.

    Returns True when the client asked for ``shutdown`` (socket servers
    use that to stop accepting).  Every submitted request is answered
    before this function returns — EOF triggers a drain, not a drop.

    ``faults`` is a :class:`~repro.robust.faults.FaultInjector` (or
    None); the ``serve.socket.disconnect`` site fires per accepted
    request and, when armed, abandons the stream without answering —
    the client sees the connection close mid-request.
    """
    write_lock = threading.Lock()
    # One event per accepted request, set *after* its reply line is
    # written: a future resolving only means set_result ran, not that
    # the done-callback (which does the write) has — waiting on the
    # future alone could end the stream with a reply still in flight.
    outstanding: List[threading.Event] = []

    def reply(doc: Dict[str, object]) -> None:
        line = json.dumps(doc, sort_keys=True)
        with write_lock:
            try:
                out_stream.write(line + "\n")
                out_stream.flush()
            except (BrokenPipeError, ValueError, OSError):
                pass  # client vanished mid-reply; nobody left to answer

    def on_done(request_id: object, kind: str, replied: threading.Event):
        def callback(future) -> None:
            try:
                try:
                    result = future.result()
                except ServiceError as exc:
                    reply({
                        "id": request_id,
                        "ok": False,
                        "error": {
                            "type": type(exc).__name__, "message": str(exc)
                        },
                    })
                except Exception as exc:  # pragma: no cover - defensive
                    reply({
                        "id": request_id,
                        "ok": False,
                        "error": {
                            "type": type(exc).__name__, "message": str(exc)
                        },
                    })
                else:
                    reply({
                        "id": request_id,
                        "ok": True,
                        "result": _result_for_wire(kind, result),
                    })
            finally:
                replied.set()

        return callback

    shutdown = False
    for line in in_stream:
        if len(line) > MAX_FRAME_BYTES:
            service.session.log.emit(
                "warn", "frame-too-large",
                f"dropped a {len(line)}-byte request frame "
                f"(limit {MAX_FRAME_BYTES})",
                bytes=len(line),
            )
            reply({
                "id": None,
                "ok": False,
                "error": {
                    "type": "FrameTooLarge",
                    "message": (
                        f"request frame is {len(line)} bytes; the limit "
                        f"is {MAX_FRAME_BYTES}"
                    ),
                },
            })
            continue
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            reply({
                "id": None,
                "ok": False,
                "error": {"type": "BadRequest", "message": f"bad JSON: {exc}"},
            })
            continue
        if not isinstance(doc, dict):
            reply({
                "id": None,
                "ok": False,
                "error": {
                    "type": "BadRequest",
                    "message": "request frame must be a JSON object",
                },
            })
            continue
        if faults is not None and getattr(faults, "armed", None):
            from ..robust.faults import FaultError

            try:
                faults.fire("serve.socket.disconnect")
            except FaultError:
                # Model a dropped connection: stop reading, answer what
                # was already accepted, and let the close surface as a
                # mid-request EOF on the client side.
                break
        request_id = doc.get("id")
        kind = doc.get("kind")
        if kind == "shutdown":
            service.drain()
            reply({"id": request_id, "ok": True, "result": {"shutdown": True}})
            shutdown = True
            break
        if kind == "stats":
            reply({"id": request_id, "ok": True, "result": service.describe()})
            continue
        try:
            task_kind, payload, shard = _task_for_request(doc)
        except (KeyError, TypeError, ValueError) as exc:
            service.session.log.emit(
                "warn", "bad-request",
                f"rejected request {request_id!r}: {exc}",
                request=str(request_id),
            )
            reply({
                "id": request_id,
                "ok": False,
                "error": {"type": "BadRequest", "message": str(exc)},
            })
            continue
        trace = TraceContext.from_doc(doc.get("trace"))
        try:
            future = service.submit(
                task_kind, payload, shard_key=shard, trace=trace
            )
        except ServiceError as exc:
            reply({
                "id": request_id,
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            })
            continue
        replied = threading.Event()
        outstanding.append(replied)
        future.add_done_callback(on_done(request_id, task_kind, replied))
    # EOF (or shutdown): answer everything already accepted.
    for replied in outstanding:
        replied.wait()
    return shutdown


class SocketServer:
    """AF_UNIX JSONL server: one thread per client, until ``shutdown``.

    Each connection gets its own :func:`serve_stream` (own read loop,
    write lock and outstanding-reply set), so framing damage from one
    client — oversized lines, garbage JSON, a mid-request disconnect —
    never bleeds into another client's stream.
    """

    def __init__(self, service: CompileService, path: str) -> None:
        self.service = service
        self.path = path
        if os.path.exists(path):
            os.unlink(path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(8)
        self._sock.settimeout(0.25)
        self._shutdown = threading.Event()
        self._clients: List[threading.Thread] = []

    def serve_forever(self) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    client, _ = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._handle_client,
                    args=(client,),
                    name="serve-client",
                    daemon=True,
                )
                thread.start()
                self._clients.append(thread)
        finally:
            for thread in self._clients:
                thread.join(timeout=10.0)
            self.close()

    def _handle_client(self, client: socket.socket) -> None:
        with client:
            rfile = client.makefile("r", encoding="utf-8")
            wfile = client.makefile("w", encoding="utf-8")
            try:
                # Server threads never see the submitting thread's
                # contextvars — fault firing must go through the
                # service session's injector explicitly.
                if serve_stream(
                    self.service,
                    rfile,
                    wfile,
                    faults=self.service.session.faults,
                ):
                    self._shutdown.set()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass  # this client is gone; others keep their threads
            finally:
                for stream in (rfile, wfile):
                    try:
                        stream.close()
                    except OSError:
                        pass

    def request_shutdown(self) -> None:
        self._shutdown.set()

    def close(self) -> None:
        try:
            self._sock.close()
        finally:
            if os.path.exists(self.path):
                try:
                    os.unlink(self.path)
                except OSError:
                    pass


class ServiceClient:
    """Blocking JSONL client for an AF_UNIX ``repro serve``.

    When the server drops the connection mid-request (EOF on a pending
    response, or a reset on send), the client reconnects up to
    ``max_reconnects`` times and *resends every unanswered request* —
    task runners are deterministic and result-cached, so a replayed
    request is safe.  Reconnects exhausted → :class:`ConnectionError`.
    """

    def __init__(
        self,
        path: str,
        timeout: Optional[float] = 60.0,
        max_reconnects: int = 1,
    ) -> None:
        self.path = path
        self.timeout = timeout
        self.max_reconnects = max(0, max_reconnects)
        self.reconnects = 0
        #: request id -> document, for every request not yet answered
        self._unanswered: Dict[object, Dict[str, object]] = {}
        self._next_id = 1
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(self.timeout)
        self._sock.connect(self.path)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")

    def _reconnect(self, cause: str) -> None:
        if self.reconnects >= self.max_reconnects:
            raise ConnectionError(
                f"server dropped the connection ({cause}) and the "
                f"reconnect budget ({self.max_reconnects}) is spent"
            )
        self.reconnects += 1
        self.close(_keep_state=True)
        self._connect()
        # Replay everything still waiting for an answer, oldest first
        # so the server sees the original submission order.
        for doc in list(self._unanswered.values()):
            self._write(doc)

    def close(self, _keep_state: bool = False) -> None:
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        try:
            self._sock.close()
        except OSError:
            pass
        if not _keep_state:
            self._unanswered.clear()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _write(self, doc: Dict[str, object]) -> None:
        self._wfile.write(json.dumps(doc) + "\n")
        self._wfile.flush()

    def _send(self, doc: Dict[str, object]) -> object:
        if "id" not in doc:
            doc = dict(doc)
            doc["id"] = self._next_id
            self._next_id += 1
        self._unanswered[doc["id"]] = doc
        try:
            self._write(doc)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            self._reconnect(f"{type(exc).__name__} on send")
        return doc["id"]

    def _read_until(self, wanted_ids) -> Dict[object, Dict[str, object]]:
        responses: Dict[object, Dict[str, object]] = {}
        remaining = set(wanted_ids)
        while remaining:
            try:
                line = self._rfile.readline()
            except (ConnectionResetError, BrokenPipeError) as exc:
                self._reconnect(f"{type(exc).__name__} on read")
                continue
            if not line:
                self._reconnect("EOF with responses pending")
                continue
            response = json.loads(line)
            request_id = response.get("id")
            responses[request_id] = response
            self._unanswered.pop(request_id, None)
            remaining.discard(request_id)
        return responses

    def request(self, doc: Dict[str, object]) -> Dict[str, object]:
        """One request, blocking until its response arrives."""
        request_id = self._send(doc)
        return self._read_until([request_id])[request_id]

    def batch(self, docs) -> List[Dict[str, object]]:
        """Send every request, then collect responses in request order."""
        ids = [self._send(doc) for doc in docs]
        responses = self._read_until(ids)
        return [responses[request_id] for request_id in ids]
