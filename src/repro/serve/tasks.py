"""Task kinds executed inside warm service workers.

A *task kind* is a named function ``runner(payload, state) -> result``
registered in :data:`TASK_KINDS`; the pool's worker loop dispatches on
the kind string, so adding a workload to the service is one decorator
here and a ``service.submit(kind, payload)`` at the call site.  Payloads
and results are plain picklable data — workers never receive live
objects.

:class:`WorkerState` is the per-worker context: the slot index, the warm
:class:`~repro.observe.session.CompilerSession`, and (when the service
was given a cache directory) two lazily-opened shared stores:

* the :class:`~repro.vectorizer.cache.CompileCache` (namespace
  ``compile``) memoizing raw compiles for the ``compile`` wire kind, and
* a bench *result* store (namespace ``bench-task``) memoizing whole
  :class:`~repro.bench.runner.KernelRun` outcomes for ``bench-pair``
  tasks.

The bench store exists because compile time is only ~4% of a bench pair
on this suite (BENCH_pr6: 0.099s compile vs 2.258s wall — simulation
dominates); caching compiles alone cannot reach the warm-service
speedup target.  Caching the full run is sound for the same reason the
compile cache is: given (kernel module text, config, target, seed) the
simulator is deterministic, and the stored run replays the *cold* run's
counters verbatim, so the parallel==serial bit-identity contract holds
on every deterministic field (``correct`` is stored as None and
recomputed by the parent's O3 cross-check, exactly as for a cold run).
Runs that armed per-task tracing or remarks bypass the store — replaying
span streams would be a lie.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..observe import STAT
from ..observe.session import CompilerSession

TASK_KINDS: Dict[str, Callable] = {}

#: bump when the bench-task store layout changes
BENCH_TASK_FORMAT = 1

_TASK_HITS = STAT("serve.task_cache.hits", "bench-task result-store hits")
_TASK_MISSES = STAT("serve.task_cache.misses", "bench-task result-store misses")


def task_kind(name: str):
    """Register ``fn`` as the runner for task kind ``name``."""

    def register(fn: Callable) -> Callable:
        TASK_KINDS[name] = fn
        return fn

    return register


def run_task(kind: str, payload: object, state: "WorkerState") -> object:
    try:
        runner = TASK_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown task kind {kind!r}") from None
    return runner(payload, state)


@dataclass
class WorkerState:
    """Per-worker context threaded into every task runner."""

    index: int
    session: CompilerSession
    cache_dir: Optional[str] = None
    cache_entries: Optional[int] = None
    tasks_done: int = 0
    #: pool generation of the hosting process (respawns bump it);
    #: stamped onto captured spans so traces key tracks by (pid, gen)
    generation: int = 0
    #: kernel name -> printed module text, memoized for cache keying
    _module_texts: Dict[str, str] = field(default_factory=dict)
    _compile_cache: Optional[object] = field(default=None, repr=False)
    _result_store: Optional[object] = field(default=None, repr=False)

    @property
    def compile_cache(self):
        if self._compile_cache is None and self.cache_dir is not None:
            from ..vectorizer.cache import CompileCache

            self._compile_cache = CompileCache(
                self.cache_dir, max_entries=self.cache_entries
            )
        return self._compile_cache

    @property
    def result_store(self):
        if self._result_store is None and self.cache_dir is not None:
            from ..vectorizer.cache import SharedJsonStore

            self._result_store = SharedJsonStore(
                self.cache_dir,
                namespace="bench-task",
                max_entries=self.cache_entries,
            )
        return self._result_store

    def module_text(self, kernel_name: str) -> str:
        text = self._module_texts.get(kernel_name)
        if text is None:
            from ..ir.printer import print_module
            from ..kernels.suite import kernel_named

            text = print_module(kernel_named(kernel_name).build())
            self._module_texts[kernel_name] = text
        return text


# -- KernelRun (de)serialization ----------------------------------------------------


def run_to_json(run) -> Dict[str, object]:
    """A :class:`~repro.bench.runner.KernelRun` as a JSON document."""
    return {
        "kernel": run.kernel,
        "config": run.config,
        "cycles": run.cycles,
        "instructions": run.instructions,
        "vectorized_graphs": run.vectorized_graphs,
        "attempted_graphs": run.attempted_graphs,
        "node_count": run.node_count,
        "aggregate_node_size": run.aggregate_node_size,
        "average_node_size": run.average_node_size,
        "compile_seconds": run.compile_seconds,
        "outputs": {name: list(buf) for name, buf in run.outputs.items()},
        "correct": run.correct,
        "phase_seconds": dict(run.phase_seconds),
        "counters": dict(run.counters),
        "journal": run.journal,
    }


def run_from_json(data: Dict[str, object]):
    from ..bench.runner import KernelRun

    return KernelRun(
        kernel=data["kernel"],
        config=data["config"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        vectorized_graphs=data["vectorized_graphs"],
        attempted_graphs=data["attempted_graphs"],
        node_count=data["node_count"],
        aggregate_node_size=data["aggregate_node_size"],
        average_node_size=data["average_node_size"],
        compile_seconds=data["compile_seconds"],
        outputs={name: list(buf) for name, buf in data["outputs"].items()},
        correct=data["correct"],
        phase_seconds=dict(data["phase_seconds"]),
        counters=dict(data["counters"]),
        journal=data["journal"],
    )


def _bench_task_key(state: WorkerState, pair) -> str:
    """Content hash of everything a bench pair's outcome depends on.

    The repro-source fingerprint is part of "everything": a store warmed
    by an older checkout misses after a code change instead of replaying
    counters the current compiler would not produce.  The execution
    engine is too: cycles are engine-independent, but the per-run counter
    snapshot (``interp.plan_cache.*``) is not.
    """
    from ..interp.engine import default_engine
    from ..vectorizer.cache import repro_source_fingerprint

    kernel_name, config_name, target_name, seed, _, _, journal, _ = pair
    hasher = hashlib.sha256()
    hasher.update(state.module_text(kernel_name).encode("utf-8"))
    hasher.update(
        f"\x00{config_name}\x00{target_name}\x00{seed}\x00{int(journal)}"
        f"\x00{BENCH_TASK_FORMAT}\x00{repro_source_fingerprint()}"
        f"\x00{default_engine()}".encode()
    )
    return hasher.hexdigest()


# -- task kinds ---------------------------------------------------------------------


@task_kind("bench-pair")
def _bench_pair_task(payload, state: WorkerState):
    """One (kernel, config) bench pair, memoized through the result store.

    ``payload`` is ``(PairPayload, use_cache)``.  Pairs that armed
    tracing or remarks always run cold (their value *is* the streams);
    otherwise a store hit rebuilds the KernelRun from the cold run's
    stored document and reports the actual lookup wall time as
    ``worker_seconds``.
    """
    from ..bench.parallel import _run_pair

    pair, use_cache = payload
    trace, remarks = pair[4], pair[5]
    store = state.result_store if use_cache else None
    if store is None or trace or remarks:
        run, capture = _run_pair(pair)
        capture["generation"] = state.generation
        return run, capture
    started = time.perf_counter()
    key = _bench_task_key(state, pair)
    entry = store.get(key)
    if entry is not None and entry.get("format") == BENCH_TASK_FORMAT:
        _TASK_HITS.add()
        run = run_from_json(entry["run"])
        capture = {
            "pid": os.getpid(),
            "generation": state.generation,
            "worker_seconds": time.perf_counter() - started,
            "cached": True,
        }
        return run, capture
    _TASK_MISSES.add()
    run, capture = _run_pair(pair)
    capture["generation"] = state.generation
    store.put(key, {"format": BENCH_TASK_FORMAT, "run": run_to_json(run)})
    return run, capture


@task_kind("compile")
def _compile_task(payload, state: WorkerState):
    """Raw compile for wire clients: source text in, compiled IR out.

    ``payload``: dict with ``text`` (mini-C or IR), ``language``
    (``"kernel"``/``"ir"``), ``config``, ``target``, ``unroll`` and
    ``cache`` (bool).  Returns a slim JSON document (full reports stay
    worker-side; wire clients want the IR and the headline numbers).
    """
    from ..ir.parser import parse_module
    from ..ir.printer import print_module
    from ..machine.targets import DEFAULT_TARGET, target_named
    from ..vectorizer.cache import cached_compile_module
    from ..vectorizer.slp import config_named

    text = payload["text"]
    language = payload.get("language", "kernel")
    if language == "ir":
        module = parse_module(text)
    else:
        from ..frontend import compile_source

        module = compile_source(text)
    config = config_named(payload.get("config", "SN-SLP"))
    target_name = payload.get("target")
    target = target_named(target_name) if target_name else DEFAULT_TARGET
    unroll = int(payload.get("unroll", 0))
    cache = state.compile_cache if payload.get("cache", True) else None
    session = state.session.derive(name="serve-compile")
    result = cached_compile_module(
        module, config, target,
        unroll_factor=unroll, session=session, cache=cache,
    )
    report = result.report
    vectorized = sum(1 for g in report.all_graphs() if g.vectorized)
    attempted = sum(1 for g in report.all_graphs())
    return {
        "module": print_module(result.module),
        "config": config.name,
        "target": target.name,
        "vectorized": vectorized,
        "attempted": attempted,
        "compile_seconds": result.compile_seconds,
        "cached": cache is not None and cache.last_lookup in ("memory", "disk"),
        "counters": dict(result.counters),
    }


@task_kind("fuzz-chunk")
def _fuzz_chunk_task(payload, state: WorkerState):
    from ..fuzz.campaign import _campaign_chunk_worker

    return _campaign_chunk_worker(payload)


@task_kind("program-grid")
def _program_grid_task(payload, state: WorkerState):
    from ..bench.parallel import _run_program_config

    return _run_program_config(payload)


@task_kind("fig11-timing")
def _fig11_timing_task(payload, state: WorkerState):
    from ..bench.parallel import _time_kernel

    return _time_kernel(payload)


@task_kind("ping")
def _ping_task(payload, state: WorkerState):
    return {
        "pid": os.getpid(),
        "worker": state.index,
        "tasks_done": state.tasks_done,
    }


# -- test-only kinds (exercised by the lifecycle test suite) ------------------------


@task_kind("sleep")
def _sleep_task(payload, state: WorkerState):
    time.sleep(float(payload))
    return float(payload)


@task_kind("crash")
def _crash_task(payload, state: WorkerState):
    os._exit(int(payload) if payload else 11)


@task_kind("crash-once")
def _crash_once_task(payload, state: WorkerState):
    """Die hard on first sight of ``marker``; succeed on the requeue.

    ``payload``: ``{"marker": path, "kind": inner, "payload": inner_payload}``.
    The marker file records the crashing pid so tests can assert the
    retry genuinely ran in a *respawned* process.
    """
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid()}, handle)
        os._exit(17)
    return run_task(payload["kind"], payload["payload"], state)
