"""CompileService: the async submission front-end over the warm pool.

``CompileService`` owns a :class:`~repro.serve.pool.WorkerPool` and a
dispatcher thread, and exposes a futures API::

    with CompileService(workers=2, cache_dir=".repro-cache") as service:
        future = service.submit("bench-pair", (pair, True), shard_key=kernel)
        run, capture = future.result()

Scheduling semantics:

* **FIFO + sharding.** Tasks dispatch in submission order.  A
  ``shard_key`` (the kernel name, for bench tasks) pins a task to
  ``crc32(key) % workers`` so repeat compiles of one kernel land on the
  worker whose warm session and memoized module text already know it;
  unsharded tasks go to the least-loaded live worker.  Each worker keeps
  at most ``max_inflight`` tasks pipelined in its pipe.
* **Backpressure.** At most ``max_pending`` tasks may be unresolved at
  once; ``submit(block=True)`` (default) waits for a slot,
  ``block=False`` raises :class:`ServiceOverloaded` — callers that fan
  out huge batches cannot OOM the parent on buffered payloads.
* **Timeout.** ``timeout=`` (or the service default) bounds
  submit→result wall time.  A timed-out *pending* task simply fails
  with :class:`TaskTimeout`; a timed-out task already *running* gets
  its worker killed and respawned (anything else pipelined behind it is
  requeued), so one wedged compile cannot brown-out the service.
* **Cancel.** :meth:`cancel` fails the future with
  :class:`TaskCancelled`; an already-running task's eventual result is
  dropped on arrival.
* **Crash → respawn + requeue.** A worker that dies mid-task is
  respawned under the same slot and its in-flight tasks are requeued
  (``retries`` attempts) before :class:`WorkerCrashed` surfaces.  A
  task that *keeps* killing workers fails rather than looping forever.

Every queue transition is instrumented into the service session:
``serve.queue_depth`` gauge, ``serve.task.queue_seconds`` /
``serve.task.turnaround_seconds`` histograms, per-worker utilization
gauges, and the ``serve.compiles_per_sec`` throughput gauge that CI's
history gate watches.  The ``parallel.marshal_seconds`` satellite fix
lives here too: the submit path pickles payloads itself and records the
real encode time (the old driver timed a round-trip of tiny name tuples
and rounded to zero).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from concurrent.futures import Future
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..observe import STAT
from ..observe.context import TraceContext, mint_context, new_span_id
from ..observe.metrics import exact_percentile
from ..observe.session import CompilerSession, current_session
from ..observe.trace import TraceEvent
from .pool import WorkerPool

_MARSHAL_SECONDS = STAT(
    "parallel.marshal_seconds", "seconds pickling worker payloads"
)
_TASKS = STAT("serve.tasks", "tasks submitted to the compile service")
_COMPLETED = STAT("serve.completed", "tasks completed successfully")
_ERRORS = STAT("serve.errors", "tasks failed inside a worker")
_TIMEOUTS = STAT("serve.timeouts", "tasks failed by deadline")
_CANCELLED = STAT("serve.cancelled", "tasks cancelled by the client")
_CRASHES = STAT("serve.worker_crashes", "workers found dead and respawned")
_REQUEUED = STAT("serve.requeued", "in-flight tasks requeued after a crash")
_WEDGED = STAT(
    "serve.wedged_workers",
    "workers killed by the stall detector before the request deadline",
)
_BAD_FRAMES = STAT(
    "serve.bad_frames",
    "malformed result frames; the sending worker is killed and its "
    "in-flight tasks requeued",
)
_RESPAWN_FAILURES = STAT(
    "serve.respawn_failures", "failed worker respawns (slot went defunct)"
)


class ServiceError(RuntimeError):
    """Base class for typed compile-service failures."""


class ServiceClosed(ServiceError):
    """The service is shutting down (or already closed)."""


class ServiceOverloaded(ServiceError):
    """``max_pending`` unresolved tasks and ``block=False``."""


class TaskTimeout(ServiceError):
    """The per-request deadline elapsed before a result arrived."""


class TaskCancelled(ServiceError):
    """The client cancelled the task."""


class WorkerCrashed(ServiceError):
    """The task's worker died on every allowed attempt."""


class ServiceUnavailable(ServiceError):
    """Every worker slot is defunct (failed respawns) — no capacity left.

    The client-side resilience layer (:mod:`repro.serve.resilience`)
    treats this as the signal to descend the degradation ladder."""


class RemoteTaskError(ServiceError):
    """The task raised inside the worker; carries the remote type name."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


_UNSET = object()


@dataclass
class TaskRecord:
    id: int
    kind: str
    payload: bytes
    future: Future
    shard_key: Optional[str]
    weight: float
    deadline: Optional[float]
    submitted_at: float
    sent_at: Optional[float] = None
    #: wall stamp of the worker's "begin" marker — the stall detector
    #: measures wedge time from here, not from dispatch
    began_at: Optional[float] = None
    worker_index: Optional[int] = None
    attempts: int = 0
    state: str = "pending"  # pending | inflight | abandoned
    done: bool = False
    #: request context for this task (None while tracing is off); the
    #: *record* owns the context, so a crash→requeue keeps the trace id
    #: and only the wire attempt counter moves
    trace: Optional[TraceContext] = None
    #: span id of the caller-side span the request span parents into
    #: ("" when the request is itself the root)
    parent_span: str = ""
    #: tracer stamp of submission, for the synthesized queue/request spans
    submitted_ns: int = 0
    payload_bytes: int = 0
    marshal_seconds: float = 0.0


class CompileService:
    """Async batch front-end over a persistent warm-worker pool."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        cache_entries: Optional[int] = None,
        max_pending: int = 1024,
        max_inflight: int = 4,
        default_timeout: Optional[float] = None,
        retries: int = 1,
        session: Optional[CompilerSession] = None,
        name: str = "serve",
        heartbeat_interval: Optional[float] = None,
        stall_budget: Optional[float] = None,
        fault_plans: Sequence[Tuple[str, str, int, bool]] = (),
        fault_stall_seconds: Optional[float] = None,
        slow_log_seconds: Optional[float] = None,
    ) -> None:
        self.session = session if session is not None else current_session()
        self.name = name
        self.cache_dir = cache_dir
        self.max_pending = max(1, max_pending)
        self.max_inflight = max(1, max_inflight)
        self.default_timeout = default_timeout
        self.retries = max(0, retries)
        #: max seconds a dispatched task may sit without completing
        #: before its worker is declared wedged and killed (None = off)
        self.stall_budget = stall_budget
        self.heartbeat_interval = heartbeat_interval
        self.pool = WorkerPool(
            size=workers,
            cache_dir=cache_dir,
            cache_entries=cache_entries,
            name=name,
            fault_plans=fault_plans,
            heartbeat_interval=heartbeat_interval,
            fault_stall_seconds=fault_stall_seconds,
        )
        self._lock = threading.RLock()
        self._pending: Deque[TaskRecord] = deque()
        self._records: Dict[int, TaskRecord] = {}
        self._by_future: Dict[Future, TaskRecord] = {}
        self._inflight: Dict[int, "OrderedDict[int, TaskRecord]"] = {}
        self._slots = threading.Semaphore(self.max_pending)
        self._next_id = 1
        self._started = False
        self._closing = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = os.pipe()
        self._started_at = 0.0
        self._weight_done = 0.0
        self.spawn_seconds = 0.0
        #: turnaround threshold for the structured slow-request log
        #: (None = off); exceeding requests append to :attr:`slow_records`
        self.slow_log_seconds = slow_log_seconds
        self.slow_records: Deque[Dict[str, object]] = deque(maxlen=256)
        #: recent per-task latencies for the live ``stats``/``repro top``
        #: percentiles — introspection only, never part of results
        self._recent_queue: Deque[float] = deque(maxlen=512)
        self._recent_turnaround: Deque[float] = deque(maxlen=512)
        #: mirrored by a client-side ResilientExecutor when one fronts
        #: this service ("closed"/"open"/"half-open"; "" = no breaker)
        self.breaker_state = ""

    # -- properties ---------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self.pool.size

    @property
    def result_cache_enabled(self) -> bool:
        return self.cache_dir is not None

    def compiles_per_sec(self) -> float:
        elapsed = time.perf_counter() - self._started_at
        return self._weight_done / elapsed if elapsed > 0 else 0.0

    def _log(
        self,
        level: str,
        event: str,
        message: str,
        record: Optional[TaskRecord] = None,
        **args: object,
    ) -> None:
        """Emit to the session's structured event log (one-branch no-op
        while disabled), trace-correlated when ``record`` carries one."""
        log = self.session.log
        if not log.enabled:
            return
        trace_id = (
            record.trace.trace_id
            if record is not None and record.trace is not None
            else ""
        )
        if record is not None:
            args.setdefault("task", record.id)
            args.setdefault("kind", record.kind)
        log.emit(level, event, message, trace_id=trace_id, **args)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "CompileService":
        if self._started:
            return self
        if self._closing:
            raise ServiceClosed(f"service {self.name!r} already closed")
        # Parent-side fault sites (serve.respawn) fire through the
        # session's injector; arm it *before* constructing the service.
        self.pool.faults = self.session.faults
        self.spawn_seconds = self.pool.start()
        self.session.metrics.gauge(
            "serve.pool_spawn_seconds", self.spawn_seconds,
            description="wall seconds to spawn the warm worker pool",
        )
        self._started_at = time.perf_counter()
        self._inflight = {index: OrderedDict() for index in range(self.pool.size)}
        self._thread = threading.Thread(
            target=self._dispatch_loop, name=f"{self.name}-dispatcher", daemon=True
        )
        self._thread.start()
        self._started = True
        self._log(
            "info", "service-start",
            f"service {self.name!r} started with {self.pool.size} worker(s)",
            workers=self.pool.size,
            cache_dir=self.cache_dir or "",
            spawn_seconds=round(self.spawn_seconds, 6),
        )
        return self

    def __enter__(self) -> "CompileService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the service; ``drain=True`` finishes in-flight work first."""
        if self._thread is None:
            self._closing = True
            return
        with self._lock:
            self._closing = True
        if drain:
            self.drain(timeout=timeout)
        self._stop.set()
        self._wake()
        self._thread.join(timeout=10.0)
        leftovers = list(self._records.values())
        for record in leftovers:
            self._finish(
                record,
                exception=ServiceClosed(
                    f"service {self.name!r} closed with task "
                    f"{record.id} ({record.kind}) unresolved"
                ),
            )
        self._final_gauges()
        self._log(
            "info", "service-stop",
            f"service {self.name!r} stopped",
            respawns=self.pool.respawns,
            defunct=len(self.pool.defunct),
            slow_requests=len(self.slow_records),
        )
        self.pool.stop(graceful=drain)
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
        self._started = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every submitted task to resolve; True when drained."""
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while True:
            with self._lock:
                busy = bool(self._records)
            if not busy:
                return True
            if deadline is not None and time.perf_counter() >= deadline:
                return False
            time.sleep(0.005)

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: object = None,
        *,
        shard_key: Optional[str] = None,
        timeout: object = _UNSET,
        weight: float = 1.0,
        block: bool = True,
        trace: Optional[TraceContext] = None,
    ) -> Future:
        """Enqueue one task; returns a ``concurrent.futures.Future``.

        While the session tracer is enabled every task gets a request
        :class:`TraceContext` — derived from ``trace`` when the caller
        passes one (wire requests, the resilience layer), freshly minted
        otherwise — carried through dispatch to the worker and back, so
        the worker's compile-phase spans parent into this request's span
        tree.  With tracing off the whole mechanism is skipped and runs
        stay bit-identical.
        """
        if not self._started:
            self.start()
        if self._closing:
            raise ServiceClosed(f"service {self.name!r} is closing")
        if self.pool.defunct and not self.pool.live_indices():
            raise ServiceUnavailable(
                f"service {self.name!r} has no live workers left "
                f"({len(self.pool.defunct)} defunct slot(s))"
            )
        if not self._slots.acquire(blocking=block):
            raise ServiceOverloaded(
                f"service {self.name!r} has {self.max_pending} unresolved "
                f"tasks (bounded queue)"
            )
        marshal_start = time.perf_counter()
        data = pickle.dumps(payload, protocol=-1)
        marshal_seconds = time.perf_counter() - marshal_start
        stats = self.session.stats
        _MARSHAL_SECONDS.resolve(stats).add(marshal_seconds)
        self.session.metrics.observe(
            "parallel.task.marshal_seconds", marshal_seconds,
            description="payload pickle-encode seconds per submitted task",
        )
        limit = self.default_timeout if timeout is _UNSET else timeout
        deadline = (
            time.perf_counter() + float(limit) if limit is not None else None
        )
        with self._lock:
            if self._closing:
                self._slots.release()
                raise ServiceClosed(f"service {self.name!r} is closing")
            record = TaskRecord(
                id=self._next_id,
                kind=kind,
                payload=data,
                future=Future(),
                shard_key=shard_key,
                weight=float(weight),
                deadline=deadline,
                submitted_at=time.perf_counter(),
                submitted_ns=time.perf_counter_ns(),
                payload_bytes=len(data),
                marshal_seconds=marshal_seconds,
            )
            if self.session.tracer.enabled:
                if trace is not None:
                    # Wire/resilience callers own the request identity;
                    # the service span becomes a child of theirs.
                    record.trace = TraceContext(
                        trace_id=trace.trace_id,
                        span_id=new_span_id(),
                        attempt=trace.attempt,
                    )
                    record.parent_span = trace.span_id
                else:
                    record.trace = mint_context()
            self._next_id += 1
            self._records[record.id] = record
            self._by_future[record.future] = record
            self._pending.append(record)
            depth = len(self._pending)
        _TASKS.resolve(stats).add()
        self.session.metrics.gauge(
            "serve.queue_depth", float(depth),
            description="tasks waiting for a worker slot",
        )
        self._wake()
        return record.future

    def submit_batch(
        self, tasks: Iterable[Tuple[str, object]], **opts
    ) -> List[Future]:
        """Submit ``(kind, payload)`` pairs; futures in submission order."""
        return [self.submit(kind, payload, **opts) for kind, payload in tasks]

    def cancel(self, future: Future) -> bool:
        """Cancel the task behind ``future``; True if it was still live."""
        with self._lock:
            record = self._by_future.get(future)
            if record is None or record.done:
                return False
            if record.state == "inflight":
                record.state = "abandoned"  # drop the result on arrival
            else:
                record.state = "abandoned"
        _CANCELLED.resolve(self.session.stats).add()
        self._finish(
            record,
            exception=TaskCancelled(
                f"task {record.id} ({record.kind}) cancelled"
            ),
        )
        return True

    def health_check(self, timeout: float = 10.0) -> List[Dict[str, object]]:
        """Ping every worker slot; returns one report per live worker."""
        futures = [
            self.submit("ping", None, shard_key=None, timeout=timeout)
            for _ in range(self.pool.size)
        ]
        reports: List[Dict[str, object]] = []
        for future in futures:
            try:
                reports.append(future.result(timeout=timeout + 1.0))
            except ServiceError as exc:
                reports.append({"error": str(exc)})
        return reports

    def describe(self) -> Dict[str, object]:
        """Service snapshot for the wire ``stats`` request and CLI banner."""
        now = time.perf_counter()
        with self._lock:
            pending = len(self._pending)
            inflight = sum(len(m) for m in self._inflight.values())
            workers = [
                {
                    "index": worker.index,
                    "pid": worker.process.pid,
                    "generation": worker.generation,
                    "alive": worker.alive(),
                    "tasks_sent": worker.tasks_sent,
                    "inflight": len(
                        self._inflight.get(worker.index, OrderedDict())
                    ),
                    "busy_seconds": round(worker.busy_seconds, 6),
                    "utilization": round(
                        worker.busy_seconds / max(1e-9, now - worker.started_at), 4
                    ),
                }
                for worker in self.pool.workers
            ]
            recent_queue = list(self._recent_queue)
            recent_turnaround = list(self._recent_turnaround)
        counters = {
            name: value
            for name, value in self.session.stats.snapshot().items()
            if name.startswith(("serve.", "cache.", "parallel."))
        }
        hits = counters.get("serve.task_cache.hits", 0.0)
        misses = counters.get("serve.task_cache.misses", 0.0)
        lookups = hits + misses
        return {
            "name": self.name,
            "workers": workers,
            "pending": pending,
            "inflight": inflight,
            "respawns": self.pool.respawns,
            "defunct": sorted(self.pool.defunct),
            "uptime_seconds": round(now - self._started_at, 3),
            "compiles_per_sec": round(self.compiles_per_sec(), 3),
            "cache_dir": self.cache_dir,
            "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "breaker": self.breaker_state,
            "slow_requests": len(self.slow_records),
            "queue_seconds": {
                "p50": round(exact_percentile(recent_queue, 50), 6),
                "p99": round(exact_percentile(recent_queue, 99), 6),
            },
            "turnaround_seconds": {
                "p50": round(exact_percentile(recent_turnaround, 50), 6),
                "p99": round(exact_percentile(recent_turnaround, 99), 6),
            },
            "counters": counters,
        }

    # -- dispatcher internals -----------------------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _worker_for(self, record: TaskRecord) -> Optional[int]:
        """Pick a worker index with spare pipeline room, or None.

        A shard pinned to a defunct slot falls back to the least-loaded
        live worker (still deterministic: min load, lowest index wins)."""
        defunct = self.pool.defunct
        if record.shard_key is not None:
            index = zlib.crc32(record.shard_key.encode()) % self.pool.size
            if index not in defunct:
                if len(self._inflight[index]) < self.max_inflight:
                    return index
                return None
        best, best_load = None, None
        for index in range(self.pool.size):
            if index in defunct:
                continue
            load = len(self._inflight[index])
            if load >= self.max_inflight:
                continue
            if best_load is None or load < best_load:
                best, best_load = index, load
        return best

    def _fail_pending_unavailable(self) -> None:
        """No live worker slots remain: fail everything still queued."""
        with self._lock:
            doomed = [r for r in self._pending if not r.done]
            self._pending = deque()
        for record in doomed:
            self._finish(
                record,
                exception=ServiceUnavailable(
                    f"service {self.name!r} has no live workers left "
                    f"({len(self.pool.defunct)} defunct slot(s)); task "
                    f"{record.id} ({record.kind}) cannot be dispatched"
                ),
            )

    def _dispatch_pending(self) -> None:
        if not self.pool.live_indices():
            self._fail_pending_unavailable()
            return
        with self._lock:
            if not self._pending:
                return
            remaining: Deque[TaskRecord] = deque()
            while self._pending:
                record = self._pending.popleft()
                if record.done:
                    continue
                index = self._worker_for(record)
                if index is None:
                    remaining.append(record)
                    continue
                wire_trace = None
                if record.trace is not None:
                    # record.attempts is pre-increment here: 0 on the
                    # first dispatch, +1 per crash→requeue retry.  The
                    # context's own attempt is the caller's retry count
                    # (a ResilientExecutor resubmission), so the worker
                    # sees the total — same trace id every time, only
                    # the attempt moves.
                    wire_trace = (
                        record.trace.trace_id,
                        record.trace.span_id,
                        record.trace.attempt + record.attempts,
                    )
                try:
                    self.pool.send(
                        index, record.id, record.kind, record.payload,
                        wire_trace,
                    )
                except (OSError, BrokenPipeError):
                    # Worker died between liveness scan and send; the
                    # next wait_any pass respawns it.  Keep the task.
                    remaining.append(record)
                    continue
                record.state = "inflight"
                record.worker_index = index
                record.sent_at = time.perf_counter()
                record.attempts += 1
                self._inflight[index][record.id] = record
                self._recent_queue.append(
                    record.sent_at - record.submitted_at
                )
                self.session.metrics.observe(
                    "serve.task.queue_seconds",
                    record.sent_at - record.submitted_at,
                    description="submit-to-dispatch wall seconds per task",
                )
            self._pending = remaining
            depth = len(self._pending)
        self.session.metrics.gauge(
            "serve.queue_depth", float(depth),
            description="tasks waiting for a worker slot",
        )

    def _handle_result(self, worker_index: int, envelope) -> None:
        try:
            task_id, status, data, worker_seconds, delta, spans = envelope
            if not isinstance(task_id, int) or not isinstance(status, str):
                raise TypeError("bogus envelope field types")
        except (TypeError, ValueError):
            # Truncated/garbage frame: the worker's stream can no longer
            # be trusted — kill it; the dead scan requeues its in-flight
            # tasks through the normal crash path.
            self._handle_bad_frame(worker_index)
            return
        with self._lock:
            if worker_index < len(self.pool.workers):
                self.pool.workers[worker_index].last_beat = time.perf_counter()
        if status == "hb":  # periodic liveness beat, no payload
            return
        if status == "begin":  # task-start marker for the stall detector
            with self._lock:
                record = self._records.get(task_id)
                if record is not None and record.state == "inflight":
                    record.began_at = time.perf_counter()
            return
        if task_id < 0:  # drain acknowledgement
            return
        with self._lock:
            if worker_index < len(self.pool.workers):
                worker = self.pool.workers[worker_index]
                worker.busy_seconds += float(worker_seconds)
                worker.inflight = max(0, worker.inflight - 1)
            record = self._inflight.get(worker_index, OrderedDict()).pop(
                task_id, None
            )
            if record is None:
                record = self._records.get(task_id)
        # Warm-session counter deltas (cache hits, task-cache traffic)
        # fold into the *service* session — never into task results.
        stats = self.session.stats
        for name, value in sorted(delta.items()):
            stats.stat(name).add(value)
        if record is None or record.done or record.state == "abandoned":
            if record is not None and not record.done:
                self._finish_noop(record)
            return
        # Adopt the worker's captured span forest into the service
        # session's tracer: these spans carry the request's trace id and
        # parent into record.trace.span_id, closing the cross-process
        # causal chain.  (Error replies ship spans too — the worker:task
        # root closes during exception propagation.)
        if record.trace is not None and spans and self.session.tracer.enabled:
            self.session.tracer.events.extend(spans)
        turnaround = time.perf_counter() - record.submitted_at
        self._recent_turnaround.append(turnaround)
        self.session.metrics.observe(
            "serve.task.turnaround_seconds",
            turnaround,
            description="submit-to-result wall seconds per task",
        )
        if (
            self.slow_log_seconds is not None
            and turnaround > self.slow_log_seconds
        ):
            self._record_slow(
                record, status, turnaround, float(worker_seconds), spans
            )
        if status == "ok":
            try:
                result = pickle.loads(data)
            except Exception as exc:  # pragma: no cover - defensive
                _ERRORS.resolve(stats).add()
                self._finish(
                    record,
                    exception=RemoteTaskError("UnpicklingError", str(exc)),
                )
                return
            _COMPLETED.resolve(stats).add()
            self._weight_done += record.weight
            self.session.metrics.gauge(
                "serve.compiles_per_sec", self.compiles_per_sec(),
                description="weighted tasks completed per wall second "
                "since service start",
            )
            self._finish(record, result=result)
        else:
            remote_type, message = pickle.loads(data)
            _ERRORS.resolve(stats).add()
            self._finish(
                record, exception=RemoteTaskError(remote_type, message)
            )

    def _finish_noop(self, record: TaskRecord) -> None:
        """Forget a record whose future was already resolved elsewhere."""
        with self._lock:
            record.done = True
            self._records.pop(record.id, None)
            self._by_future.pop(record.future, None)

    def _finish(
        self,
        record: TaskRecord,
        result: object = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if record.done:
                return
            record.done = True
            self._records.pop(record.id, None)
            self._by_future.pop(record.future, None)
        if record.trace is not None and self.session.tracer.enabled:
            self._emit_request_spans(record, exception)
        self._slots.release()
        # Resolve outside the lock: done-callbacks may submit more work.
        if exception is not None:
            record.future.set_exception(exception)
        else:
            record.future.set_result(result)

    def _emit_request_spans(
        self, record: TaskRecord, exception: Optional[BaseException]
    ) -> None:
        """Synthesize the client-side spans for one resolved request.

        Two completed events are appended to the service session's
        tracer: a ``serve:queue`` child covering submit→dispatch, and
        the ``serve:request`` span itself, whose ``span_id`` is the one
        the worker's ``worker:task`` root named as parent — that append
        is what roots the cross-process tree.  Children precede their
        parent, matching the tracer's completion-order convention.
        """
        context = record.trace
        events: List[TraceEvent] = []
        if record.sent_at is not None:
            events.append(
                TraceEvent(
                    name="serve:queue",
                    start_ns=record.submitted_ns,
                    duration_ns=max(
                        0,
                        int((record.sent_at - record.submitted_at) * 1e9),
                    ),
                    depth=1,
                    args={"task": record.id},
                    trace_id=context.trace_id,
                    span_id=new_span_id(),
                    parent_id=context.span_id,
                )
            )
        status = "ok" if exception is None else type(exception).__name__
        events.append(
            TraceEvent(
                name="serve:request",
                start_ns=record.submitted_ns,
                duration_ns=max(
                    0, time.perf_counter_ns() - record.submitted_ns
                ),
                depth=0,
                args={
                    "kind": record.kind,
                    "task": record.id,
                    "status": status,
                    "attempts": record.attempts,
                },
                trace_id=context.trace_id,
                span_id=context.span_id,
                parent_id=record.parent_span,
            )
        )
        self.session.tracer.events.extend(events)

    def _record_slow(
        self,
        record: TaskRecord,
        status: str,
        turnaround: float,
        worker_seconds: float,
        spans: Sequence[TraceEvent],
    ) -> None:
        """Append one structured slow-request document (and log event).

        The latency is decomposed into queue / marshal / worker /
        parent-overhead segments from the record's own stamps, plus —
        when the task shipped spans — the compile and compile-phase
        seconds summed out of the worker's span forest.
        """
        queue_seconds = (
            record.sent_at - record.submitted_at
            if record.sent_at is not None
            else 0.0
        )
        compile_ns = sum(
            event.duration_ns for event in spans if event.name == "compile"
        )
        phase_ns = sum(
            event.duration_ns
            for event in spans
            if event.name.startswith("phase:")
        )
        document: Dict[str, object] = {
            "task": record.id,
            "kind": record.kind,
            "trace_id": record.trace.trace_id if record.trace else "",
            "attempts": record.attempts,
            "status": status,
            "worker": record.worker_index,
            "payload_bytes": record.payload_bytes,
            "turnaround_seconds": round(turnaround, 6),
            "queue_seconds": round(queue_seconds, 6),
            "marshal_seconds": round(record.marshal_seconds, 6),
            "worker_seconds": round(worker_seconds, 6),
            "compile_seconds": round(compile_ns / 1e9, 6),
            "compile_phase_seconds": round(phase_ns / 1e9, 6),
            "overhead_seconds": round(
                max(0.0, turnaround - queue_seconds - worker_seconds), 6
            ),
        }
        self.slow_records.append(document)
        self._log(
            "warn", "slow-request",
            f"task {record.id} ({record.kind}) took {turnaround:.3f}s "
            f"(threshold {self.slow_log_seconds:.3f}s)",
            record=record,
            turnaround_seconds=round(turnaround, 6),
            queue_seconds=round(queue_seconds, 6),
            worker_seconds=round(worker_seconds, 6),
        )

    def _handle_bad_frame(self, worker_index: int) -> None:
        _BAD_FRAMES.resolve(self.session.stats).add()
        self.session.remarks.recovery(
            "serve",
            f"bad frame from worker {worker_index}: killing it and "
            f"requeueing its in-flight tasks",
            worker=worker_index,
        )
        self._log(
            "error", "bad-frame",
            f"malformed result frame from worker {worker_index}; killing "
            f"the worker",
            worker=worker_index,
        )
        with self._lock:
            if worker_index < len(self.pool.workers):
                worker = self.pool.workers[worker_index]
                if not worker.wedged:
                    worker.wedged = True
                    worker.process.terminate()
        # Death is observed (and requeue happens) on the next wait_any
        # pass, through the normal crash path.

    def _handle_dead_worker(self, index: int) -> None:
        stats = self.session.stats
        _CRASHES.resolve(stats).add()
        self._log(
            "warn", "worker-crash",
            f"worker {index} died; respawning and requeueing its "
            f"in-flight tasks",
            worker=index,
        )
        with self._lock:
            orphans = list(self._inflight.get(index, OrderedDict()).values())
            self._inflight[index] = OrderedDict()
            if not self._stop.is_set():
                try:
                    self.pool.respawn(index)
                except Exception as exc:
                    _RESPAWN_FAILURES.resolve(stats).add()
                    self.pool.mark_defunct(index)
                    self.session.remarks.recovery(
                        "serve",
                        f"respawn of worker {index} failed "
                        f"({type(exc).__name__}: {exc}); slot defunct, "
                        f"{len(self.pool.live_indices())} live worker(s) "
                        f"remain",
                        worker=index,
                        error=type(exc).__name__,
                    )
                    self._log(
                        "error", "respawn-failed",
                        f"respawn of worker {index} failed; slot defunct",
                        worker=index,
                        error=type(exc).__name__,
                    )
        crashed: List[TaskRecord] = []
        requeued: List[TaskRecord] = []
        with self._lock:
            for record in orphans:
                if record.done or record.state == "abandoned":
                    continue
                if record.attempts > self.retries:
                    crashed.append(record)
                    continue
                record.state = "pending"
                record.worker_index = None
                self._pending.appendleft(record)
                requeued.append(record)
                _REQUEUED.resolve(stats).add()
        for record in requeued:
            self._log(
                "info", "requeue",
                f"task {record.id} ({record.kind}) requeued after worker "
                f"{index} crash (attempt {record.attempts + 1})",
                record=record,
                worker=index,
                attempt=record.attempts,
            )
        for record in crashed:
            self._log(
                "error", "task-crashed",
                f"task {record.id} ({record.kind}) killed worker {index} "
                f"on {record.attempts} attempt(s); failing it",
                record=record,
                worker=index,
            )
        for record in crashed:
            self._finish(
                record,
                exception=WorkerCrashed(
                    f"task {record.id} ({record.kind}) killed worker "
                    f"{index} on {record.attempts} attempt(s)"
                ),
            )

    def _check_deadlines(self) -> None:
        now = time.perf_counter()
        expired: List[TaskRecord] = []
        wedged: List[int] = []
        with self._lock:
            for record in list(self._records.values()):
                if record.done or record.deadline is None:
                    continue
                if now < record.deadline:
                    continue
                if record.state == "inflight":
                    inflight = self._inflight.get(
                        record.worker_index, OrderedDict()
                    )
                    oldest = next(iter(inflight), None)
                    if oldest == record.id:
                        # The worker is actually grinding on this task:
                        # kill it so the slot comes back.  Pipelined
                        # followers requeue via _handle_dead_worker.
                        wedged.append(record.worker_index)
                    record.state = "abandoned"
                    inflight.pop(record.id, None)
                else:
                    record.state = "abandoned"
                expired.append(record)
        stats = self.session.stats
        for record in expired:
            _TIMEOUTS.resolve(stats).add()
            self._log(
                "warn", "task-timeout",
                f"task {record.id} ({record.kind}) exceeded its deadline",
                record=record,
            )
            self._finish(
                record,
                exception=TaskTimeout(
                    f"task {record.id} ({record.kind}) exceeded its "
                    f"deadline"
                ),
            )
        for index in wedged:
            with self._lock:
                if index < len(self.pool.workers):
                    self.pool.workers[index].process.terminate()
            # death is observed (and requeue happens) on the next
            # wait_any pass, through the normal crash path

    def _check_wedged(self) -> None:
        """Proactive wedged-worker detection, ahead of request deadlines.

        Two signals, both opt-in: a worker whose *oldest* dispatched task
        has been running longer than ``stall_budget`` since its "begin"
        marker is wedged (the task will never finish); a worker with
        in-flight work whose heartbeat went silent for four intervals is
        frozen.  Either way the process is killed now — requeue happens
        through the normal crash path — so the requeued task can still
        make its request deadline instead of timing out."""
        stall_budget = self.stall_budget
        beat_timeout = (
            self.heartbeat_interval * 4.0
            if self.heartbeat_interval is not None
            else None
        )
        if stall_budget is None and beat_timeout is None:
            return
        now = time.perf_counter()
        victims: List[Tuple[int, str]] = []
        with self._lock:
            for worker in self.pool.workers:
                index = worker.index
                if index in self.pool.defunct or worker.wedged:
                    continue
                inflight = self._inflight.get(index)
                if not inflight:
                    continue
                oldest = next(iter(inflight.values()))
                began = oldest.began_at
                if (
                    stall_budget is not None
                    and began is not None
                    and now - began > stall_budget
                ):
                    victims.append((
                        index,
                        f"task {oldest.id} ({oldest.kind}) stalled "
                        f"{now - began:.2f}s > budget {stall_budget:.2f}s",
                    ))
                elif (
                    beat_timeout is not None
                    and now - worker.last_beat > beat_timeout
                ):
                    victims.append((
                        index,
                        f"no heartbeat for {now - worker.last_beat:.2f}s "
                        f"with {len(inflight)} task(s) in flight",
                    ))
        stats = self.session.stats
        for index, reason in victims:
            _WEDGED.resolve(stats).add()
            self._log(
                "warn", "wedged-worker",
                f"wedged worker {index}: {reason}",
                worker=index,
            )
            self.session.remarks.recovery(
                "serve",
                f"wedged worker {index}: {reason}; killing and "
                f"respawning before the request deadline",
                worker=index,
            )
            with self._lock:
                if index < len(self.pool.workers):
                    worker = self.pool.workers[index]
                    worker.wedged = True
                    worker.process.terminate()

    def _dispatch_loop(self) -> None:
        while True:
            self._dispatch_pending()
            messages, extras, dead = self.pool.wait_any(
                timeout=0.05, extra=[self._wake_r]
            )
            if self._wake_r in extras:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
            for worker_index, envelope in messages:
                self._handle_result(worker_index, envelope)
            for index in dead:
                if self._stop.is_set():
                    continue
                self._handle_dead_worker(index)
            self._check_wedged()
            self._check_deadlines()
            if self._stop.is_set():
                with self._lock:
                    idle = not self._records
                if idle or self._stop.is_set():
                    break

    def _final_gauges(self) -> None:
        metrics = self.session.metrics
        if not metrics.enabled:
            return
        now = time.perf_counter()
        for worker in self.pool.workers:
            metrics.gauge(
                f"serve.worker.{worker.index}.utilization",
                worker.busy_seconds / max(1e-9, now - worker.started_at),
                description="in-worker busy seconds / worker lifetime",
            )
        metrics.gauge(
            "serve.compiles_per_sec", self.compiles_per_sec(),
            description="weighted tasks completed per wall second "
            "since service start",
        )
        with self._lock:
            recent_queue = list(self._recent_queue)
            recent_turnaround = list(self._recent_turnaround)
        for name, samples in (
            ("queue", recent_queue), ("turnaround", recent_turnaround),
        ):
            if not samples:
                continue
            metrics.gauge(
                f"serve.{name}_seconds.p99",
                exact_percentile(samples, 99),
                description=f"p99 request {name} latency over the recent "
                "window (last 512 requests)",
            )
