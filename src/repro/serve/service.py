"""CompileService: the async submission front-end over the warm pool.

``CompileService`` owns a :class:`~repro.serve.pool.WorkerPool` and a
dispatcher thread, and exposes a futures API::

    with CompileService(workers=2, cache_dir=".repro-cache") as service:
        future = service.submit("bench-pair", (pair, True), shard_key=kernel)
        run, capture = future.result()

Scheduling semantics:

* **FIFO + sharding.** Tasks dispatch in submission order.  A
  ``shard_key`` (the kernel name, for bench tasks) pins a task to
  ``crc32(key) % workers`` so repeat compiles of one kernel land on the
  worker whose warm session and memoized module text already know it;
  unsharded tasks go to the least-loaded live worker.  Each worker keeps
  at most ``max_inflight`` tasks pipelined in its pipe.
* **Backpressure.** At most ``max_pending`` tasks may be unresolved at
  once; ``submit(block=True)`` (default) waits for a slot,
  ``block=False`` raises :class:`ServiceOverloaded` — callers that fan
  out huge batches cannot OOM the parent on buffered payloads.
* **Timeout.** ``timeout=`` (or the service default) bounds
  submit→result wall time.  A timed-out *pending* task simply fails
  with :class:`TaskTimeout`; a timed-out task already *running* gets
  its worker killed and respawned (anything else pipelined behind it is
  requeued), so one wedged compile cannot brown-out the service.
* **Cancel.** :meth:`cancel` fails the future with
  :class:`TaskCancelled`; an already-running task's eventual result is
  dropped on arrival.
* **Crash → respawn + requeue.** A worker that dies mid-task is
  respawned under the same slot and its in-flight tasks are requeued
  (``retries`` attempts) before :class:`WorkerCrashed` surfaces.  A
  task that *keeps* killing workers fails rather than looping forever.

Every queue transition is instrumented into the service session:
``serve.queue_depth`` gauge, ``serve.task.queue_seconds`` /
``serve.task.turnaround_seconds`` histograms, per-worker utilization
gauges, and the ``serve.compiles_per_sec`` throughput gauge that CI's
history gate watches.  The ``parallel.marshal_seconds`` satellite fix
lives here too: the submit path pickles payloads itself and records the
real encode time (the old driver timed a round-trip of tiny name tuples
and rounded to zero).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from concurrent.futures import Future
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..observe import STAT
from ..observe.session import CompilerSession, current_session
from .pool import WorkerPool

_MARSHAL_SECONDS = STAT(
    "parallel.marshal_seconds", "seconds pickling worker payloads"
)
_TASKS = STAT("serve.tasks", "tasks submitted to the compile service")
_COMPLETED = STAT("serve.completed", "tasks completed successfully")
_ERRORS = STAT("serve.errors", "tasks failed inside a worker")
_TIMEOUTS = STAT("serve.timeouts", "tasks failed by deadline")
_CANCELLED = STAT("serve.cancelled", "tasks cancelled by the client")
_CRASHES = STAT("serve.worker_crashes", "workers found dead and respawned")
_REQUEUED = STAT("serve.requeued", "in-flight tasks requeued after a crash")
_WEDGED = STAT(
    "serve.wedged_workers",
    "workers killed by the stall detector before the request deadline",
)
_BAD_FRAMES = STAT(
    "serve.bad_frames",
    "malformed result frames; the sending worker is killed and its "
    "in-flight tasks requeued",
)
_RESPAWN_FAILURES = STAT(
    "serve.respawn_failures", "failed worker respawns (slot went defunct)"
)


class ServiceError(RuntimeError):
    """Base class for typed compile-service failures."""


class ServiceClosed(ServiceError):
    """The service is shutting down (or already closed)."""


class ServiceOverloaded(ServiceError):
    """``max_pending`` unresolved tasks and ``block=False``."""


class TaskTimeout(ServiceError):
    """The per-request deadline elapsed before a result arrived."""


class TaskCancelled(ServiceError):
    """The client cancelled the task."""


class WorkerCrashed(ServiceError):
    """The task's worker died on every allowed attempt."""


class ServiceUnavailable(ServiceError):
    """Every worker slot is defunct (failed respawns) — no capacity left.

    The client-side resilience layer (:mod:`repro.serve.resilience`)
    treats this as the signal to descend the degradation ladder."""


class RemoteTaskError(ServiceError):
    """The task raised inside the worker; carries the remote type name."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


_UNSET = object()


@dataclass
class TaskRecord:
    id: int
    kind: str
    payload: bytes
    future: Future
    shard_key: Optional[str]
    weight: float
    deadline: Optional[float]
    submitted_at: float
    sent_at: Optional[float] = None
    #: wall stamp of the worker's "begin" marker — the stall detector
    #: measures wedge time from here, not from dispatch
    began_at: Optional[float] = None
    worker_index: Optional[int] = None
    attempts: int = 0
    state: str = "pending"  # pending | inflight | abandoned
    done: bool = False


class CompileService:
    """Async batch front-end over a persistent warm-worker pool."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        cache_entries: Optional[int] = None,
        max_pending: int = 1024,
        max_inflight: int = 4,
        default_timeout: Optional[float] = None,
        retries: int = 1,
        session: Optional[CompilerSession] = None,
        name: str = "serve",
        heartbeat_interval: Optional[float] = None,
        stall_budget: Optional[float] = None,
        fault_plans: Sequence[Tuple[str, str, int, bool]] = (),
        fault_stall_seconds: Optional[float] = None,
    ) -> None:
        self.session = session if session is not None else current_session()
        self.name = name
        self.cache_dir = cache_dir
        self.max_pending = max(1, max_pending)
        self.max_inflight = max(1, max_inflight)
        self.default_timeout = default_timeout
        self.retries = max(0, retries)
        #: max seconds a dispatched task may sit without completing
        #: before its worker is declared wedged and killed (None = off)
        self.stall_budget = stall_budget
        self.heartbeat_interval = heartbeat_interval
        self.pool = WorkerPool(
            size=workers,
            cache_dir=cache_dir,
            cache_entries=cache_entries,
            name=name,
            fault_plans=fault_plans,
            heartbeat_interval=heartbeat_interval,
            fault_stall_seconds=fault_stall_seconds,
        )
        self._lock = threading.RLock()
        self._pending: Deque[TaskRecord] = deque()
        self._records: Dict[int, TaskRecord] = {}
        self._by_future: Dict[Future, TaskRecord] = {}
        self._inflight: Dict[int, "OrderedDict[int, TaskRecord]"] = {}
        self._slots = threading.Semaphore(self.max_pending)
        self._next_id = 1
        self._started = False
        self._closing = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = os.pipe()
        self._started_at = 0.0
        self._weight_done = 0.0
        self.spawn_seconds = 0.0

    # -- properties ---------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self.pool.size

    @property
    def result_cache_enabled(self) -> bool:
        return self.cache_dir is not None

    def compiles_per_sec(self) -> float:
        elapsed = time.perf_counter() - self._started_at
        return self._weight_done / elapsed if elapsed > 0 else 0.0

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "CompileService":
        if self._started:
            return self
        if self._closing:
            raise ServiceClosed(f"service {self.name!r} already closed")
        # Parent-side fault sites (serve.respawn) fire through the
        # session's injector; arm it *before* constructing the service.
        self.pool.faults = self.session.faults
        self.spawn_seconds = self.pool.start()
        self.session.metrics.gauge(
            "serve.pool_spawn_seconds", self.spawn_seconds,
            description="wall seconds to spawn the warm worker pool",
        )
        self._started_at = time.perf_counter()
        self._inflight = {index: OrderedDict() for index in range(self.pool.size)}
        self._thread = threading.Thread(
            target=self._dispatch_loop, name=f"{self.name}-dispatcher", daemon=True
        )
        self._thread.start()
        self._started = True
        return self

    def __enter__(self) -> "CompileService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the service; ``drain=True`` finishes in-flight work first."""
        if self._thread is None:
            self._closing = True
            return
        with self._lock:
            self._closing = True
        if drain:
            self.drain(timeout=timeout)
        self._stop.set()
        self._wake()
        self._thread.join(timeout=10.0)
        leftovers = list(self._records.values())
        for record in leftovers:
            self._finish(
                record,
                exception=ServiceClosed(
                    f"service {self.name!r} closed with task "
                    f"{record.id} ({record.kind}) unresolved"
                ),
            )
        self._final_gauges()
        self.pool.stop(graceful=drain)
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
        self._started = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every submitted task to resolve; True when drained."""
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while True:
            with self._lock:
                busy = bool(self._records)
            if not busy:
                return True
            if deadline is not None and time.perf_counter() >= deadline:
                return False
            time.sleep(0.005)

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: object = None,
        *,
        shard_key: Optional[str] = None,
        timeout: object = _UNSET,
        weight: float = 1.0,
        block: bool = True,
    ) -> Future:
        """Enqueue one task; returns a ``concurrent.futures.Future``."""
        if not self._started:
            self.start()
        if self._closing:
            raise ServiceClosed(f"service {self.name!r} is closing")
        if self.pool.defunct and not self.pool.live_indices():
            raise ServiceUnavailable(
                f"service {self.name!r} has no live workers left "
                f"({len(self.pool.defunct)} defunct slot(s))"
            )
        if not self._slots.acquire(blocking=block):
            raise ServiceOverloaded(
                f"service {self.name!r} has {self.max_pending} unresolved "
                f"tasks (bounded queue)"
            )
        marshal_start = time.perf_counter()
        data = pickle.dumps(payload, protocol=-1)
        marshal_seconds = time.perf_counter() - marshal_start
        stats = self.session.stats
        _MARSHAL_SECONDS.resolve(stats).add(marshal_seconds)
        self.session.metrics.observe(
            "parallel.task.marshal_seconds", marshal_seconds,
            description="payload pickle-encode seconds per submitted task",
        )
        limit = self.default_timeout if timeout is _UNSET else timeout
        deadline = (
            time.perf_counter() + float(limit) if limit is not None else None
        )
        with self._lock:
            if self._closing:
                self._slots.release()
                raise ServiceClosed(f"service {self.name!r} is closing")
            record = TaskRecord(
                id=self._next_id,
                kind=kind,
                payload=data,
                future=Future(),
                shard_key=shard_key,
                weight=float(weight),
                deadline=deadline,
                submitted_at=time.perf_counter(),
            )
            self._next_id += 1
            self._records[record.id] = record
            self._by_future[record.future] = record
            self._pending.append(record)
            depth = len(self._pending)
        _TASKS.resolve(stats).add()
        self.session.metrics.gauge(
            "serve.queue_depth", float(depth),
            description="tasks waiting for a worker slot",
        )
        self._wake()
        return record.future

    def submit_batch(
        self, tasks: Iterable[Tuple[str, object]], **opts
    ) -> List[Future]:
        """Submit ``(kind, payload)`` pairs; futures in submission order."""
        return [self.submit(kind, payload, **opts) for kind, payload in tasks]

    def cancel(self, future: Future) -> bool:
        """Cancel the task behind ``future``; True if it was still live."""
        with self._lock:
            record = self._by_future.get(future)
            if record is None or record.done:
                return False
            if record.state == "inflight":
                record.state = "abandoned"  # drop the result on arrival
            else:
                record.state = "abandoned"
        _CANCELLED.resolve(self.session.stats).add()
        self._finish(
            record,
            exception=TaskCancelled(
                f"task {record.id} ({record.kind}) cancelled"
            ),
        )
        return True

    def health_check(self, timeout: float = 10.0) -> List[Dict[str, object]]:
        """Ping every worker slot; returns one report per live worker."""
        futures = [
            self.submit("ping", None, shard_key=None, timeout=timeout)
            for _ in range(self.pool.size)
        ]
        reports: List[Dict[str, object]] = []
        for future in futures:
            try:
                reports.append(future.result(timeout=timeout + 1.0))
            except ServiceError as exc:
                reports.append({"error": str(exc)})
        return reports

    def describe(self) -> Dict[str, object]:
        """Service snapshot for the wire ``stats`` request and CLI banner."""
        now = time.perf_counter()
        with self._lock:
            pending = len(self._pending)
            inflight = sum(len(m) for m in self._inflight.values())
            workers = [
                {
                    "index": worker.index,
                    "pid": worker.process.pid,
                    "generation": worker.generation,
                    "alive": worker.alive(),
                    "tasks_sent": worker.tasks_sent,
                    "busy_seconds": round(worker.busy_seconds, 6),
                    "utilization": round(
                        worker.busy_seconds / max(1e-9, now - worker.started_at), 4
                    ),
                }
                for worker in self.pool.workers
            ]
        counters = {
            name: value
            for name, value in self.session.stats.snapshot().items()
            if name.startswith(("serve.", "cache.", "parallel."))
        }
        return {
            "name": self.name,
            "workers": workers,
            "pending": pending,
            "inflight": inflight,
            "respawns": self.pool.respawns,
            "defunct": sorted(self.pool.defunct),
            "uptime_seconds": round(now - self._started_at, 3),
            "compiles_per_sec": round(self.compiles_per_sec(), 3),
            "cache_dir": self.cache_dir,
            "counters": counters,
        }

    # -- dispatcher internals -----------------------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _worker_for(self, record: TaskRecord) -> Optional[int]:
        """Pick a worker index with spare pipeline room, or None.

        A shard pinned to a defunct slot falls back to the least-loaded
        live worker (still deterministic: min load, lowest index wins)."""
        defunct = self.pool.defunct
        if record.shard_key is not None:
            index = zlib.crc32(record.shard_key.encode()) % self.pool.size
            if index not in defunct:
                if len(self._inflight[index]) < self.max_inflight:
                    return index
                return None
        best, best_load = None, None
        for index in range(self.pool.size):
            if index in defunct:
                continue
            load = len(self._inflight[index])
            if load >= self.max_inflight:
                continue
            if best_load is None or load < best_load:
                best, best_load = index, load
        return best

    def _fail_pending_unavailable(self) -> None:
        """No live worker slots remain: fail everything still queued."""
        with self._lock:
            doomed = [r for r in self._pending if not r.done]
            self._pending = deque()
        for record in doomed:
            self._finish(
                record,
                exception=ServiceUnavailable(
                    f"service {self.name!r} has no live workers left "
                    f"({len(self.pool.defunct)} defunct slot(s)); task "
                    f"{record.id} ({record.kind}) cannot be dispatched"
                ),
            )

    def _dispatch_pending(self) -> None:
        if not self.pool.live_indices():
            self._fail_pending_unavailable()
            return
        with self._lock:
            if not self._pending:
                return
            remaining: Deque[TaskRecord] = deque()
            while self._pending:
                record = self._pending.popleft()
                if record.done:
                    continue
                index = self._worker_for(record)
                if index is None:
                    remaining.append(record)
                    continue
                try:
                    self.pool.send(index, record.id, record.kind, record.payload)
                except (OSError, BrokenPipeError):
                    # Worker died between liveness scan and send; the
                    # next wait_any pass respawns it.  Keep the task.
                    remaining.append(record)
                    continue
                record.state = "inflight"
                record.worker_index = index
                record.sent_at = time.perf_counter()
                record.attempts += 1
                self._inflight[index][record.id] = record
                self.session.metrics.observe(
                    "serve.task.queue_seconds",
                    record.sent_at - record.submitted_at,
                    description="submit-to-dispatch wall seconds per task",
                )
            self._pending = remaining
            depth = len(self._pending)
        self.session.metrics.gauge(
            "serve.queue_depth", float(depth),
            description="tasks waiting for a worker slot",
        )

    def _handle_result(self, worker_index: int, envelope) -> None:
        try:
            task_id, status, data, worker_seconds, delta = envelope
            if not isinstance(task_id, int) or not isinstance(status, str):
                raise TypeError("bogus envelope field types")
        except (TypeError, ValueError):
            # Truncated/garbage frame: the worker's stream can no longer
            # be trusted — kill it; the dead scan requeues its in-flight
            # tasks through the normal crash path.
            self._handle_bad_frame(worker_index)
            return
        with self._lock:
            if worker_index < len(self.pool.workers):
                self.pool.workers[worker_index].last_beat = time.perf_counter()
        if status == "hb":  # periodic liveness beat, no payload
            return
        if status == "begin":  # task-start marker for the stall detector
            with self._lock:
                record = self._records.get(task_id)
                if record is not None and record.state == "inflight":
                    record.began_at = time.perf_counter()
            return
        if task_id < 0:  # drain acknowledgement
            return
        with self._lock:
            if worker_index < len(self.pool.workers):
                worker = self.pool.workers[worker_index]
                worker.busy_seconds += float(worker_seconds)
                worker.inflight = max(0, worker.inflight - 1)
            record = self._inflight.get(worker_index, OrderedDict()).pop(
                task_id, None
            )
            if record is None:
                record = self._records.get(task_id)
        # Warm-session counter deltas (cache hits, task-cache traffic)
        # fold into the *service* session — never into task results.
        stats = self.session.stats
        for name, value in sorted(delta.items()):
            stats.stat(name).add(value)
        if record is None or record.done or record.state == "abandoned":
            if record is not None and not record.done:
                self._finish_noop(record)
            return
        self.session.metrics.observe(
            "serve.task.turnaround_seconds",
            time.perf_counter() - record.submitted_at,
            description="submit-to-result wall seconds per task",
        )
        if status == "ok":
            try:
                result = pickle.loads(data)
            except Exception as exc:  # pragma: no cover - defensive
                _ERRORS.resolve(stats).add()
                self._finish(
                    record,
                    exception=RemoteTaskError("UnpicklingError", str(exc)),
                )
                return
            _COMPLETED.resolve(stats).add()
            self._weight_done += record.weight
            self.session.metrics.gauge(
                "serve.compiles_per_sec", self.compiles_per_sec(),
                description="weighted tasks completed per wall second "
                "since service start",
            )
            self._finish(record, result=result)
        else:
            remote_type, message = pickle.loads(data)
            _ERRORS.resolve(stats).add()
            self._finish(
                record, exception=RemoteTaskError(remote_type, message)
            )

    def _finish_noop(self, record: TaskRecord) -> None:
        """Forget a record whose future was already resolved elsewhere."""
        with self._lock:
            record.done = True
            self._records.pop(record.id, None)
            self._by_future.pop(record.future, None)

    def _finish(
        self,
        record: TaskRecord,
        result: object = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if record.done:
                return
            record.done = True
            self._records.pop(record.id, None)
            self._by_future.pop(record.future, None)
        self._slots.release()
        # Resolve outside the lock: done-callbacks may submit more work.
        if exception is not None:
            record.future.set_exception(exception)
        else:
            record.future.set_result(result)

    def _handle_bad_frame(self, worker_index: int) -> None:
        _BAD_FRAMES.resolve(self.session.stats).add()
        self.session.remarks.recovery(
            "serve",
            f"bad frame from worker {worker_index}: killing it and "
            f"requeueing its in-flight tasks",
            worker=worker_index,
        )
        with self._lock:
            if worker_index < len(self.pool.workers):
                worker = self.pool.workers[worker_index]
                if not worker.wedged:
                    worker.wedged = True
                    worker.process.terminate()
        # Death is observed (and requeue happens) on the next wait_any
        # pass, through the normal crash path.

    def _handle_dead_worker(self, index: int) -> None:
        stats = self.session.stats
        _CRASHES.resolve(stats).add()
        with self._lock:
            orphans = list(self._inflight.get(index, OrderedDict()).values())
            self._inflight[index] = OrderedDict()
            if not self._stop.is_set():
                try:
                    self.pool.respawn(index)
                except Exception as exc:
                    _RESPAWN_FAILURES.resolve(stats).add()
                    self.pool.mark_defunct(index)
                    self.session.remarks.recovery(
                        "serve",
                        f"respawn of worker {index} failed "
                        f"({type(exc).__name__}: {exc}); slot defunct, "
                        f"{len(self.pool.live_indices())} live worker(s) "
                        f"remain",
                        worker=index,
                        error=type(exc).__name__,
                    )
        crashed: List[TaskRecord] = []
        with self._lock:
            for record in orphans:
                if record.done or record.state == "abandoned":
                    continue
                if record.attempts > self.retries:
                    crashed.append(record)
                    continue
                record.state = "pending"
                record.worker_index = None
                self._pending.appendleft(record)
                _REQUEUED.resolve(stats).add()
        for record in crashed:
            self._finish(
                record,
                exception=WorkerCrashed(
                    f"task {record.id} ({record.kind}) killed worker "
                    f"{index} on {record.attempts} attempt(s)"
                ),
            )

    def _check_deadlines(self) -> None:
        now = time.perf_counter()
        expired: List[TaskRecord] = []
        wedged: List[int] = []
        with self._lock:
            for record in list(self._records.values()):
                if record.done or record.deadline is None:
                    continue
                if now < record.deadline:
                    continue
                if record.state == "inflight":
                    inflight = self._inflight.get(
                        record.worker_index, OrderedDict()
                    )
                    oldest = next(iter(inflight), None)
                    if oldest == record.id:
                        # The worker is actually grinding on this task:
                        # kill it so the slot comes back.  Pipelined
                        # followers requeue via _handle_dead_worker.
                        wedged.append(record.worker_index)
                    record.state = "abandoned"
                    inflight.pop(record.id, None)
                else:
                    record.state = "abandoned"
                expired.append(record)
        stats = self.session.stats
        for record in expired:
            _TIMEOUTS.resolve(stats).add()
            self._finish(
                record,
                exception=TaskTimeout(
                    f"task {record.id} ({record.kind}) exceeded its "
                    f"deadline"
                ),
            )
        for index in wedged:
            with self._lock:
                if index < len(self.pool.workers):
                    self.pool.workers[index].process.terminate()
            # death is observed (and requeue happens) on the next
            # wait_any pass, through the normal crash path

    def _check_wedged(self) -> None:
        """Proactive wedged-worker detection, ahead of request deadlines.

        Two signals, both opt-in: a worker whose *oldest* dispatched task
        has been running longer than ``stall_budget`` since its "begin"
        marker is wedged (the task will never finish); a worker with
        in-flight work whose heartbeat went silent for four intervals is
        frozen.  Either way the process is killed now — requeue happens
        through the normal crash path — so the requeued task can still
        make its request deadline instead of timing out."""
        stall_budget = self.stall_budget
        beat_timeout = (
            self.heartbeat_interval * 4.0
            if self.heartbeat_interval is not None
            else None
        )
        if stall_budget is None and beat_timeout is None:
            return
        now = time.perf_counter()
        victims: List[Tuple[int, str]] = []
        with self._lock:
            for worker in self.pool.workers:
                index = worker.index
                if index in self.pool.defunct or worker.wedged:
                    continue
                inflight = self._inflight.get(index)
                if not inflight:
                    continue
                oldest = next(iter(inflight.values()))
                began = oldest.began_at
                if (
                    stall_budget is not None
                    and began is not None
                    and now - began > stall_budget
                ):
                    victims.append((
                        index,
                        f"task {oldest.id} ({oldest.kind}) stalled "
                        f"{now - began:.2f}s > budget {stall_budget:.2f}s",
                    ))
                elif (
                    beat_timeout is not None
                    and now - worker.last_beat > beat_timeout
                ):
                    victims.append((
                        index,
                        f"no heartbeat for {now - worker.last_beat:.2f}s "
                        f"with {len(inflight)} task(s) in flight",
                    ))
        stats = self.session.stats
        for index, reason in victims:
            _WEDGED.resolve(stats).add()
            self.session.remarks.recovery(
                "serve",
                f"wedged worker {index}: {reason}; killing and "
                f"respawning before the request deadline",
                worker=index,
            )
            with self._lock:
                if index < len(self.pool.workers):
                    worker = self.pool.workers[index]
                    worker.wedged = True
                    worker.process.terminate()

    def _dispatch_loop(self) -> None:
        while True:
            self._dispatch_pending()
            messages, extras, dead = self.pool.wait_any(
                timeout=0.05, extra=[self._wake_r]
            )
            if self._wake_r in extras:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
            for worker_index, envelope in messages:
                self._handle_result(worker_index, envelope)
            for index in dead:
                if self._stop.is_set():
                    continue
                self._handle_dead_worker(index)
            self._check_wedged()
            self._check_deadlines()
            if self._stop.is_set():
                with self._lock:
                    idle = not self._records
                if idle or self._stop.is_set():
                    break

    def _final_gauges(self) -> None:
        metrics = self.session.metrics
        if not metrics.enabled:
            return
        now = time.perf_counter()
        for worker in self.pool.workers:
            metrics.gauge(
                f"serve.worker.{worker.index}.utilization",
                worker.busy_seconds / max(1e-9, now - worker.started_at),
                description="in-worker busy seconds / worker lifetime",
            )
        metrics.gauge(
            "serve.compiles_per_sec", self.compiles_per_sec(),
            description="weighted tasks completed per wall second "
            "since service start",
        )
