"""Client-side resilience for compile-service traffic.

The compile service (:mod:`repro.serve.service`) already recovers from
*worker* failures — crashes respawn, wedged workers are killed, in-flight
tasks requeue.  This module is the **client's** half of the contract: a
bench/fuzz driver that talks to a service must finish with bit-identical
results even when the service itself misbehaves or disappears.

Three cooperating pieces:

* :class:`ResiliencePolicy` — the knobs: bounded retries with exponential
  backoff and *deterministic* jitter (seeded hash, never ``random``, so a
  chaos run replays exactly), optional hedging for straggler tasks, and
  circuit-breaker thresholds.
* :class:`CircuitBreaker` — classic closed/open/half-open gate.  Enough
  consecutive failures trip it open; while open, tasks skip the service
  entirely and descend the degradation ladder; after a cooldown one
  probe request (half-open) decides whether to close it again.
* :class:`ResilientExecutor` — wraps a :class:`CompileService` and runs
  task batches through the ladder::

      service  →  ephemeral local pool  →  serial in-process

  Every descent is counted (``serve.degraded``) and narrated with a
  ``recovery`` remark, so a chaos campaign can tell *recovered* (service
  healed itself, no descent) from *degraded* (ladder fallback) runs.

Determinism: the task runners themselves are deterministic, so **where**
a task executes never changes its result — only its wall-clock cost.
That is the invariant the chaos campaign checks.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..observe import STAT
from ..observe.context import TraceContext, mint_context, new_span_id
from ..observe.session import CompilerSession, current_session, use_session
from ..observe.trace import TraceEvent
from .service import (
    CompileService,
    RemoteTaskError,
    ServiceClosed,
    ServiceError,
    ServiceUnavailable,
    TaskCancelled,
    TaskTimeout,
    WorkerCrashed,
)

_RETRIES = STAT("serve.retries", "task resubmissions by the resilience policy")
_HEDGES = STAT("serve.hedges", "duplicate requests hedged for stragglers")
_HEDGE_WINS = STAT("serve.hedge_wins", "hedged duplicates that finished first")
_DEGRADED = STAT(
    "serve.degraded", "tasks that fell down the degradation ladder"
)
_BREAKER_TRIPS = STAT(
    "serve.breaker_trips", "circuit-breaker transitions to the open state"
)

#: failures where resubmitting to the *same* service can plausibly help:
#: the worker that died/wedged/errored has been (or is being) replaced.
_RETRYABLE = (WorkerCrashed, TaskTimeout, RemoteTaskError)

#: failures where the service as a whole is gone or refused the task —
#: retrying is pointless, descend the ladder immediately.
_FATAL_FOR_SERVICE = (ServiceUnavailable, ServiceClosed, TaskCancelled)

#: one executor-managed task: (kind, payload, shard_key, weight)
TaskSpec = Tuple[str, object, Optional[str], float]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry/backoff/hedging/breaker knobs for :class:`ResilientExecutor`."""

    #: resubmissions per task after the first attempt fails
    max_retries: int = 2
    #: backoff before retry ``n`` is ``base * factor**(n-1)``, capped
    backoff_base_seconds: float = 0.02
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 0.5
    #: jitter scales the delay by ``1 ± ratio`` (deterministic, seeded)
    jitter_ratio: float = 0.25
    #: seed folded into the jitter hash so campaigns replay exactly
    seed: int = 0
    #: hedge a duplicate request after this many seconds without a
    #: result (None = hedging off)
    hedge_after_seconds: Optional[float] = None
    #: consecutive failures that trip the breaker open
    breaker_failures: int = 3
    #: seconds the breaker stays open before allowing a half-open probe
    breaker_cooldown_seconds: float = 5.0
    #: workers in the ephemeral local pool (ladder rung 2; 0 skips the
    #: rung and degrades straight to serial in-process)
    local_pool_workers: int = 2


def backoff_delay(policy: ResiliencePolicy, attempt: int, token: str = "") -> float:
    """Delay before retry ``attempt`` (1-based), with deterministic jitter.

    Jitter comes from ``sha256(seed, token, attempt)`` — no global RNG is
    touched, so two runs of the same campaign sleep identical schedules.
    """
    if attempt <= 0:
        return 0.0
    base = policy.backoff_base_seconds * (
        policy.backoff_factor ** (attempt - 1)
    )
    base = min(policy.backoff_max_seconds, base)
    digest = hashlib.sha256(
        f"{policy.seed}\x00{token}\x00{attempt}".encode("utf-8")
    ).digest()
    fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    jitter = policy.jitter_ratio * (2.0 * fraction - 1.0)
    return max(0.0, base * (1.0 + jitter))


class CircuitBreaker:
    """Closed/open/half-open failure gate over a monotonic clock.

    * **closed** — requests flow; consecutive failures are counted.
    * **open** — :meth:`allow` returns False until the cooldown lapses.
    * **half-open** — one probe is admitted; success closes the breaker,
      failure re-opens it (and restarts the cooldown).
    """

    def __init__(
        self,
        failures_to_trip: int = 3,
        cooldown_seconds: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.failures_to_trip = max(1, failures_to_trip)
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0
        self._probing = False

    def allow(self) -> bool:
        """May the next request go to the service?"""
        with self._lock:
            if self.state == "closed":
                return True
            now = self._clock()
            if self.state == "open":
                if now - self._opened_at < self.cooldown_seconds:
                    return False
                self.state = "half-open"
                self._probing = False
            # half-open: admit exactly one probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self.consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> bool:
        """Count a failure; True when this call tripped the breaker open."""
        with self._lock:
            self.consecutive_failures += 1
            if self.state == "half-open":
                tripped = True  # failed probe re-opens
            elif (
                self.state == "closed"
                and self.consecutive_failures >= self.failures_to_trip
            ):
                tripped = True
            else:
                tripped = False
            if tripped:
                self.state = "open"
                self._opened_at = self._clock()
                self._probing = False
                self.trips += 1
            return tripped


class ResilientExecutor:
    """Run task batches through retry → hedge → degradation ladder.

    ``service`` may be None (or die mid-batch): every task still
    completes, just further down the ladder.  Results are position-stable
    — ``run_batch(tasks)[i]`` is always the result for ``tasks[i]``.
    """

    def __init__(
        self,
        service: Optional[CompileService],
        policy: Optional[ResiliencePolicy] = None,
        session: Optional[CompilerSession] = None,
    ) -> None:
        self.service = service
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.session = session if session is not None else current_session()
        self.breaker = CircuitBreaker(
            failures_to_trip=self.policy.breaker_failures,
            cooldown_seconds=self.policy.breaker_cooldown_seconds,
        )
        self._lock = threading.Lock()
        self._local_service: Optional[CompileService] = None
        self._local_failed = False
        self._serial_state = None

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ResilientExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        with self._lock:
            local, self._local_service = self._local_service, None
        if local is not None:
            try:
                local.close(drain=False)
            except Exception:
                pass

    # -- the batch API --------------------------------------------------

    def run_batch(self, tasks: Sequence[TaskSpec]) -> List[object]:
        """Execute every task; results in submission order, no escapes.

        While the session tracer is enabled each task gets one minted
        :class:`TraceContext` for its entire ladder journey: the first
        service attempt, every retry (same trace id, bumped attempt),
        any hedged duplicate, and the degradation rungs all share it, so
        the whole story lands in one ``client:request``-rooted span tree.
        """
        traced = self.session.tracer.enabled
        contexts: List[Optional[TraceContext]] = [
            mint_context() if traced else None for _ in tasks
        ]
        started = [time.perf_counter_ns() if traced else 0 for _ in tasks]
        futures: List[Optional[Future]] = [
            self._try_submit(task, trace=context)
            for task, context in zip(tasks, contexts)
        ]
        return [
            self._collect(task, future, context, start_ns)
            for task, future, context, start_ns in zip(
                tasks, futures, contexts, started
            )
        ]

    # -- service attempts ----------------------------------------------

    def _try_submit(
        self,
        task: TaskSpec,
        shard_key: object = "use-task",
        trace: Optional[TraceContext] = None,
    ) -> Optional[Future]:
        """Submit to the service, or None when it can't take the task."""
        if self.service is None or not self.breaker.allow():
            return None
        kind, payload, task_shard, weight = task
        shard = task_shard if shard_key == "use-task" else shard_key
        try:
            return self.service.submit(
                kind, payload, shard_key=shard, weight=weight, trace=trace
            )
        except ServiceError:
            self._count_failure()
            return None

    def _collect(
        self,
        task: TaskSpec,
        future: Optional[Future],
        context: Optional[TraceContext] = None,
        started_ns: int = 0,
    ) -> object:
        kind, _, shard_key, _ = task
        policy = self.policy
        attempt = 0
        last_exc: Optional[BaseException] = None
        while future is not None:
            try:
                result = self._await(task, future, context)
            except ServiceError as exc:
                last_exc = exc
                self._count_failure()
                if (
                    isinstance(exc, _FATAL_FOR_SERVICE)
                    or attempt >= policy.max_retries
                ):
                    future = None
                    break
                attempt += 1
                _RETRIES.resolve(self.session.stats).add()
                if context is not None:
                    context = context.retry()
                self.session.log.emit(
                    "info", "retry",
                    f"resubmitting {kind} task after "
                    f"{type(exc).__name__} (attempt {attempt})",
                    trace_id=context.trace_id if context else "",
                    kind=kind,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                delay = backoff_delay(
                    policy, attempt, token=shard_key or kind
                )
                if delay > 0:
                    time.sleep(delay)
                future = self._try_submit(task, trace=context)
            else:
                self.breaker.record_success()
                self._sync_breaker()
                self._finish_client_span(task, context, started_ns, "ok")
                return result
        result = self._run_degraded(task, cause=last_exc, context=context)
        self._finish_client_span(task, context, started_ns, "degraded")
        return result

    def _finish_client_span(
        self,
        task: TaskSpec,
        context: Optional[TraceContext],
        started_ns: int,
        status: str,
    ) -> None:
        """Close the per-task root: the client-side ``client:request``
        span every service/worker/ladder span ultimately parents into."""
        if context is None or not self.session.tracer.enabled:
            return
        self.session.tracer.events.append(
            TraceEvent(
                name="client:request",
                start_ns=started_ns,
                duration_ns=max(0, time.perf_counter_ns() - started_ns),
                depth=0,
                args={
                    "kind": task[0],
                    "status": status,
                    "attempt": context.attempt,
                },
                trace_id=context.trace_id,
                span_id=context.span_id,
                parent_id="",
            )
        )

    def _await(
        self,
        task: TaskSpec,
        future: Future,
        context: Optional[TraceContext] = None,
    ) -> object:
        """Wait for ``future``, hedging a duplicate if it straggles."""
        hedge_after = self.policy.hedge_after_seconds
        if hedge_after is None:
            return future.result()
        done, _ = _wait_futures([future], timeout=hedge_after)
        if done:
            return future.result()
        # Straggler: race a duplicate on a *different* worker (no shard
        # pin), since the pinned worker is the likely culprit.  The hedge
        # shares the original request's trace context, so both attempts
        # land in the same span tree.
        hedge = self._try_submit(task, shard_key=None, trace=context)
        if hedge is None:
            return future.result()
        _HEDGES.resolve(self.session.stats).add()
        self.session.log.emit(
            "info", "hedge",
            f"hedged a duplicate {task[0]} request after "
            f"{hedge_after:g}s without a result",
            trace_id=context.trace_id if context else "",
            kind=task[0],
        )
        pair = [future, hedge]
        pending = set(pair)
        winner: Optional[Future] = None
        first_exc: Optional[BaseException] = None
        while pending:
            done, pending = _wait_futures(
                pending, return_when=FIRST_COMPLETED
            )
            for f in done:
                if f.exception() is None:
                    winner = f
                    break
                if first_exc is None:
                    first_exc = f.exception()
            if winner is not None:
                break
        if winner is None:
            assert first_exc is not None
            raise first_exc
        for f in pair:
            if f is not winner and not f.done() and self.service is not None:
                cancelled = self.service.cancel(f)
                if cancelled:
                    self._record_hedge_loser(task, context, f is hedge)
        if winner is hedge:
            _HEDGE_WINS.resolve(self.session.stats).add()
        return winner.result()

    def _record_hedge_loser(
        self,
        task: TaskSpec,
        context: Optional[TraceContext],
        loser_was_hedge: bool,
    ) -> None:
        """Note the cancelled side of a hedge race in the request's tree."""
        self.session.log.emit(
            "info", "hedge-loser-cancelled",
            f"cancelled the losing "
            f"{'hedge' if loser_was_hedge else 'original'} of a hedged "
            f"{task[0]} request",
            trace_id=context.trace_id if context else "",
            kind=task[0],
            loser="hedge" if loser_was_hedge else "original",
        )
        if context is None or not self.session.tracer.enabled:
            return
        self.session.tracer.events.append(
            TraceEvent(
                name="serve:hedge-loser-cancelled",
                start_ns=time.perf_counter_ns(),
                duration_ns=0,
                depth=1,
                args={
                    "kind": task[0],
                    "loser": "hedge" if loser_was_hedge else "original",
                },
                trace_id=context.trace_id,
                span_id=new_span_id(),
                parent_id=context.span_id,
            )
        )

    def _sync_breaker(self) -> None:
        """Mirror the breaker state onto the service for ``stats``/top."""
        if self.service is not None:
            self.service.breaker_state = self.breaker.state

    def _count_failure(self) -> None:
        tripped = self.breaker.record_failure()
        self._sync_breaker()
        if tripped:
            _BREAKER_TRIPS.resolve(self.session.stats).add()
            self.session.remarks.recovery(
                "resilience",
                f"circuit breaker tripped open after "
                f"{self.breaker.consecutive_failures} consecutive service "
                f"failures; cooling down "
                f"{self.breaker.cooldown_seconds:g}s",
                breaker_trips=self.breaker.trips,
            )
            self.session.log.emit(
                "error", "breaker-trip",
                f"circuit breaker opened after "
                f"{self.breaker.consecutive_failures} consecutive failures",
                trips=self.breaker.trips,
            )

    # -- the degradation ladder ----------------------------------------

    def _run_degraded(
        self,
        task: TaskSpec,
        cause: Optional[BaseException] = None,
        context: Optional[TraceContext] = None,
    ) -> object:
        """Rungs below the service: local pool, then serial in-process.

        ``context`` (when tracing) follows the task down the ladder, so
        the rung that finally runs it — local-pool worker or the serial
        fallback right here — still parents its spans into the same
        ``client:request`` tree as the failed service attempts.
        """
        kind, payload, shard_key, weight = task
        _DEGRADED.resolve(self.session.stats).add()
        detail = (
            f"{type(cause).__name__}: {cause}"
            if cause is not None
            else "service unavailable or circuit open"
        )
        if self.policy.local_pool_workers > 0 and not self._local_failed:
            try:
                local = self._ensure_local_service()
                result = local.submit(
                    kind, payload, shard_key=shard_key, weight=weight,
                    trace=context,
                ).result()
            except ServiceError as exc:
                self._local_failed = True
                detail = (
                    f"{detail}; local pool failed with "
                    f"{type(exc).__name__}"
                )
            else:
                self._adopt_local_spans()
                self.session.remarks.recovery(
                    "resilience",
                    f"degraded {kind} task to the ephemeral local pool "
                    f"({detail})",
                    task_kind=kind,
                    rung="local-pool",
                )
                self.session.log.emit(
                    "warn", "degrade",
                    f"degraded {kind} task to the ephemeral local pool",
                    trace_id=context.trace_id if context else "",
                    kind=kind,
                    rung="local-pool",
                    cause=detail,
                )
                return result
        self.session.remarks.recovery(
            "resilience",
            f"degraded {kind} task to serial in-process execution "
            f"({detail})",
            task_kind=kind,
            rung="serial",
        )
        self.session.log.emit(
            "warn", "degrade",
            f"degraded {kind} task to serial in-process execution",
            trace_id=context.trace_id if context else "",
            kind=kind,
            rung="serial",
            cause=detail,
        )
        return self._run_serial(kind, payload, context)

    def _ensure_local_service(self) -> CompileService:
        with self._lock:
            if self._local_service is None:
                # A *fresh* session so armed faults in the caller's
                # session can't follow the work down the ladder — the
                # local pool models a healthy replacement, like a
                # respawned worker.
                local_session = CompilerSession(name="resilience-local")
                # Mirror the caller's tracing switch so the local rung's
                # request/worker spans exist to be adopted; everything
                # else in the session stays fresh (fault isolation).
                local_session.tracer.enabled = self.session.tracer.enabled
                self._local_service = CompileService(
                    workers=self.policy.local_pool_workers,
                    session=local_session,
                    name="resilience-local",
                ).start()
            return self._local_service

    def _adopt_local_spans(self) -> None:
        """Move the local pool's captured spans into the caller's tracer.

        The local service records into its own fresh session; after each
        degraded result its span forest (request spans plus the worker
        spans shipped back over its pipes) is drained into the caller's
        tracer so the trace file shows the full ladder story.
        """
        if not self.session.tracer.enabled:
            return
        with self._lock:
            local = self._local_service
        if local is None or local.session is self.session:
            return
        events = local.session.tracer.events
        if events:
            self.session.tracer.events.extend(events)
            del events[: len(events)]

    def _run_serial(
        self,
        kind: str,
        payload: object,
        context: Optional[TraceContext] = None,
    ) -> object:
        """Last rung: run the task right here, no processes involved."""
        from .tasks import WorkerState, run_task

        with self._lock:
            if self._serial_state is None:
                self._serial_state = WorkerState(
                    index=-1,
                    session=CompilerSession(name="resilience-serial"),
                )
            state = self._serial_state
        if context is None or not self.session.tracer.enabled:
            with use_session(state.session):
                return run_task(kind, payload, state)
        # Trace the serial rung like a worker would: a ``serial:task``
        # root parented into the request context, compile-phase spans
        # nested inside, the forest moved into the caller's tracer
        # afterwards (pid stays 0 — this *is* the client process).
        tracer = state.session.tracer
        mark = len(tracer.events)
        was_enabled = tracer.enabled
        tracer.enabled = True
        try:
            with use_session(state.session):
                with tracer.bind(context):
                    with tracer.span(
                        "serial:task", kind=kind, attempt=context.attempt
                    ):
                        return run_task(kind, payload, state)
        finally:
            captured = tracer.events[mark:]
            del tracer.events[mark:]
            tracer.enabled = was_enabled
            self.session.tracer.events.extend(captured)
