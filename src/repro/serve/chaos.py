"""``repro chaos``: seeded service-fault campaigns over real traffic.

The compile-service analogue of ``repro fuzz --inject``: each chaos run
drives a real workload (a bench suite, a fuzz campaign, or a socket
client session) against a :class:`~repro.serve.service.CompileService`
with exactly one service fault scenario armed, then classifies what
happened:

* ``recovered`` — the service healed itself (respawn, requeue, wedge
  kill, retry) and the results are bit-identical to the fault-free
  baseline with no degradation-ladder descent;
* ``degraded``  — results are still bit-identical, but at least one task
  fell down the resilience ladder (``serve.degraded > 0``);
* ``escaped``   — the run completed but its results diverge from the
  baseline, or a fault/service error reached the chaos driver: the
  resilience contract is broken;
* ``fatal``     — the harness itself blew up (an exception that is
  neither a fault nor a typed service error).

``escaped``/``fatal`` runs fail the campaign (CLI exit code 6).
Everything is seeded: scenarios are enumerated deterministically,
repetitions shift the fault's ``skip`` so later hits fire, and the
resilience policy's backoff jitter derives from the same seed — a
failing campaign replays bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..observe.session import CompilerSession, current_session, use_session
from ..robust.faults import FAULT_SITES, FaultError, FaultInjector, WORKER_SIDE_SITES
from .resilience import ResiliencePolicy
from .service import CompileService, ServiceError

#: default bench workload: two small kernels keep a run under a second
DEFAULT_KERNELS: Tuple[str, ...] = ("motiv-leaf-reorder", "motiv-trunk-reorder")

#: programs per fuzz workload (two service chunks at CHUNK_SIZE=8)
DEFAULT_FUZZ_PROGRAMS = 16

#: requests per socket workload
SOCKET_REQUESTS = 6

#: counter that witnesses a worker-side fault actually fired (the plan
#: state lives in the worker process; the parent sees only the fallout)
_SITE_EVIDENCE: Dict[str, str] = {
    "serve.worker.crash": "serve.worker_crashes",
    "serve.worker.stall": "serve.wedged_workers",
    "serve.task.error": "serve.errors",
    "serve.pipe.frame": "serve.bad_frames",
    "serve.cache.index": "cache.index_rebuilds",
}


@dataclass(frozen=True)
class ChaosScenario:
    """One (fault site, mode, workload) combination the campaign arms."""

    name: str
    site: str
    mode: str
    workload: str  # "bench" | "fuzz" | "socket"
    #: also arm a one-shot worker crash (sites like ``serve.respawn``
    #: only fire while handling a dead worker)
    with_crash: bool = False
    #: service worker slots; 1 + retries=0 forces the defunct path
    workers: int = 2
    retries: int = 1
    #: give the service a shared cache directory (``serve.cache.index``
    #: only fires inside ``SharedJsonStore.put``)
    with_cache_dir: bool = False


def chaos_scenarios() -> List[ChaosScenario]:
    """The deterministic scenario matrix, covering every service site."""
    return [
        ChaosScenario(
            "crash-bench", "serve.worker.crash", "raise", "bench"
        ),
        ChaosScenario(
            "crash-fuzz", "serve.worker.crash", "raise", "fuzz"
        ),
        ChaosScenario(
            "stall-bench", "serve.worker.stall", "stall", "bench"
        ),
        ChaosScenario(
            "task-error-bench", "serve.task.error", "raise", "bench"
        ),
        ChaosScenario(
            "task-error-fuzz", "serve.task.error", "raise", "fuzz"
        ),
        ChaosScenario(
            "pipe-frame-bench", "serve.pipe.frame", "corrupt", "bench"
        ),
        ChaosScenario(
            "cache-index-bench", "serve.cache.index", "corrupt", "bench",
            with_cache_dir=True,
        ),
        ChaosScenario(
            "socket-disconnect", "serve.socket.disconnect", "raise", "socket"
        ),
        ChaosScenario(
            "respawn-fail-bench", "serve.respawn", "raise", "bench",
            with_crash=True, workers=1, retries=0,
        ),
        ChaosScenario(
            "respawn-fail-fuzz", "serve.respawn", "raise", "fuzz",
            with_crash=True, workers=1, retries=0,
        ),
    ]


@dataclass
class ChaosRun:
    """Outcome of one chaos run."""

    index: int
    scenario: str
    site: str
    mode: str
    workload: str
    status: str  # recovered | degraded | escaped | fatal
    seconds: float
    detail: str = ""
    #: non-zero serve.*/cache.* counters observed during the run
    counters: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "scenario": self.scenario,
            "site": self.site,
            "mode": self.mode,
            "workload": self.workload,
            "status": self.status,
            "seconds": round(self.seconds, 4),
            "detail": self.detail,
            "counters": self.counters,
        }


@dataclass
class ChaosResult:
    """Every run of one campaign plus the pass/fail verdict."""

    seed: int
    budget: int
    runs: List[ChaosRun]
    elapsed_seconds: float

    @property
    def by_status(self) -> Dict[str, int]:
        summary = {"recovered": 0, "degraded": 0, "escaped": 0, "fatal": 0}
        for run in self.runs:
            summary[run.status] = summary.get(run.status, 0) + 1
        return summary

    @property
    def ok(self) -> bool:
        counts = self.by_status
        return counts["escaped"] == 0 and counts["fatal"] == 0

    def summary(self) -> str:
        counts = self.by_status
        status = "ok" if self.ok else "FAILED"
        return (
            f"chaos: {len(self.runs)} run(s) in "
            f"{self.elapsed_seconds:.1f}s: "
            f"{counts['recovered']} recovered, "
            f"{counts['degraded']} degraded, "
            f"{counts['escaped']} escaped, "
            f"{counts['fatal']} fatal [{status}]"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "summary": self.by_status,
            "ok": self.ok,
            "runs": [run.to_json() for run in self.runs],
        }


# -- workloads ----------------------------------------------------------------------


def _fingerprint(document: object) -> str:
    return hashlib.sha256(
        json.dumps(document, sort_keys=True, default=repr).encode("utf-8")
    ).hexdigest()


def _bench_workload(
    session: CompilerSession,
    kernel_names: Sequence[str],
    service: Optional[CompileService],
    policy: Optional[ResiliencePolicy],
) -> str:
    """Run the bench suite; returns a fingerprint of every deterministic
    field (cycles, instruction counts, counters, outputs)."""
    from ..bench.parallel import run_suite_parallel
    from ..kernels.suite import kernel_named

    kernels = [kernel_named(name) for name in kernel_names]
    with use_session(session):
        suite = run_suite_parallel(
            kernels,
            jobs=1 if service is None else 2,
            service=service,
            resilience=policy,
        )
    flat = {
        f"{kernel}/{config}": {
            "cycles": run.cycles,
            "instructions": run.instructions,
            "vectorized_graphs": run.vectorized_graphs,
            "correct": run.correct,
            "counters": run.counters,
            "outputs": run.outputs,
        }
        for kernel, per_config in suite.items()
        for config, run in per_config.items()
    }
    return _fingerprint(flat)


def _fuzz_workload(
    session: CompilerSession,
    seed: int,
    programs: int,
    service: Optional[CompileService],
    policy: Optional[ResiliencePolicy],
) -> str:
    """Run a count-budget fuzz campaign; fingerprints the visited-program
    count, the failing indices, and every ``fuzz.*`` counter."""
    from ..fuzz.campaign import run_campaign

    result = run_campaign(
        budget=str(programs),
        seed=seed,
        session=session,
        service=service,
        resilience=policy,
        reduce_failures=False,
        jobs=None if service is None else 2,
    )
    return _fingerprint({
        "programs": result.programs,
        "failures": [artifact.index for artifact in result.failures],
        "stats": {
            name: value
            for name, value in sorted(result.stats.items())
            if name.startswith("fuzz.")
        },
    })


def _socket_workload(
    session: CompilerSession,
    service: CompileService,
) -> Tuple[str, int]:
    """Drive ping + bench requests through an AF_UNIX socket client.

    Returns (fingerprint, client reconnects).  The server thread fires
    ``serve.socket.disconnect`` through the service session's injector;
    the client's reconnect-and-resend keeps the responses identical.
    """
    from .wire import ServiceClient, SocketServer

    sock_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    path = os.path.join(sock_dir, "serve.sock")
    server = SocketServer(service, path)
    thread = threading.Thread(
        target=server.serve_forever, name="chaos-socket", daemon=True
    )
    thread.start()
    try:
        with ServiceClient(path, max_reconnects=2) as client:
            docs = [{"kind": "ping"} for _ in range(SOCKET_REQUESTS - 1)]
            docs.append({
                "kind": "bench", "kernel": DEFAULT_KERNELS[0],
                "config": "SN-SLP",
            })
            responses = client.batch(docs)
            reconnects = client.reconnects
    finally:
        server.request_shutdown()
        thread.join(timeout=10.0)
    witness = [
        {
            "ok": response.get("ok"),
            "cycles": (
                response.get("result", {}).get("run", {}).get("cycles")
                if isinstance(response.get("result"), dict)
                and "run" in response.get("result", {})
                else None
            ),
            "error": (
                response.get("error", {}).get("type")
                if not response.get("ok")
                else None
            ),
        }
        for response in responses
    ]
    return _fingerprint(witness), reconnects


# -- the campaign -------------------------------------------------------------------


def _chaos_policy(seed: int) -> ResiliencePolicy:
    """Fast-recovery knobs: chaos runs many scenarios, so backoffs and
    breaker cooldowns are shrunk to keep the campaign seconds-scale."""
    return ResiliencePolicy(
        seed=seed,
        max_retries=2,
        backoff_base_seconds=0.005,
        backoff_max_seconds=0.05,
        breaker_failures=2,
        breaker_cooldown_seconds=0.2,
        local_pool_workers=1,
    )


def _execute_scenario(
    scenario: ChaosScenario,
    repetition: int,
    seed: int,
    baselines: Dict[str, str],
    kernel_names: Sequence[str],
    fuzz_programs: int,
) -> Tuple[str, str, Dict[str, float]]:
    """One armed run.  Returns (status, detail, counters)."""
    # Remarks stay disabled: arming them would flip the bench payloads'
    # remark flag relative to the fault-free baseline (remark-armed
    # pairs always run cold), which is exactly the kind of accidental
    # divergence this campaign exists to catch.
    session = CompilerSession(name=f"chaos:{scenario.name}")
    injector = FaultInjector()
    session.faults = injector
    # Repetitions shift which hit fires, so re-visiting a scenario
    # exercises a different task/request instead of replaying run 0.
    skip = repetition

    plans: List[Tuple[str, str, int, bool]] = []
    if scenario.site in WORKER_SIDE_SITES:
        plans.append((scenario.site, scenario.mode, skip, True))
    else:
        injector.arm(scenario.site, scenario.mode, skip=skip, once=True)
    if scenario.with_crash:
        plans.append(("serve.worker.crash", "raise", skip, True))

    cache_dir = (
        tempfile.mkdtemp(prefix="repro-chaos-cache-")
        if scenario.with_cache_dir
        else None
    )
    policy = _chaos_policy(seed)
    stall = scenario.mode == "stall"
    service = CompileService(
        workers=scenario.workers,
        retries=scenario.retries,
        cache_dir=cache_dir,
        session=session,
        name=f"chaos-{scenario.name}",
        fault_plans=plans,
        heartbeat_interval=0.1,
        stall_budget=0.75 if stall else None,
        fault_stall_seconds=30.0 if stall else None,
    )
    reconnects = 0
    try:
        with service:
            if scenario.workload == "bench":
                fingerprint = _bench_workload(
                    session, kernel_names, service, policy
                )
            elif scenario.workload == "fuzz":
                fingerprint = _fuzz_workload(
                    session, seed, fuzz_programs, service, policy
                )
            else:
                fingerprint, reconnects = _socket_workload(session, service)
    except (FaultError, ServiceError) as exc:
        return (
            "escaped",
            f"{type(exc).__name__} reached the chaos driver: {exc}",
            {},
        )
    except Exception as exc:  # noqa: BLE001 - the harness itself broke
        return ("fatal", f"{type(exc).__name__}: {exc}", {})

    counters = {
        name: value
        for name, value in sorted(session.stats.snapshot().items())
        if value
        and (name.startswith("serve.") or name.startswith("cache."))
    }
    if reconnects:
        counters["client.reconnects"] = float(reconnects)
    # Worker-side plans fire in worker *processes*; the parent sees the
    # evidence in the folded counters, not in its own injector.
    evidence = _SITE_EVIDENCE.get(scenario.site)
    if evidence is not None:
        fired = int(counters.get(evidence, 0))
    else:
        fired = sum(plan.fired for plan in injector.armed.values())
    detail = f"fault fired {fired}x" if fired else "fault did not fire"

    if fingerprint != baselines[scenario.workload]:
        return (
            "escaped",
            f"results diverged from the fault-free baseline ({detail})",
            counters,
        )
    if counters.get("serve.degraded", 0):
        descents = int(counters["serve.degraded"])
        return (
            "degraded",
            f"{descents} task(s) descended the ladder; {detail}",
            counters,
        )
    return ("recovered", detail, counters)


def run_chaos_campaign(
    budget: int = 20,
    seed: int = 0,
    kernel_names: Sequence[str] = DEFAULT_KERNELS,
    fuzz_programs: int = DEFAULT_FUZZ_PROGRAMS,
    progress: Optional[Callable[[str], None]] = None,
    session: Optional[CompilerSession] = None,
) -> ChaosResult:
    """Run ``budget`` seeded chaos runs over the scenario matrix.

    Scenarios are visited round-robin (a budget of at least
    ``len(chaos_scenarios())`` covers every service site); repetition
    ``r`` of a scenario arms the fault with ``skip=r`` so a later hit
    fires.  Fault-free baselines are computed once per workload, serial
    and service-less — the ground truth every armed run must match.

    Aggregate ``serve.*``/``cache.*`` counters from every run are folded
    into ``session`` (default: the ambient session), so ``--stats``,
    ``--metrics-out`` and the history trend gate see
    ``serve.degraded``/``serve.retries`` totals for the whole campaign.
    """
    parent = session if session is not None else current_session()
    started = time.perf_counter()
    scenarios = chaos_scenarios()

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    note("computing fault-free baselines (bench, fuzz, socket)")
    parent.log.emit(
        "info", "chaos-start", "chaos campaign started",
        budget=budget, seed=seed, scenarios=len(scenarios),
    )
    baseline_session = CompilerSession(name="chaos-baseline")
    baselines = {
        "bench": _bench_workload(baseline_session, kernel_names, None, None),
        "fuzz": _fuzz_workload(
            baseline_session, seed, fuzz_programs, None, None
        ),
    }
    socket_session = CompilerSession(name="chaos-baseline-socket")
    with CompileService(
        workers=2, session=socket_session, name="chaos-baseline"
    ) as baseline_service:
        baselines["socket"], _ = _socket_workload(
            socket_session, baseline_service
        )

    runs: List[ChaosRun] = []
    for index in range(max(0, budget)):
        scenario = scenarios[index % len(scenarios)]
        repetition = index // len(scenarios)
        run_started = time.perf_counter()
        status, detail, counters = _execute_scenario(
            scenario, repetition, seed, baselines, kernel_names,
            fuzz_programs,
        )
        run = ChaosRun(
            index=index,
            scenario=scenario.name,
            site=scenario.site,
            mode=scenario.mode,
            workload=scenario.workload,
            status=status,
            seconds=time.perf_counter() - run_started,
            detail=detail,
            counters=counters,
        )
        runs.append(run)
        note(
            f"run {index}: {scenario.name} [{scenario.workload}] -> "
            f"{status} ({detail})"
        )
        # Structured twin of the progress line: escaped/fatal runs are
        # contract violations, so they log above the default threshold.
        parent.log.emit(
            "error" if status in ("escaped", "fatal") else "info",
            "chaos-run", detail,
            run=index, scenario=scenario.name, site=scenario.site,
            workload=scenario.workload, status=status,
            seconds=round(run.seconds, 6),
        )
        for name, value in counters.items():
            if name.startswith(("serve.", "cache.")):
                parent.stats.stat(name).add(value)

    result = ChaosResult(
        seed=seed,
        budget=budget,
        runs=runs,
        elapsed_seconds=time.perf_counter() - started,
    )
    parent.log.emit(
        "info", "chaos-done", "chaos campaign finished",
        budget=budget, ok=result.ok,
        escaped=result.by_status["escaped"] + result.by_status["fatal"],
        elapsed=round(result.elapsed_seconds, 6),
    )
    return result
