"""Compilation-as-a-service: persistent warm-worker pool + async front-end.

This package turns the per-task process pools of PR 4 into a long-lived
compile service (ROADMAP Open item 1):

* :mod:`repro.serve.pool` — :class:`~repro.serve.pool.WorkerPool`, a set
  of persistent worker processes, each holding a warm
  :class:`~repro.observe.session.CompilerSession` for its lifetime, with
  health checks, crash→respawn and graceful drain.
* :mod:`repro.serve.tasks` — the task-kind registry executed inside
  workers (bench pairs, raw compiles, fuzz chunks, figure grids) plus
  the shared bench-result cache.
* :mod:`repro.serve.service` — :class:`~repro.serve.service.CompileService`,
  the async submission front-end: request queue + futures, batch submit,
  bounded-queue backpressure, per-request timeout/cancel, sharding by
  kernel, requeue on worker death, and serve.* telemetry.
* :mod:`repro.serve.wire` — the JSONL wire protocol behind ``repro
  serve`` (stdin/stdout or an AF_UNIX socket) and a small client.
* :mod:`repro.serve.resilience` — the client's half of the failure
  contract: bounded retries with deterministic backoff, request hedging,
  and a circuit breaker degrading service traffic down a ladder
  (service → ephemeral local pool → serial in-process).
* :mod:`repro.serve.chaos` — the ``repro chaos`` campaign arming seeded
  service faults against real bench/fuzz traffic and classifying each
  run recovered/degraded/escaped/fatal.

Everything is import-light: submodules import the heavy compiler stack
lazily so ``import repro.serve`` stays cheap for CLI startup.
"""

from __future__ import annotations

__all__ = [
    "CompileService",
    "ServiceError",
    "TaskTimeout",
    "TaskCancelled",
    "WorkerCrashed",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "RemoteTaskError",
    "WorkerPool",
    "ResiliencePolicy",
    "ResilientExecutor",
    "CircuitBreaker",
]

_RESILIENCE_NAMES = ("ResiliencePolicy", "ResilientExecutor", "CircuitBreaker")


def __getattr__(name: str):
    if name in __all__:
        if name == "WorkerPool":
            from .pool import WorkerPool
            return WorkerPool
        if name in _RESILIENCE_NAMES:
            from . import resilience
            return getattr(resilience, name)
        from . import service
        return getattr(service, name)
    raise AttributeError(name)
