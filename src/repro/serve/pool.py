"""Persistent warm-worker pool.

Each worker is a long-lived process holding one warm
:class:`~repro.observe.session.CompilerSession` for its entire lifetime —
the registries, interned opcode tables and kernel builders it touches
stay resident, so task N+1 skips everything task N already paid for.
That is the structural fix for the BENCH_pr6 regression
(``parallel_speedup: 0.867`` at jobs=2): the old
``ProcessPoolExecutor`` path re-paid process spawn and cold-session
setup per *call site*, where this pool pays it once per service.

Transport is a pair of OS pipes per worker (parent→worker tasks,
worker→parent results) with explicit pickling, so the parent can time
marshalling honestly (the ``parallel.marshal_seconds`` satellite fix
lives in :mod:`repro.serve.service`, which does the ``pickle.dumps``
itself before handing bytes to this pool).

Protocol (all tuples, pickled):

* parent → worker: ``(task_id, kind, payload_bytes)`` or the ``None``
  sentinel meaning *drain and exit* — the worker finishes everything
  already in its pipe first, then acknowledges and leaves.
* worker → parent: ``(task_id, status, data_bytes, worker_seconds,
  stats_delta)`` where ``status`` is ``"ok"`` or ``"error"``,
  ``data_bytes`` pickles the result (or ``(exc_type_name, message)``)
  and ``stats_delta`` is the warm session's counter delta for the task
  (cache hits etc.), folded into the service session by the parent —
  never into task results, so bit-identity with serial runs holds.

Crash handling: the parent polls ``Process.is_alive()`` (pipe EOF is
unreliable under ``fork`` because later workers inherit earlier workers'
descriptors); a dead worker's buffered results are drained, the worker
is respawned with fresh pipes under the same slot, and the service
requeues whatever was in flight.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection
from typing import Dict, List, Optional, Sequence, Tuple

#: wire tuples (see module docstring)
TaskEnvelope = Tuple[int, str, bytes]
ResultEnvelope = Tuple[int, str, bytes, float, Dict[str, float]]


def _worker_main(
    index: int,
    task_recv: connection.Connection,
    result_send: connection.Connection,
    cache_dir: Optional[str],
    cache_entries: Optional[int],
    pool_name: str,
) -> None:
    """Worker loop: one warm session, tasks until sentinel or EOF."""
    # Imports happen here, inside the child, so the parent's submit path
    # never blocks on them and the warm cost is paid exactly once.
    from ..observe.session import CompilerSession, use_session
    from .tasks import WorkerState, run_task

    session = CompilerSession(name=f"{pool_name}-worker:{index}")
    state = WorkerState(
        index=index,
        session=session,
        cache_dir=cache_dir,
        cache_entries=cache_entries,
    )
    with use_session(session):
        while True:
            try:
                envelope = task_recv.recv()
            except (EOFError, OSError):
                break
            if envelope is None:  # drain sentinel
                try:
                    result_send.send((-1, "bye", b"", 0.0, {}))
                except (OSError, BrokenPipeError):
                    pass
                break
            task_id, kind, payload_bytes = envelope
            started = time.perf_counter()
            before = session.stats.snapshot()
            try:
                payload = pickle.loads(payload_bytes)
                result = run_task(kind, payload, state)
                status, data = "ok", pickle.dumps(result, protocol=-1)
            except BaseException as exc:  # noqa: BLE001 - ship, don't die
                status = "error"
                data = pickle.dumps(
                    (type(exc).__name__, str(exc)), protocol=-1
                )
            worker_seconds = time.perf_counter() - started
            after = session.stats.snapshot()
            delta = {
                name: after[name] - before.get(name, 0.0)
                for name in after
                if after[name] != before.get(name, 0.0)
            }
            state.tasks_done += 1
            try:
                result_send.send(
                    (task_id, status, data, worker_seconds, delta)
                )
            except (OSError, BrokenPipeError):
                break


@dataclass
class Worker:
    """One pool slot: process + its two parent-side pipe ends."""

    index: int
    generation: int
    process: Process
    task_send: connection.Connection
    result_recv: connection.Connection
    inflight: int = 0
    tasks_sent: int = 0
    busy_seconds: float = 0.0
    started_at: float = field(default_factory=time.perf_counter)

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """A fixed-size set of persistent workers with respawn-on-death.

    The pool only moves bytes; scheduling (sharding, backpressure,
    timeouts, requeue) lives in
    :class:`~repro.serve.service.CompileService`.
    """

    def __init__(
        self,
        size: int,
        cache_dir: Optional[str] = None,
        cache_entries: Optional[int] = None,
        name: str = "serve",
    ) -> None:
        self.size = max(1, size)
        self.cache_dir = cache_dir
        self.cache_entries = cache_entries
        self.name = name
        self.workers: List[Worker] = []
        self.respawns = 0
        self._started = False

    # -- lifecycle --

    def start(self) -> float:
        """Spawn all workers; returns the spawn wall seconds."""
        started = time.perf_counter()
        for index in range(self.size):
            self.workers.append(self._spawn(index, generation=0))
        self._started = True
        return time.perf_counter() - started

    def _spawn(self, index: int, generation: int) -> Worker:
        task_recv, task_send = Pipe(duplex=False)
        result_recv, result_send = Pipe(duplex=False)
        process = Process(
            target=_worker_main,
            args=(
                index, task_recv, result_send,
                self.cache_dir, self.cache_entries, self.name,
            ),
            name=f"{self.name}-worker-{index}.{generation}",
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so they are not leaked.
        task_recv.close()
        result_send.close()
        return Worker(
            index=index,
            generation=generation,
            process=process,
            task_send=task_send,
            result_recv=result_recv,
        )

    def respawn(self, index: int) -> Worker:
        """Replace a (dead or wedged) worker with a fresh process."""
        old = self.workers[index]
        if old.process.is_alive():
            old.process.terminate()
            old.process.join(timeout=2.0)
            if old.process.is_alive():  # pragma: no cover - stubborn child
                old.process.kill()
                old.process.join(timeout=2.0)
        for conn in (old.task_send, old.result_recv):
            try:
                conn.close()
            except OSError:
                pass
        fresh = self._spawn(index, generation=old.generation + 1)
        self.workers[index] = fresh
        self.respawns += 1
        return fresh

    # -- I/O --

    def send(self, index: int, task_id: int, kind: str, payload: bytes) -> None:
        worker = self.workers[index]
        worker.task_send.send((task_id, kind, payload))
        worker.inflight += 1
        worker.tasks_sent += 1

    def wait_any(
        self,
        timeout: Optional[float],
        extra: Sequence[object] = (),
    ) -> Tuple[List[Tuple[int, ResultEnvelope]], List[object], List[int]]:
        """Block up to ``timeout`` for results, wake fds, or dead workers.

        Returns ``(messages, ready_extras, dead_indices)`` where
        ``messages`` are ``(worker_index, envelope)`` pairs in arrival
        order and ``dead_indices`` lists workers found dead (after their
        buffered results were drained).
        """
        conn_to_index = {w.result_recv: w.index for w in self.workers}
        ready = connection.wait(
            list(conn_to_index) + list(extra), timeout=timeout
        )
        messages: List[Tuple[int, ResultEnvelope]] = []
        ready_extras: List[object] = []
        for item in ready:
            if item in conn_to_index:
                index = conn_to_index[item]
                try:
                    messages.append((index, item.recv()))
                except (EOFError, OSError):
                    pass  # dead worker: handled by the liveness scan below
            else:
                ready_extras.append(item)
        dead: List[int] = []
        for worker in self.workers:
            if worker.alive():
                continue
            # Drain anything the worker managed to send before dying.
            try:
                while worker.result_recv.poll(0):
                    messages.append((worker.index, worker.result_recv.recv()))
            except (EOFError, OSError):
                pass
            dead.append(worker.index)
        return messages, ready_extras, dead

    # -- shutdown --

    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Send drain sentinels (graceful) or terminate, then reap."""
        if not self._started:
            return
        if graceful:
            for worker in self.workers:
                try:
                    worker.task_send.send(None)
                except (OSError, BrokenPipeError):
                    pass
            deadline = time.perf_counter() + timeout
            for worker in self.workers:
                worker.process.join(
                    timeout=max(0.1, deadline - time.perf_counter())
                )
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
            for conn in (worker.task_send, worker.result_recv):
                try:
                    conn.close()
                except OSError:
                    pass
        self.workers = []
        self._started = False

    def alive_count(self) -> int:
        return sum(1 for worker in self.workers if worker.alive())
