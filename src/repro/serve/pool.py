"""Persistent warm-worker pool.

Each worker is a long-lived process holding one warm
:class:`~repro.observe.session.CompilerSession` for its entire lifetime —
the registries, interned opcode tables and kernel builders it touches
stay resident, so task N+1 skips everything task N already paid for.
That is the structural fix for the BENCH_pr6 regression
(``parallel_speedup: 0.867`` at jobs=2): the old
``ProcessPoolExecutor`` path re-paid process spawn and cold-session
setup per *call site*, where this pool pays it once per service.

Transport is a pair of OS pipes per worker (parent→worker tasks,
worker→parent results) with explicit pickling, so the parent can time
marshalling honestly (the ``parallel.marshal_seconds`` satellite fix
lives in :mod:`repro.serve.service`, which does the ``pickle.dumps``
itself before handing bytes to this pool).

Protocol (all tuples, pickled):

* parent → worker: ``(task_id, kind, payload_bytes, trace)`` or the
  ``None`` sentinel meaning *drain and exit* — the worker finishes
  everything already in its pipe first, then acknowledges and leaves.
  ``trace`` is ``None`` (tracing off) or the requesting context's
  :meth:`~repro.observe.context.TraceContext.to_wire` triple
  ``(trace_id, span_id, attempt)``.
* worker → parent: ``(task_id, status, data_bytes, worker_seconds,
  stats_delta, spans)`` where ``status`` is ``"ok"`` or ``"error"``,
  ``data_bytes`` pickles the result (or ``(exc_type_name, message)``)
  and ``stats_delta`` is the warm session's counter delta for the task
  (cache hits etc.), folded into the service session by the parent —
  never into task results, so bit-identity with serial runs holds.
  ``spans`` is the task's captured span forest (empty when the task
  carried no trace): :class:`~repro.observe.trace.TraceEvent` objects
  rooted at a ``worker:task`` span whose ``parent_id`` is the request
  span shipped in ``trace``, which is what lets the parent assemble one
  causally-linked tree per request across process boundaries.

Crash handling: the parent polls ``Process.is_alive()`` (pipe EOF is
unreliable under ``fork`` because later workers inherit earlier workers'
descriptors); a dead worker's buffered results are drained, the worker
is respawned with fresh pipes under the same slot, and the service
requeues whatever was in flight.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: wire tuples (see module docstring)
TaskEnvelope = Tuple[int, str, bytes, Optional[Tuple[str, str, int]]]
ResultEnvelope = Tuple[int, str, bytes, float, Dict[str, float], List[object]]

#: pseudo task id of periodic worker heartbeat envelopes
HEARTBEAT_ID = -3

#: one armed fault shipped to generation-0 workers: (site, mode, skip, once)
FaultPlanSpec = Tuple[str, str, int, bool]

#: exit status of a worker killed by an armed ``serve.worker.crash``
CRASH_EXIT_CODE = 23


def _worker_main(
    index: int,
    generation: int,
    task_recv: connection.Connection,
    result_send: connection.Connection,
    cache_dir: Optional[str],
    cache_entries: Optional[int],
    pool_name: str,
    fault_plans: Sequence[FaultPlanSpec],
    heartbeat_interval: Optional[float],
    fault_stall_seconds: Optional[float],
) -> None:
    """Worker loop: one warm session, tasks until sentinel or EOF."""
    # Imports happen here, inside the child, so the parent's submit path
    # never blocks on them and the warm cost is paid exactly once.
    from ..observe.session import CompilerSession, use_session
    from .tasks import WorkerState, run_task

    session = CompilerSession(name=f"{pool_name}-worker:{index}")
    faults = None
    fault_error: type = Exception
    if fault_plans and generation == 0:
        # Seeded chaos plans apply only to first-generation workers: a
        # respawned worker models a healthy replacement, so an injected
        # crash/stall cannot loop forever through the respawn path.
        from ..robust.faults import FaultError, FaultInjector

        faults = FaultInjector()
        fault_error = FaultError
        if fault_stall_seconds is not None:
            faults.stall_seconds = fault_stall_seconds
        for site, mode, skip, once in fault_plans:
            faults.arm(site, mode, skip=skip, once=once)
        session.faults = faults
    state = WorkerState(
        index=index,
        session=session,
        cache_dir=cache_dir,
        cache_entries=cache_entries,
        generation=generation,
    )
    # The heartbeat thread shares the result pipe with task replies;
    # Connection.send is not atomic across threads, so all sends take
    # this lock.
    send_lock = threading.Lock()

    def _send(envelope: ResultEnvelope) -> None:
        with send_lock:
            result_send.send(envelope)

    if heartbeat_interval is not None:

        def _beat() -> None:
            while True:
                time.sleep(heartbeat_interval)
                try:
                    _send((HEARTBEAT_ID, "hb", b"", 0.0, {}, []))
                except (OSError, BrokenPipeError, ValueError):
                    break

        threading.Thread(
            target=_beat, name=f"{pool_name}-hb-{index}", daemon=True
        ).start()

    with use_session(session):
        while True:
            try:
                envelope = task_recv.recv()
            except (EOFError, OSError):
                break
            if envelope is None:  # drain sentinel
                try:
                    _send((-1, "bye", b"", 0.0, {}, []))
                except (OSError, BrokenPipeError):
                    pass
                break
            task_id, kind, payload_bytes, trace = envelope
            # Proactive progress beat: the parent's wedged-worker
            # detector measures stall time from this marker, so a task
            # that never completes is caught before its deadline.
            try:
                _send((task_id, "begin", b"", 0.0, {}, []))
            except (OSError, BrokenPipeError):
                break
            if faults is not None:
                try:
                    faults.fire("serve.worker.crash")
                except fault_error:
                    os._exit(CRASH_EXIT_CODE)
                faults.fire("serve.worker.stall")
            started = time.perf_counter()
            before = session.stats.snapshot()
            spans: List[object] = []
            try:
                payload = pickle.loads(payload_bytes)
                if faults is not None:
                    faults.fire("serve.task.error")
                if trace is None:
                    result = run_task(kind, payload, state)
                else:
                    result = _run_traced(
                        state, generation, task_id, kind, payload,
                        trace, spans,
                    )
                status, data = "ok", pickle.dumps(result, protocol=-1)
            except BaseException as exc:  # noqa: BLE001 - ship, don't die
                status = "error"
                data = pickle.dumps(
                    (type(exc).__name__, str(exc)), protocol=-1
                )
            worker_seconds = time.perf_counter() - started
            after = session.stats.snapshot()
            delta = {
                name: after[name] - before.get(name, 0.0)
                for name in after
                if after[name] != before.get(name, 0.0)
            }
            state.tasks_done += 1
            garbled = False
            if faults is not None:

                def _garble() -> None:
                    nonlocal garbled
                    garbled = True
                    try:  # a structurally bogus frame, not a result
                        _send(("garbage-frame", index))  # type: ignore[arg-type]
                    except (OSError, BrokenPipeError):
                        pass

                faults.fire("serve.pipe.frame", corrupt=_garble)
            if garbled:
                continue
            try:
                _send((task_id, status, data, worker_seconds, delta, spans))
            except (OSError, BrokenPipeError):
                break


def _run_traced(
    state: object,
    generation: int,
    task_id: int,
    kind: str,
    payload: object,
    raw_trace: Tuple[str, str, int],
    spans_out: List[object],
) -> object:
    """Run one task under its request's bound trace context.

    Opens a ``worker:task`` root span parented to the request span the
    parent shipped in the envelope, installs a derived ambient context so
    compile-phase spans opened by the task nest under that root, and
    captures the resulting span forest into ``spans_out`` — also when
    the task raises (the root span closes during propagation), so error
    replies still carry their spans.  The warm session's tracer is
    force-enabled only for the scope of the task; spans are moved out of
    the worker-local tracer so repeated tasks never accumulate state.
    """
    from ..observe.context import TraceContext, use_trace_context
    from .tasks import run_task

    session = state.session  # type: ignore[attr-defined]
    context = TraceContext.from_wire(raw_trace)
    tracer = session.tracer
    mark = len(tracer.events)
    was_enabled = tracer.enabled
    tracer.enabled = True
    try:
        with tracer.bind(context):
            with tracer.span(
                "worker:task",
                kind=kind,
                task=task_id,
                worker=state.index,  # type: ignore[attr-defined]
                attempt=context.attempt,
            ) as root:
                inner = context.child(root.span_id)
                with use_trace_context(inner):
                    return run_task(kind, payload, state)
    finally:
        pid = os.getpid()
        captured = tracer.events[mark:]
        del tracer.events[mark:]
        tracer.enabled = was_enabled
        for event in captured:
            event.pid = pid
            event.generation = generation
        spans_out.extend(captured)


@dataclass
class Worker:
    """One pool slot: process + its two parent-side pipe ends."""

    index: int
    generation: int
    process: Process
    task_send: connection.Connection
    result_recv: connection.Connection
    inflight: int = 0
    tasks_sent: int = 0
    busy_seconds: float = 0.0
    started_at: float = field(default_factory=time.perf_counter)
    #: wall stamp of the last envelope seen from this worker (any kind —
    #: results, begin markers and heartbeats all prove liveness)
    last_beat: float = field(default_factory=time.perf_counter)
    #: set once the wedged-worker detector decided to kill this process,
    #: so one stall is counted (and terminated) exactly once
    wedged: bool = False

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """A fixed-size set of persistent workers with respawn-on-death.

    The pool only moves bytes; scheduling (sharding, backpressure,
    timeouts, requeue) lives in
    :class:`~repro.serve.service.CompileService`.
    """

    def __init__(
        self,
        size: int,
        cache_dir: Optional[str] = None,
        cache_entries: Optional[int] = None,
        name: str = "serve",
        fault_plans: Sequence[FaultPlanSpec] = (),
        heartbeat_interval: Optional[float] = None,
        fault_stall_seconds: Optional[float] = None,
    ) -> None:
        self.size = max(1, size)
        self.cache_dir = cache_dir
        self.cache_entries = cache_entries
        self.name = name
        self.fault_plans = tuple(fault_plans)
        self.heartbeat_interval = heartbeat_interval
        self.fault_stall_seconds = fault_stall_seconds
        #: parent-side injector consulted at respawn (``serve.respawn``);
        #: the service binds its session's injector here before start
        self.faults = None
        self.workers: List[Worker] = []
        #: slots whose respawn failed — permanently out of rotation
        self.defunct: Set[int] = set()
        self.respawns = 0
        self.respawn_failures = 0
        self._started = False

    # -- lifecycle --

    def start(self) -> float:
        """Spawn all workers; returns the spawn wall seconds."""
        started = time.perf_counter()
        for index in range(self.size):
            self.workers.append(self._spawn(index, generation=0))
        self._started = True
        return time.perf_counter() - started

    def _spawn(self, index: int, generation: int) -> Worker:
        task_recv, task_send = Pipe(duplex=False)
        result_recv, result_send = Pipe(duplex=False)
        process = Process(
            target=_worker_main,
            args=(
                index, generation, task_recv, result_send,
                self.cache_dir, self.cache_entries, self.name,
                self.fault_plans, self.heartbeat_interval,
                self.fault_stall_seconds,
            ),
            name=f"{self.name}-worker-{index}.{generation}",
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so they are not leaked.
        task_recv.close()
        result_send.close()
        return Worker(
            index=index,
            generation=generation,
            process=process,
            task_send=task_send,
            result_recv=result_recv,
        )

    def respawn(self, index: int) -> Worker:
        """Replace a (dead or wedged) worker with a fresh process.

        Raises whatever the armed ``serve.respawn`` fault injects; the
        caller (the service) marks the slot defunct via
        :meth:`mark_defunct` — a failed respawn permanently reduces
        capacity rather than retrying into the same failure.
        """
        if self.faults is not None:
            self.faults.fire("serve.respawn")
        old = self.workers[index]
        if old.process.is_alive():
            old.process.terminate()
            old.process.join(timeout=2.0)
            if old.process.is_alive():  # pragma: no cover - stubborn child
                old.process.kill()
                old.process.join(timeout=2.0)
        for conn in (old.task_send, old.result_recv):
            try:
                conn.close()
            except OSError:
                pass
        fresh = self._spawn(index, generation=old.generation + 1)
        self.workers[index] = fresh
        self.respawns += 1
        return fresh

    def mark_defunct(self, index: int) -> None:
        """Take a slot permanently out of rotation (failed respawn)."""
        self.defunct.add(index)
        self.respawn_failures += 1
        worker = self.workers[index]
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
            worker.process.join(timeout=2.0)
        for conn in (worker.task_send, worker.result_recv):
            try:
                conn.close()
            except OSError:
                pass

    def live_indices(self) -> List[int]:
        """Slot indices still in rotation (not defunct)."""
        return [w.index for w in self.workers if w.index not in self.defunct]

    # -- I/O --

    def send(
        self,
        index: int,
        task_id: int,
        kind: str,
        payload: bytes,
        trace: Optional[Tuple[str, str, int]] = None,
    ) -> None:
        worker = self.workers[index]
        worker.task_send.send((task_id, kind, payload, trace))
        worker.inflight += 1
        worker.tasks_sent += 1

    def wait_any(
        self,
        timeout: Optional[float],
        extra: Sequence[object] = (),
    ) -> Tuple[List[Tuple[int, ResultEnvelope]], List[object], List[int]]:
        """Block up to ``timeout`` for results, wake fds, or dead workers.

        Returns ``(messages, ready_extras, dead_indices)`` where
        ``messages`` are ``(worker_index, envelope)`` pairs in arrival
        order and ``dead_indices`` lists workers found dead (after their
        buffered results were drained).
        """
        conn_to_index = {
            w.result_recv: w.index
            for w in self.workers
            if w.index not in self.defunct
        }
        ready = connection.wait(
            list(conn_to_index) + list(extra), timeout=timeout
        )
        messages: List[Tuple[int, ResultEnvelope]] = []
        ready_extras: List[object] = []
        for item in ready:
            if item in conn_to_index:
                index = conn_to_index[item]
                try:
                    messages.append((index, item.recv()))
                except (EOFError, OSError):
                    pass  # dead worker: handled by the liveness scan below
                except Exception:  # garbage on the pipe: a bad frame
                    messages.append((index, ("unpicklable-frame",)))
            else:
                ready_extras.append(item)
        dead: List[int] = []
        for worker in self.workers:
            if worker.index in self.defunct or worker.alive():
                continue
            # Drain anything the worker managed to send before dying.
            try:
                while worker.result_recv.poll(0):
                    messages.append((worker.index, worker.result_recv.recv()))
            except (EOFError, OSError):
                pass
            dead.append(worker.index)
        return messages, ready_extras, dead

    # -- shutdown --

    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Send drain sentinels (graceful) or terminate, then reap."""
        if not self._started:
            return
        if graceful:
            for worker in self.workers:
                if worker.index in self.defunct:
                    continue
                try:
                    worker.task_send.send(None)
                except (OSError, BrokenPipeError, ValueError):
                    pass
            deadline = time.perf_counter() + timeout
            for worker in self.workers:
                worker.process.join(
                    timeout=max(0.1, deadline - time.perf_counter())
                )
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
            for conn in (worker.task_send, worker.result_recv):
                try:
                    conn.close()
                except OSError:
                    pass
        self.workers = []
        self._started = False

    def alive_count(self) -> int:
        return sum(1 for worker in self.workers if worker.alive())
