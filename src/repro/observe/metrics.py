"""Session-scoped metrics: gauges, timers and fixed-bucket histograms.

Counters (:mod:`repro.observe.stats`) answer "how many times did X
happen"; this module answers "how is X *distributed* and what is its
latest level".  A :class:`MetricsRegistry` belongs to a
:class:`~repro.observe.session.CompilerSession` and collects

* **gauges** — last-written scalar values (``cache.hit_rate``,
  ``bench.geomean_speedup.SN-SLP``);
* **histograms** — fixed-bucket distributions with p50/p90/p99
  summaries (``phase.vectorize.seconds``, ``bench.kernel.cycles``);
* **timers** — context managers that observe elapsed wall seconds into
  a histogram, mirroring the tracer's span API.

Metrics are **off by default** and follow the same contract as the
tracer and decision journal: while disabled, every recording entry
point (:meth:`MetricsRegistry.gauge`, :meth:`~MetricsRegistry.observe`,
:meth:`~MetricsRegistry.timer`) costs one branch and touches nothing,
so a metrics-off run is bit-identical to a build without the
instrumentation.  Metric observations never write into the statistic
registry — counters stay counters.

``derive()``d child sessions *share* the parent's registry (like the
tracer), so child observations accumulate into the parent's histograms
by construction.  Parallel workers run in separate processes and ship
their registry back in the worker capture; :meth:`MetricsRegistry.merge`
folds those in deterministically (payload order).

:meth:`MetricsRegistry.render_exposition` emits Prometheus text format
(the surface a future ``repro serve`` endpoint would scrape), rendering
the session's statistic counters alongside the gauges and histograms.
"""

from __future__ import annotations

import re
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .stats import StatsRegistry


def _default_bounds() -> Tuple[float, ...]:
    """A wide 1-3 exponential ladder (1e-7 .. 5e7) serving both
    sub-microsecond phase times and multi-million cycle counts."""
    bounds: List[float] = []
    for exponent in range(-7, 8):
        for mantissa in (1.0, 3.0):
            bounds.append(mantissa * 10.0 ** exponent)
    return tuple(bounds)


DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = _default_bounds()


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Exact linear-interpolated percentile of ``values`` (q in 0..100).

    Used where the fixed-bucket approximation is too coarse — e.g. the
    compile-time p50/p99 figures committed in BENCH files.
    """
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] + (data[hi] - data[lo]) * frac


class Histogram:
    """A fixed-bucket histogram with min/max/sum tracking.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge.  Percentiles are estimated by
    cumulative-count crossing with linear interpolation inside the
    bucket, clamped to the observed min/max (so a single-value histogram
    reports that value exactly).
    """

    def __init__(
        self,
        name: str,
        description: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> None:
        self.name = name
        self.description = description
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose upper edge >= value
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in 0..100); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        target = (q / 100.0) * self.count
        cumulative = 0
        lower_edge = self.vmin
        for index, bucket_count in enumerate(self.counts):
            upper = (
                self.bounds[index] if index < len(self.bounds) else self.vmax
            )
            if bucket_count:
                lo = max(lower_edge, self.vmin)
                hi = min(upper, self.vmax)
                if hi < lo:
                    hi = lo
                if cumulative + bucket_count >= target:
                    frac = (target - cumulative) / bucket_count
                    return lo + (hi - lo) * frac
                cumulative += bucket_count
            if index < len(self.bounds):
                lower_edge = self.bounds[index]
        return self.vmax

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram in place."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds mismatch on merge"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.vmin = min(self.vmin, other.vmin)
            self.vmax = max(self.vmax, other.vmax)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count})"


class _NullTimer:
    """Shared no-op context manager returned while metrics are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """A live timer; created only when the registry is enabled.

    Records into the histogram in ``__exit__`` even when the timed block
    raises — a failing phase still accounts for its wall time.
    """

    __slots__ = ("histogram", "start")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.histogram.observe(time.perf_counter() - self.start)


class MetricsRegistry:
    """Gauges + histograms + timers for one session.

    Disabled by default; every recording entry point tests
    :attr:`enabled` first and returns immediately, keeping metrics-off
    runs bit-identical (the journal/tracer contract).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._descriptions: Dict[str, str] = {}

    # -- recording ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def gauge(self, name: str, value: float, description: str = "") -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)
        if description:
            self._descriptions.setdefault(name, description)

    def observe(
        self,
        name: str,
        value: float,
        description: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> None:
        """Record one sample into histogram ``name``."""
        if not self.enabled:
            return
        self.histogram(name, description, bounds).observe(value)

    def timer(self, name: str, description: str = ""):
        """Context manager observing elapsed wall seconds into ``name``.

        Returns a shared no-op context manager while disabled — one
        branch, nothing allocated (the tracer-span contract).
        """
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.histogram(name, description))

    def histogram(
        self,
        name: str,
        description: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        existing = self.histograms.get(name)
        if existing is None:
            existing = Histogram(name, description, bounds)
            self.histograms[name] = existing
        elif description and not existing.description:
            existing.description = description
        return existing

    def clear(self) -> None:
        self.gauges.clear()
        self.histograms.clear()

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. a parallel worker's) into this one.

        Histograms merge bucket-wise; gauges take the other registry's
        value (last-merged wins — callers merge in payload order, so the
        result is deterministic).
        """
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histogram(name, histogram.description, histogram.bounds)
                self.histograms[name].merge(histogram)
            else:
                mine.merge(histogram)

    def summary(self) -> Dict[str, object]:
        """JSON-ready snapshot: gauges verbatim, histograms summarized."""
        return {
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }

    def flat_summary(self) -> Dict[str, float]:
        """One flat ``{name: value}`` map — the shape the run-history
        store records: gauges as-is, histograms as ``<name>.p50`` /
        ``.p90`` / ``.p99`` / ``.count`` / ``.sum``."""
        flat: Dict[str, float] = dict(self.gauges)
        for name, histogram in self.histograms.items():
            summary = histogram.summary()
            for key in ("p50", "p90", "p99", "count", "sum"):
                flat[f"{name}.{key}"] = float(summary[key])
        return flat

    # -- Prometheus text exposition ----------------------------------------

    def render_exposition(self, stats: Optional[StatsRegistry] = None) -> str:
        """Prometheus text format: counters (from ``stats``), gauges and
        histograms, all under a ``repro_`` prefix with sanitized names.

        Every exposition leads with a ``repro_build_info`` info-style
        gauge (value 1, identity in labels — the node-exporter idiom) so
        scraped series can always be joined back to the exact source
        fingerprint, active engine and bench-task format that produced
        them.
        """
        lines: List[str] = list(_build_info_lines())
        if stats is not None:
            for name in stats.names():
                stat = stats.stat(name)
                metric = f"{_sanitize(name)}_total"
                if stat.description:
                    lines.append(f"# HELP {metric} {stat.description}")
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {_fmt(stat.value)}")
        for name in sorted(self.gauges):
            metric = _sanitize(name)
            description = self._descriptions.get(name, "")
            if description:
                lines.append(f"# HELP {metric} {description}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(self.gauges[name])}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            metric = _sanitize(name)
            if histogram.description:
                lines.append(f"# HELP {metric} {histogram.description}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for index, bound in enumerate(histogram.bounds):
                cumulative += histogram.counts[index]
                if histogram.counts[index] or cumulative:
                    lines.append(
                        f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                    )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {_fmt(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"

    def write_exposition(
        self, path: str, stats: Optional[StatsRegistry] = None
    ) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_exposition(stats))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return (
            f"<MetricsRegistry {state}: {len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms>"
        )


def _build_info_lines() -> List[str]:
    """The ``repro_build_info`` identity gauge, node-exporter style.

    The providers live in packages that import ``repro.observe`` (the
    vectorizer cache for the source fingerprint and format version, the
    interpreter for the active engine), so they are imported lazily here
    — at render time the cycle has long since resolved.  If an embedder
    renders an exposition with those packages unavailable, the gauge is
    simply omitted rather than failing the scrape.
    """
    try:
        from ..interp.engine import default_engine
        from ..vectorizer.cache import CACHE_FORMAT, repro_source_fingerprint
    except ImportError:  # pragma: no cover - partial installs only
        return []
    return [
        "# HELP repro_build_info source fingerprint, active engine and "
        "bench-task format of this build",
        "# TYPE repro_build_info gauge",
        "repro_build_info{"
        f'engine="{default_engine()}",'
        f'fingerprint="{repro_source_fingerprint()}",'
        f'format="{CACHE_FORMAT}"'
        "} 1",
    ]


_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name: ``repro_`` prefix, bad chars -> _."""
    return "repro_" + _SANITIZE_RE.sub("_", name)


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return format(value, "g")
