"""Leveled structured event log — JSONL service/ops telemetry.

Counters, remarks and the decision journal describe the *compiler*; this
stream describes the *service*: worker crashes and respawns, requeues,
wedge kills, retries and degradation-ladder descents, breaker trips,
slow requests, chaos-run classifications.  Those paths used to narrate
through ad-hoc stderr prints and progress callbacks; the event log gives
them one structured, machine-readable channel (``repro serve --log``,
``repro bench --log`` …) that a later aggregation step can actually
consume.

Each :class:`LogEvent` carries a severity level (``debug`` < ``info`` <
``warn`` < ``error``), a short machine-matchable ``event`` name, a human
message, free-form args, a wall-clock timestamp, and — the point of this
PR — the ``trace_id`` of the request it belongs to, so ``grep trace_id
service.log`` reconstructs one request's whole story across retries and
ladder rungs.

The cost contract matches the journal and tracer exactly:
:meth:`EventLog.emit` is a single branch while disabled, so logging-off
runs are bit-identical to a build without the instrumentation.  Events
below the configured threshold level are dropped at emit time.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .stats import STAT

STAT_LOG_EVENTS = STAT("log.events-recorded", "structured log events recorded")

#: severity ladder, least to most severe
LOG_LEVELS = ("debug", "info", "warn", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LOG_LEVELS)}


@dataclass
class LogEvent:
    """One structured log record."""

    level: str  # one of LOG_LEVELS
    event: str  # short machine-matchable name, e.g. "worker-crash"
    message: str
    #: the originating request's trace id ("" for service-level events)
    trace_id: str = ""
    #: wall-clock epoch seconds at emit time
    ts: float = 0.0
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "level": self.level,
            "event": self.event,
            "message": self.message,
            "ts": round(self.ts, 6),
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "LogEvent":
        return cls(
            level=str(record["level"]),
            event=str(record["event"]),
            message=str(record["message"]),
            trace_id=str(record.get("trace_id", "")),
            ts=float(record.get("ts", 0.0)),
            args=dict(record.get("args", {})),  # type: ignore[arg-type]
        )


class EventLog:
    """Accumulates :class:`LogEvent`\\ s for one session.

    Disabled by default; :meth:`emit` tests :attr:`enabled` first and
    returns immediately, keeping logging-off runs bit-identical (the
    journal/tracer/metrics contract).  ``level`` is the threshold:
    events ranked below it are dropped even while enabled.
    """

    def __init__(self, enabled: bool = False, level: str = "info") -> None:
        self.enabled = enabled
        self.level = level
        self.events: List[LogEvent] = []

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        level: str,
        event: str,
        message: str,
        trace_id: str = "",
        **args: object,
    ) -> Optional[LogEvent]:
        if not self.enabled:
            return None
        assert level in _LEVEL_RANK, level
        if _LEVEL_RANK[level] < _LEVEL_RANK.get(self.level, 0):
            return None
        record = LogEvent(
            level=level,
            event=event,
            message=message,
            trace_id=trace_id,
            ts=time.time(),
            args=args,
        )
        self.events.append(record)
        STAT_LOG_EVENTS.add()
        return record

    # -- lifecycle ---------------------------------------------------------

    def enable(self, level: Optional[str] = None) -> None:
        if level is not None:
            assert level in _LEVEL_RANK, level
            self.level = level
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()

    # -- queries -----------------------------------------------------------

    def of_level(self, level: str) -> List[LogEvent]:
        """Events at ``level`` severity or above."""
        floor = _LEVEL_RANK[level]
        return [
            event for event in self.events
            if _LEVEL_RANK.get(event.level, 0) >= floor
        ]

    def of_event(self, name: str) -> List[LogEvent]:
        return [event for event in self.events if event.event == name]

    def for_trace(self, trace_id: str) -> List[LogEvent]:
        return [event for event in self.events if event.trace_id == trace_id]

    # -- JSONL serialization ----------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self.events
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())


def load_event_log(path: str) -> List[LogEvent]:
    """Parse an event-log JSONL file back into :class:`LogEvent` objects."""
    events: List[LogEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(LogEvent.from_dict(json.loads(line)))
    return events
