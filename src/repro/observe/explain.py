"""``repro explain``: per-graph narratives of the vectorizer's decisions.

Compiles a module with the decision journal (and remark collector) armed,
then joins three data sources into one :class:`GraphStory` per attempted
graph:

* the **journal** (:mod:`repro.observe.journal`) supplies the ordered
  decision events — seed, Super-Node formation, look-ahead picks, APO
  reorders, cost verdict;
* the **remarks** stream supplies the pass-level passed/missed messages
  for the same (function, block);
* the **GraphReport** supplies the aggregate view (node/gather counts,
  recorded Multi-/Super-Nodes) the bench figures are built from.

The headline of each story is the arrow narrative the CLI prints::

    seeded from 4 adjacent stores -> look-ahead picked {b3, b1, b0, b2}
    at operand 1 (score 7 vs 3) -> trunk swap legalized lane 2 ->
    cost -6.0 -> vectorized

Like :mod:`repro.observe.dot`, this module must not import
``repro.vectorizer`` at module scope (the vectorizer imports
``repro.observe`` for ``STAT``); the one place it needs the compiler it
imports inside the function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .journal import DecisionJournal, JournalEvent
from .remarks import Remark
from .session import CompilerSession, use_session

#: event kinds whose messages become narrative steps, in emission order
_NARRATIVE_KINDS = (
    "seed",
    "seed-rejected",
    "supernode",
    "lookahead",
    "group",
    "reorder",
    "cost",
    "undo",
)


@dataclass
class GraphStory:
    """Everything known about one attempted SLP graph."""

    graph_id: int
    function: str
    block: str
    seed: str  # "store" | "reduction" | "minmax"
    events: List[JournalEvent] = field(default_factory=list)
    remarks: List[Remark] = field(default_factory=list)
    report: Optional[object] = None  # the matching GraphReport, if any

    @property
    def verdict(self) -> str:
        for event in self.events:
            if event.kind == "cost":
                if event.args.get("verdict") == "profitable":
                    return "vectorized"
                return "rejected"
            if event.kind == "seed-rejected":
                return "seed rejected"
        return "no verdict"

    def steps(self) -> List[str]:
        """The narrative steps, one per decision event."""
        picked = []
        for event in self.events:
            if event.kind in _NARRATIVE_KINDS:
                picked.append(event.message)
        return picked

    def narrative(self) -> str:
        """The one-line arrow narrative."""
        return " -> ".join(self.steps() + [self.verdict])

    def dots(self) -> Dict[str, str]:
        """Named DOT documents captured for this graph (before/after
        chain views plus the final graph)."""
        found: Dict[str, str] = {}
        for event in self.events:
            if event.kind == "supernode" and "dot_before" in event.args:
                found["chains-before"] = str(event.args["dot_before"])
            if event.kind == "reorder" and "dot_after" in event.args:
                found["chains-after"] = str(event.args["dot_after"])
            if event.kind == "graph" and "dot" in event.args:
                found["graph"] = str(event.args["dot"])
        return found

    def dump(self) -> str:
        """The graph's textual dump, when the journal captured one."""
        for event in self.events:
            if event.kind == "graph" and "dump" in event.args:
                return str(event.args["dump"])
        return ""


@dataclass
class ExplainResult:
    """Outcome of :func:`explain_module`."""

    config_name: str
    stories: List[GraphStory]
    result: object  # the CompilationResult
    session: CompilerSession

    def to_json(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "graphs": [
                {
                    "graph_id": story.graph_id,
                    "function": story.function,
                    "block": story.block,
                    "seed": story.seed,
                    "verdict": story.verdict,
                    "steps": story.steps(),
                    "events": [e.to_dict() for e in story.events],
                    "remarks": [r.to_dict() for r in story.remarks],
                }
                for story in self.stories
            ],
        }


def build_stories(
    events: List[JournalEvent],
    remarks: Optional[List[Remark]] = None,
    report: Optional[object] = None,
) -> List[GraphStory]:
    """Group journal events into per-graph stories and join the other
    streams.

    Remarks attach by (function, block, seed kind); GraphReports attach
    positionally within that same key — both streams record attempts in
    the order the vectorizer made them, so the n-th story of a key pairs
    with the n-th report of that key.
    """
    stories: Dict[int, GraphStory] = {}
    order: List[int] = []
    for event in events:
        if event.graph_id < 0:
            continue
        story = stories.get(event.graph_id)
        if story is None:
            story = GraphStory(
                graph_id=event.graph_id,
                function=event.function,
                block=event.block,
                seed=event.seed,
            )
            stories[event.graph_id] = story
            order.append(event.graph_id)
        story.events.append(event)

    result = [stories[graph_id] for graph_id in order]
    if remarks:
        for story in result:
            story.remarks = [
                r
                for r in remarks
                if r.function == story.function
                and r.block == story.block
                and (not r.seed or r.seed == story.seed)
            ]
    if report is not None:
        # Positional join: per (function, seed-kind-ish) cursor over the
        # report's graphs, which were appended in attempt order.
        cursors: Dict[object, int] = {}
        by_function = {fn.name: fn.graphs for fn in report.functions}
        for story in result:
            graphs = by_function.get(story.function, [])
            matching = [
                g
                for g in graphs
                if g.block == story.block and _kind_matches(g.kind, story.seed)
            ]
            key = (story.function, story.block, story.seed)
            index = cursors.get(key, 0)
            if index < len(matching):
                story.report = matching[index]
            cursors[key] = index + 1
    return result


def _kind_matches(report_kind: str, seed: str) -> bool:
    if seed == "store":
        return report_kind == "store"
    if seed == "reduction":
        return report_kind == "reduction"
    if seed == "minmax":
        return report_kind == "minmax-reduction"
    return False


def explain_module(
    module,
    config,
    target=None,
    unroll_factor: int = 0,
    verify: bool = True,
    session: Optional[CompilerSession] = None,
) -> ExplainResult:
    """Compile ``module`` with the journal armed and build the stories.

    Runs in a child of ``session`` (or of a fresh root session) whose
    journal and remark collector are enabled for the duration, so the
    caller's observability configuration is not disturbed.
    """
    from ..machine.targets import DEFAULT_TARGET
    from ..vectorizer.pipeline import compile_module

    if target is None:
        target = DEFAULT_TARGET
    # Journal events quote values by ref(); programmatically-built
    # kernels carry unnamed instructions until printed, so name them up
    # front (idempotent, respects existing names).
    for function in module.functions.values():
        function.assign_names()
    base = session if session is not None else CompilerSession(name="explain")
    own = base.derive(name="explain", fresh_stats=True, fresh_remarks=True)
    own.journal = DecisionJournal()  # private journal for this explain
    own.journal.enable()
    own.remarks.enable()
    with use_session(own):
        result = compile_module(
            module, config, target,
            verify=verify, unroll_factor=unroll_factor,
        )
    stories = build_stories(
        own.journal.events, own.remarks.remarks, result.report
    )
    return ExplainResult(
        config_name=config.name, stories=stories, result=result, session=own
    )


def render_stories(stories: List[GraphStory], verbose: bool = False) -> str:
    """Human-readable rendering of the stories (the CLI output)."""
    if not stories:
        return "no SLP graphs were attempted\n"
    lines: List[str] = []
    for story in stories:
        lines.append(
            f"=== graph #{story.graph_id} [{story.seed}] "
            f"@ {story.function}/{story.block}: {story.verdict} ==="
        )
        for step in story.steps():
            lines.append(f"  -> {step}")
        if verbose:
            dump = story.dump()
            if dump:
                lines.extend("  | " + line for line in dump.splitlines())
        lines.append("")
    return "\n".join(lines)
