"""Compiler sessions: explicit, reentrant observability scopes.

Historically the repro kept one process-wide :data:`STATS` registry, one
:data:`TRACER` and one :data:`REMARKS` collector, and ``compile_module``
called ``STATS.reset()`` on entry — so exactly one compilation could be
in flight per process, and any two interleaved compiles corrupted each
other's counters.  A :class:`CompilerSession` bundles the three (plus
the fault-injection registry and the benchmark seed) into an explicit
object that every layer threads through, which is what makes the
parallel benchmark/fuzz drivers (:mod:`repro.bench.parallel`) and the
compile cache (:mod:`repro.vectorizer.cache`) possible.

Ambient current session
-----------------------

The ~30 module-scope ``STAT("name", "desc")`` registrations across the
vectorizer cannot receive a session at import time, so the *current*
session is also available ambiently through a :mod:`contextvars`
variable:

* :func:`current_session` returns the active session (falling back to
  :data:`DEFAULT_SESSION` when none was installed);
* :func:`use_session` installs a session for a ``with`` scope —
  per-thread and per-``contextvars`` context, so two threads (or two
  asyncio tasks) can run different sessions concurrently;
* ``STAT(...)`` handles are lazy proxies that resolve
  ``current_session().stats`` at *increment* time, so the same
  module-scope handle records into whichever session is active.

Deriving sessions
-----------------

``session.derive(fresh_stats=True)`` creates a child session with a
fresh counter registry but *shared* tracer, remark collector and fault
registry.  ``compile_module`` runs each compilation in such a child (and
discards it on failure), which replaces the old reset-on-entry semantics
with true isolation: a crashing compile can no longer poison the next
compilation's counter snapshot, and concurrent compiles never observe
each other's counters.

Deprecated singleton aliases
----------------------------

``observe.STATS`` / ``observe.TRACER`` / ``observe.REMARKS`` remain
importable as aliases for the *default* session's components so existing
call sites and tests keep working.  They are deprecated: new code should
accept a :class:`CompilerSession` (or call :func:`current_session`)
instead.  This module is the only place in ``src/repro`` allowed to bind
them.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator, Optional

from .journal import DecisionJournal
from .log import EventLog
from .metrics import MetricsRegistry
from .remarks import RemarkCollector
from .stats import StatsRegistry
from .trace import Tracer


class CompilerSession:
    """One observability scope: stats + remarks + tracer + journal +
    metrics + event log (+ faults, seed).

    ``faults`` is an opaque slot deliberately untyped here: the fault
    registry lives in :mod:`repro.robust.faults`, which imports this
    module — typing it would create an import cycle.  The slot is bound
    lazily by ``robust.faults.current_faults()`` on first use.
    """

    __slots__ = (
        "name", "stats", "remarks", "tracer", "journal", "metrics",
        "log", "faults", "seed",
    )

    def __init__(
        self,
        name: str = "session",
        stats: Optional[StatsRegistry] = None,
        remarks: Optional[RemarkCollector] = None,
        tracer: Optional[Tracer] = None,
        journal: Optional[DecisionJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
        log: Optional[EventLog] = None,
        faults: object = None,
        seed: Optional[int] = None,
    ) -> None:
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self.remarks = remarks if remarks is not None else RemarkCollector()
        self.tracer = tracer if tracer is not None else Tracer()
        self.journal = journal if journal is not None else DecisionJournal()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = log if log is not None else EventLog()
        self.faults = faults
        self.seed = seed

    def derive(
        self,
        name: Optional[str] = None,
        fresh_stats: bool = True,
        fresh_remarks: bool = False,
    ) -> "CompilerSession":
        """A child session sharing this session's
        tracer/remarks/journal/metrics/faults.

        ``fresh_stats=True`` (the default) gives the child its own
        counter registry — the isolation ``compile_module`` relies on.
        ``fresh_remarks=True`` additionally gives it a private remark
        collector (used by bundle/artifact writers that must not leak
        remarks into the caller's stream).  The decision journal is
        always shared: like remarks, journal events are a narrative the
        *caller* reads after the fact.  The metrics registry is likewise
        always shared, so histogram observations made in a derived
        compile session accumulate directly into the parent's
        distributions — "merging" child histograms is free.  The event
        log is shared for the same reason: service/ops events are one
        stream per invocation, whoever's child emitted them.
        """
        return CompilerSession(
            name=name or f"{self.name}.child",
            stats=StatsRegistry() if fresh_stats else self.stats,
            remarks=RemarkCollector() if fresh_remarks else self.remarks,
            tracer=self.tracer,
            journal=self.journal,
            metrics=self.metrics,
            log=self.log,
            faults=self.faults,
            seed=self.seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CompilerSession {self.name!r}>"


#: the process default: what ``current_session()`` returns when no
#: session was installed, and what the deprecated singleton aliases
#: (``observe.STATS`` et al.) are bound to
DEFAULT_SESSION = CompilerSession(name="default")

_CURRENT: contextvars.ContextVar[Optional[CompilerSession]] = contextvars.ContextVar(
    "repro_current_session", default=None
)


def current_session() -> CompilerSession:
    """The ambient session (:data:`DEFAULT_SESSION` if none installed)."""
    session = _CURRENT.get()
    return session if session is not None else DEFAULT_SESSION


@contextmanager
def use_session(session: CompilerSession) -> Iterator[CompilerSession]:
    """Install ``session`` as the ambient current session for a scope."""
    token = _CURRENT.set(session)
    try:
        yield session
    finally:
        _CURRENT.reset(token)


def current_stats() -> StatsRegistry:
    return current_session().stats


def current_tracer() -> Tracer:
    return current_session().tracer


def current_remarks() -> RemarkCollector:
    return current_session().remarks


def current_journal() -> DecisionJournal:
    return current_session().journal


def current_metrics() -> MetricsRegistry:
    return current_session().metrics


def current_log() -> EventLog:
    return current_session().log


# -- deprecated singleton aliases (the shim) ---------------------------------
#
# These bind the *default* session's concrete components under their
# historical names.  ``from repro.observe import STATS`` keeps working,
# but records only what runs in the default session; code that compiles
# concurrently or wants isolated counters must use sessions.

STATS = DEFAULT_SESSION.stats
TRACER = DEFAULT_SESSION.tracer
REMARKS = DEFAULT_SESSION.remarks
