"""Named statistic counters — the repro's LLVM ``-stats``.

Modules register counters once at import time::

    from ..observe import STAT
    _TRUNK_MOVES = STAT("supernode.trunk-moves-applied", "trunk swaps applied")

and bump them on the hot path with ``_TRUNK_MOVES.add()`` — exactly like
LLVM's ``STATISTIC`` macro.  ``STAT`` returns a :class:`StatProxy`: the
handle is registered once at import time but resolves the *current*
:class:`~repro.observe.session.CompilerSession`'s registry at increment
time, so the same module-scope handle records into whichever session is
active (see :mod:`repro.observe.session`).

A :class:`StatsRegistry` belongs to one session.  It supports
``snapshot()`` (non-zero values as a plain dict) and ``reset()`` (zero
every counter in place, preserving handle identity); isolation between
compilations comes from :meth:`CompilerSession.derive` handing each
compilation a fresh registry, not from resetting a shared one.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Statistic:
    """One named counter.  Values may be fractional (e.g. cycle totals)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Statistic({self.name}={self.value})"


class StatsRegistry:
    """Process-wide registry of :class:`Statistic` handles."""

    def __init__(self) -> None:
        self._stats: Dict[str, Statistic] = {}

    def stat(self, name: str, description: str = "") -> Statistic:
        """Return the (per-registry) counter for ``name``, registering it
        on first use.  A later registration may fill in a description;
        absent that, the process-wide :data:`STAT_CATALOG` description
        recorded by ``STAT(...)`` is used."""
        existing = self._stats.get(name)
        if existing is not None:
            if description and not existing.description:
                existing.description = description
            return existing
        created = Statistic(name, description or STAT_CATALOG.get(name, ""))
        self._stats[name] = created
        return created

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def value(self, name: str) -> float:
        stat = self._stats.get(name)
        return stat.value if stat is not None else 0

    def names(self) -> List[str]:
        return sorted(self._stats)

    def snapshot(self) -> Dict[str, float]:
        """Non-zero counter values as a plain dict (insertion-safe copy)."""
        return {
            name: stat.value
            for name, stat in sorted(self._stats.items())
            if stat.value
        }

    def reset(self) -> None:
        """Zero every counter *in place* — registered handles stay valid."""
        for stat in self._stats.values():
            stat.value = 0

    def report(
        self, title: str = "Statistics Collected", include_zero: bool = True
    ) -> str:
        """An LLVM ``-stats``-style table of the registered counters."""
        rows = [
            stat
            for _, stat in sorted(self._stats.items())
            if include_zero or stat.value
        ]
        lines = [f"===-- {title} --==="]
        if not rows:
            lines.append("(no statistics registered)")
            return "\n".join(lines)
        width = max(len(_fmt_value(stat.value)) for stat in rows)
        for stat in rows:
            suffix = f" - {stat.description}" if stat.description else ""
            lines.append(f"{_fmt_value(stat.value):>{width}} {stat.name}{suffix}")
        return "\n".join(lines)


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.1f}"


#: every name/description ever passed to ``STAT(...)`` — the process-wide
#: *catalog* of counters (descriptions only; values live per session)
STAT_CATALOG: Dict[str, str] = {}


class StatProxy:
    """A lazy counter handle bound to a *name*, not a registry.

    ``add()`` and ``value`` resolve the ambient session's registry at
    call time, so module-scope ``STAT(...)`` handles keep working no
    matter which :class:`~repro.observe.session.CompilerSession` is
    active when the hot path runs.
    """

    __slots__ = ("name", "description")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        if description and not STAT_CATALOG.get(name):
            STAT_CATALOG[name] = description
        else:
            STAT_CATALOG.setdefault(name, description)

    def resolve(self, registry: Optional[StatsRegistry] = None) -> Statistic:
        """The concrete :class:`Statistic` in ``registry`` (default: the
        current session's)."""
        if registry is None:
            from .session import current_stats

            registry = current_stats()
        return registry.stat(self.name, self.description)

    def add(self, amount: float = 1) -> None:
        self.resolve().add(amount)

    @property
    def value(self) -> float:
        from .session import current_stats

        return current_stats().value(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatProxy({self.name})"


def STAT(name: str, description: str = "") -> StatProxy:
    """Register a counter name and return its lazy per-session handle
    (mirrors LLVM's ``STATISTIC`` macro)."""
    return StatProxy(name, description)
