"""Named statistic counters — the repro's LLVM ``-stats``.

Modules register counters once at import time::

    from ..observe import STAT
    _TRUNK_MOVES = STAT("supernode.trunk-moves-applied", "trunk swaps applied")

and bump them on the hot path with ``_TRUNK_MOVES.add()`` — one attribute
increment, cheap enough to leave enabled unconditionally, exactly like
LLVM's ``STATISTIC`` macro.

The registry supports ``snapshot()`` (non-zero values as a plain dict) and
``reset()`` (zero every counter in place, preserving handle identity), so
benchmark runs stay isolated: :func:`repro.vectorizer.pipeline.
compile_module` resets the registry on entry and snapshots it on exit.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Statistic:
    """One named counter.  Values may be fractional (e.g. cycle totals)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Statistic({self.name}={self.value})"


class StatsRegistry:
    """Process-wide registry of :class:`Statistic` handles."""

    def __init__(self) -> None:
        self._stats: Dict[str, Statistic] = {}

    def stat(self, name: str, description: str = "") -> Statistic:
        """Return the (singleton) counter for ``name``, registering it on
        first use.  A later registration may fill in a description."""
        existing = self._stats.get(name)
        if existing is not None:
            if description and not existing.description:
                existing.description = description
            return existing
        created = Statistic(name, description)
        self._stats[name] = created
        return created

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def value(self, name: str) -> float:
        stat = self._stats.get(name)
        return stat.value if stat is not None else 0

    def names(self) -> List[str]:
        return sorted(self._stats)

    def snapshot(self) -> Dict[str, float]:
        """Non-zero counter values as a plain dict (insertion-safe copy)."""
        return {
            name: stat.value
            for name, stat in sorted(self._stats.items())
            if stat.value
        }

    def reset(self) -> None:
        """Zero every counter *in place* — registered handles stay valid."""
        for stat in self._stats.values():
            stat.value = 0

    def report(
        self, title: str = "Statistics Collected", include_zero: bool = True
    ) -> str:
        """An LLVM ``-stats``-style table of the registered counters."""
        rows = [
            stat
            for _, stat in sorted(self._stats.items())
            if include_zero or stat.value
        ]
        lines = [f"===-- {title} --==="]
        if not rows:
            lines.append("(no statistics registered)")
            return "\n".join(lines)
        width = max(len(_fmt_value(stat.value)) for stat in rows)
        for stat in rows:
            suffix = f" - {stat.description}" if stat.description else ""
            lines.append(f"{_fmt_value(stat.value):>{width}} {stat.name}{suffix}")
        return "\n".join(lines)


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.1f}"


#: the process-wide registry (LLVM's global statistics list)
STATS = StatsRegistry()


def STAT(name: str, description: str = "") -> Statistic:
    """Shorthand for ``STATS.stat(...)`` mirroring LLVM's ``STATISTIC``."""
    return STATS.stat(name, description)
